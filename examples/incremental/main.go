// Incremental deployment demo (paper §5.3): TLT-enabled machines share
// the fabric with legacy machines by riding a dedicated switch queue
// (traffic class 0) with color-aware dropping, while legacy traffic uses
// a second queue that TLT never touches.
//
//	go run ./examples/incremental
package main

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

func main() {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       65,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes:    2_000_000,
			TrafficClasses: 2,       // class 0 = TLT, class 1 = legacy
			ColorThreshold: 100_000, // applies to class 0 only
			ECN:            fabric.ECNStep,
			KEcn:           200_000,
		},
	})

	tltCfg := tcp.DCTCPConfig()
	tltCfg.TLT = core.Config{Enabled: true}
	tltCfg.TrafficClass = 0

	legacyCfg := tcp.DCTCPConfig()
	legacyCfg.TrafficClass = 1

	rec := stats.NewRecorder()
	// 32 upgraded senders and 32 legacy senders incast to host 0.
	for i := 0; i < 64; i++ {
		cfg := legacyCfg
		fg := false
		if i < 32 {
			cfg = tltCfg
			fg = true // tag the TLT class for reporting
		}
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: packet.NodeID(i + 1), Dst: 0,
			Size: 8_000, FG: fg,
		}
		tcp.StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)

	report := func(name string, fg bool) {
		fcts := stats.Sorted(rec.Select(fg))
		fmt.Printf("%-18s p50 %-9s p99 %-9s timeouts %d\n", name,
			stats.FmtDur(stats.PercentileSorted(fcts, 0.5)),
			stats.FmtDur(stats.PercentileSorted(fcts, 0.99)),
			rec.Timeouts(fg))
	}
	fmt.Println("64-to-1 incast, half the senders upgraded to TLT (own switch queue):")
	report("TLT class (0):", true)
	report("legacy class (1):", false)
	ctr := n.Counters()
	fmt.Printf("\nswitch: %d color drops (all on the TLT queue), %d important drops\n",
		ctr.DropRedColor, ctr.DropGreen)
	fmt.Println("legacy traffic never sees color-aware dropping; TLT flows never time out.")
}
