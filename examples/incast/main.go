// Incast microbenchmark (paper §7.4 / Fig. 14): a client fetches 32 kB
// responses from 8 servers over a growing number of concurrent flows and
// reports tail FCT per transport variant.
//
//	go run ./examples/incast -max 200 -step 40
package main

import (
	"flag"
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

var (
	maxFlows = flag.Int("max", 200, "maximum concurrent flows")
	step     = flag.Int("step", 40, "flow count step")
	size     = flag.Int64("size", 32*1024, "response size in bytes")
	dctcp    = flag.Bool("dctcp", true, "use DCTCP (false: plain TCP)")
)

type variant struct {
	name string
	cfg  func() tcp.Config
	tlt  bool
}

func main() {
	flag.Parse()
	base := tcp.DefaultConfig
	if *dctcp {
		base = tcp.DCTCPConfig
	}
	variants := []variant{
		{"baseline(4ms)", base, false},
		{"rtomin=200us", func() tcp.Config {
			c := base()
			c.RTO.Min = 200 * sim.Microsecond
			return c
		}, false},
		{"tlt", base, true},
	}

	fmt.Printf("%-14s %6s %10s %10s %10s %9s\n", "variant", "flows", "p50", "p99", "max", "timeouts")
	for _, v := range variants {
		for flows := *step; flows <= *maxFlows; flows += *step {
			p50, p99, mx, to := run(v, flows)
			fmt.Printf("%-14s %6d %10s %10s %10s %9d\n", v.name, flows,
				stats.FmtDur(p50), stats.FmtDur(p99), stats.FmtDur(mx), to)
		}
	}
}

func run(v variant, flows int) (p50, p99, max float64, timeouts int) {
	s := sim.New()
	swc := fabric.SwitchConfig{
		BufferBytes: 3_600_000, // Tomahawk-class dynamic allocation (§6)
		ECN:         fabric.ECNStep,
		KEcn:        200_000,
	}
	if v.tlt {
		swc.ColorThreshold = 270_000
	}
	net := topo.Star(s, topo.StarConfig{
		Hosts:       9,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      swc,
	})
	cfg := v.cfg()
	cfg.TLT = core.Config{Enabled: v.tlt}
	rec := stats.NewRecorder()
	for i := 0; i < flows; i++ {
		src := net.Hosts[1+i%8]
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: src.ID(), Dst: 0,
			Size: *size, FG: true,
			Start: sim.Time(i%8) * 100 * sim.Nanosecond,
		}
		tcp.StartFlow(s, src, net.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(10 * sim.Second)
	fcts := stats.Sorted(rec.Select(true))
	return stats.PercentileSorted(fcts, 0.5), stats.PercentileSorted(fcts, 0.99),
		stats.PercentileSorted(fcts, 1), rec.TimeoutsAll()
}
