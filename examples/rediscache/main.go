// Redis cache benchmark (paper §7.3 / Fig. 12-13): an HTTP client fans
// requests over 8 web servers; each request triggers a 32 kB SET to a
// cache node over a persistent connection, creating incast at the cache.
//
//	go run ./examples/rediscache -requests 180
package main

import (
	"flag"
	"fmt"

	"tlt/internal/app"
	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport/tcp"
)

var (
	requests = flag.Int("requests", 180, "simultaneous HTTP requests")
	mixed    = flag.Bool("mixed", false, "run the mixed bg+fg experiment (Fig. 13) instead")
)

func cluster(useTLT bool) (*sim.Sim, *topo.Network, *app.CacheCluster, *stats.Recorder) {
	s := sim.New()
	swc := fabric.SwitchConfig{
		BufferBytes: 3_600_000,
		ECN:         fabric.ECNStep,
		KEcn:        200_000,
	}
	if useTLT {
		swc.ColorThreshold = 270_000
	}
	net := topo.Star(s, topo.StarConfig{
		Hosts:       10,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      swc,
	})
	cfg := tcp.DCTCPConfig()
	cfg.TLT = core.Config{Enabled: useTLT}
	rec := stats.NewRecorder()
	return s, net, app.NewCacheCluster(s, net.Hosts, cfg, rec, 1), rec
}

func main() {
	flag.Parse()
	if *mixed {
		runMixed()
		return
	}
	fmt.Printf("SET burst: %d requests over 8 web servers -> 1 cache node (32kB each)\n", *requests)
	for _, useTLT := range []bool{false, true} {
		s, _, cl, rec := cluster(useTLT)
		rts := cl.RunSetBurst(*requests, 0)
		s.Run(10 * sim.Second)
		var xs []float64
		for _, rt := range rts {
			if rt > 0 {
				xs = append(xs, rt.Seconds())
			}
		}
		name := "DCTCP      "
		if useTLT {
			name = "DCTCP + TLT"
		}
		sorted := stats.Sorted(xs)
		fmt.Printf("%s  completed %3d/%3d  p50 %-9s p99 %-9s max %-9s timeouts %d\n",
			name, len(xs), *requests,
			stats.FmtDur(stats.PercentileSorted(sorted, 0.5)),
			stats.FmtDur(stats.PercentileSorted(sorted, 0.99)),
			stats.FmtDur(stats.PercentileSorted(sorted, 1)),
			rec.TimeoutsAll())
	}
}

func runMixed() {
	fmt.Println("Mixed traffic: one 8MB background flow + 152 x 32kB SETs (Fig. 13)")
	for _, useTLT := range []bool{false, true} {
		s, net, cl, rec := cluster(useTLT)
		res := cl.RunMixed(152, net.Hosts[0], 8_000_000, 0)
		s.Run(10 * sim.Second)
		var xs []float64
		for _, rt := range res.FgRTs {
			if rt > 0 {
				xs = append(xs, rt.Seconds())
			}
		}
		name := "DCTCP      "
		if useTLT {
			name = "DCTCP + TLT"
		}
		fmt.Printf("%s  fg p99 %-9s bg goodput %6.2f Gbps  timeouts %d\n",
			name, stats.FmtDur(stats.Percentile(xs, 0.99)),
			res.BgGoodput*8/1e9, rec.TimeoutsAll())
	}
}
