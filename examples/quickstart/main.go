// Quickstart: build a small incast on a single switch and watch TLT
// eliminate the timeouts that wreck the baseline's tail latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

func run(useTLT bool) {
	s := sim.New()

	// One 40 GbE switch with a 1 MB shared buffer. With TLT the switch
	// additionally drops *unimportant* packets once a queue exceeds the
	// color-aware threshold, reserving headroom for important ones.
	swc := fabric.SwitchConfig{
		BufferBytes: 1_000_000,
		ECN:         fabric.ECNStep,
		KEcn:        200_000,
	}
	if useTLT {
		swc.ColorThreshold = 400_000
	}
	net := topo.Star(s, topo.StarConfig{
		Hosts:       65,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch:      swc,
	})

	// 64 hosts each send an 8 kB flow to host 0 at the same instant —
	// the classic partition/aggregate incast.
	cfg := tcp.DCTCPConfig()
	cfg.TLT = core.Config{Enabled: useTLT}
	rec := stats.NewRecorder()
	for i := 0; i < 64; i++ {
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: packet.NodeID(i + 1), Dst: 0,
			Size: 8_000, FG: true,
		}
		tcp.StartFlow(s, net.Hosts[i+1], net.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)

	fcts := stats.Sorted(rec.Select(true))
	ctr := net.Counters()
	name := "DCTCP      "
	if useTLT {
		name = "DCTCP + TLT"
	}
	fmt.Printf("%s  p50 %-9s p99 %-9s max %-9s timeouts %-3d drops(red/total) %d/%d important-drops %d\n",
		name,
		stats.FmtDur(stats.PercentileSorted(fcts, 0.5)),
		stats.FmtDur(stats.PercentileSorted(fcts, 0.99)),
		stats.FmtDur(stats.PercentileSorted(fcts, 1)),
		rec.TimeoutsAll(),
		ctr.DropRedColor, ctr.TotalDrops(), ctr.DropGreen)
}

func main() {
	fmt.Println("64-to-1 incast of 8kB flows over one 40GbE switch:")
	run(false)
	run(true)
	fmt.Println("\nTLT proactively drops unimportant packets at the color threshold so the")
	fmt.Println("packets whose loss would cause an RTO always get through (paper §3-§5).")
}
