// Tracedemo prints the packet-level timeline of one TLT flow that loses
// the tail of its initial window — the paper's Figure 3 scenario: the
// important tail packet survives the congestion (green), its echo exposes
// the loss, and recovery completes without any retransmission timeout.
//
//	go run ./examples/tracedemo
package main

import (
	"fmt"
	"os"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/trace"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

func main() {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       34,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes:    600_000,
			ColorThreshold: 100_000,
			ECN:            fabric.ECNStep,
			KEcn:           100_000,
		},
	})

	cfg := tcp.DCTCPConfig()
	cfg.TLT = core.Config{Enabled: true}
	rec := stats.NewRecorder()

	// Flow 1 is the one we trace; 32 competing flows congest the port
	// so flow 1's unimportant packets get color-dropped.
	tr := trace.New(0)
	tr.FlowFilter = 1
	tr.Attach(n.Hosts[1])

	for i := 0; i < 33; i++ {
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: packet.NodeID(i + 1), Dst: 0,
			Size: 8_000, FG: true,
		}
		tcp.StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)

	fmt.Println("Packet timeline of flow 1 (sender side):")
	tr.Dump(os.Stdout)
	fr := rec.Flows[0]
	fmt.Printf("\nflow 1: FCT %v, %d data packets sent (%d retransmissions, %d clock sends), %d timeouts\n",
		fr.FCT(), fr.SentPackets, fr.RetxPackets, fr.ClockSends, fr.Timeouts)
	ctr := n.Counters()
	fmt.Printf("switch: %d unimportant packets color-dropped, %d important drops\n",
		ctr.DropRedColor, ctr.DropGreen)
}
