// Load sweep on the full 96-host leaf-spine fabric (paper §7.2 / Fig. 9):
// background web-search traffic plus periodic 95-to-1 incast, sweeping
// the core-link load and comparing DCTCP against DCTCP+TLT.
//
//	go run ./examples/loadsweep -bg 300 -loads 0.2,0.4
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"tlt/internal/experiments"
	"tlt/internal/stats"
	"tlt/internal/workload"
)

var (
	bgFlows = flag.Int("bg", 300, "background flows per run")
	loads   = flag.String("loads", "0.2,0.4,0.6", "comma-separated core loads")
	pfc     = flag.Bool("pfc", false, "enable PFC")
)

func main() {
	flag.Parse()
	fmt.Printf("%-12s %6s %14s %14s %12s\n", "variant", "load", "fg p99.9", "bg avg FCT", "timeouts/1k")
	for _, part := range strings.Split(*loads, ",") {
		load, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Println("bad load:", part)
			return
		}
		for _, tlt := range []bool{false, true} {
			v := experiments.Variant{Transport: "dctcp", TLT: tlt, PFC: *pfc}
			res := experiments.Run(experiments.RunConfig{
				Variant: v,
				Traffic: workload.DefaultTraffic(load, *bgFlows),
				Seed:    1,
			})
			fmt.Printf("%-12s %5.0f%% %14s %14s %12.1f\n",
				v.Name(), load*100,
				stats.FmtDur(res.FgP(0.999)),
				stats.FmtDur(res.BgMean()),
				res.TimeoutsPer1k())
		}
	}
}
