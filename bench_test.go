// Package tlt_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation. Each benchmark regenerates the
// corresponding artifact at smoke scale and logs the rows; run
//
//	go test -bench=. -benchmem
//
// for the full set, or cmd/tltsim for larger scales.
package tlt_test

import (
	"testing"

	"tlt/internal/experiments"
)

func benchFigure(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	var cells int
	var events uint64
	for i := 0; i < b.N; i++ {
		rep := experiments.RunEntry(e, experiments.BenchScale())
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		c, ev := rep.GridStats()
		cells += c
		events += ev
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
	if cells > 0 {
		b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
	}
}

func BenchmarkFig1(b *testing.B)          { benchFigure(b, "fig1") }
func BenchmarkFig2(b *testing.B)          { benchFigure(b, "fig2") }
func BenchmarkFig5(b *testing.B)          { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)          { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)          { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)          { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)          { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B)         { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B)         { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B)         { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B)         { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B)         { benchFigure(b, "fig14") }
func BenchmarkFig14c(b *testing.B)        { benchFigure(b, "fig14c") }
func BenchmarkFig15(b *testing.B)         { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B)         { benchFigure(b, "fig16") }
func BenchmarkFig17(b *testing.B)         { benchFigure(b, "fig17") }
func BenchmarkFig18(b *testing.B)         { benchFigure(b, "fig18") }
func BenchmarkTable1(b *testing.B)        { benchFigure(b, "table1") }
func BenchmarkDumbbell(b *testing.B)      { benchFigure(b, "dumbbell") }
func BenchmarkAblationN(b *testing.B)     { benchFigure(b, "ablation-n") }
func BenchmarkAblationAlpha(b *testing.B) { benchFigure(b, "ablation-alpha") }
func BenchmarkChaosRecovery(b *testing.B) { benchFigure(b, "chaos-recovery") }
