# Build/test/profile pipeline. The committed PGO profile lives at
# cmd/tltsim/default.pgo, where the Go toolchain picks it up
# automatically (-pgo=auto is the default) for every build of tltsim;
# `make pgo` regenerates it from the two representative workloads (the
# fig5 closed-loop smoke and the streaming scale-sweep smoke — together
# they cover the wheel drain, the switch datapath, and the transport
# tick paths that dominate CPU). The sidecar default.pgo.meta records
# the CHANGES.md line count at generation time; `make pgo-check` (and
# CI) fail once the profile is more than PGO_MAX_AGE PRs stale.

GO ?= go
PGO := cmd/tltsim/default.pgo
PGO_META := cmd/tltsim/default.pgo.meta
PGO_MAX_AGE := 3

.PHONY: all build test bench pgo pgo-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench='BenchmarkFig5|BenchmarkChaosRecovery' -benchtime=1x -benchmem -run '^$$' .

# Capture CPU profiles from the two smoke workloads CI gates on, merge
# them into the committed default.pgo, and stamp the staleness sidecar.
# Commit both files after running this. (Iterating is fine: the capture
# runs already benefit from the previous profile; Go PGO is stable
# under that feedback.)
pgo:
	$(GO) run ./cmd/tltsim -exp fig5 -bg 60 -seeds 1 -points 2 -procs 1 \
		-cpuprofile /tmp/pgo-fig5.pb.gz
	$(GO) run ./cmd/tltsim -exp scale-sweep -bg 25000 -points 1 -seeds 1 -procs 1 -shards 4 \
		-cpuprofile /tmp/pgo-scale.pb.gz
	$(GO) tool pprof -proto /tmp/pgo-fig5.pb.gz /tmp/pgo-scale.pb.gz > $(PGO)
	echo "changes_lines=$$(wc -l < CHANGES.md)" > $(PGO_META)
	@echo "wrote $(PGO) + $(PGO_META); commit both"

# Fail when the committed profile has fallen more than PGO_MAX_AGE PRs
# behind CHANGES.md (each PR appends one line there).
pgo-check:
	@cur=$$(wc -l < CHANGES.md); \
	gen=$$(sed -n 's/^changes_lines=//p' $(PGO_META) 2>/dev/null); \
	if [ -z "$$gen" ]; then \
		echo "$(PGO_META) missing or invalid; run 'make pgo' and commit $(PGO) + $(PGO_META)" >&2; \
		exit 1; \
	fi; \
	age=$$((cur - gen)); \
	if [ $$age -gt $(PGO_MAX_AGE) ]; then \
		echo "$(PGO) is $$age PRs stale (limit $(PGO_MAX_AGE)); run 'make pgo' and commit the refreshed profile" >&2; \
		exit 1; \
	fi; \
	echo "ok: $(PGO) is $$age PR(s) old (limit $(PGO_MAX_AGE))"
