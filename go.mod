module tlt

go 1.22
