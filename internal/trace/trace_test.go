package trace

import (
	"bytes"
	"strings"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

func runTraced(t *testing.T, tr *Tracer) {
	t.Helper()
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	tr.AttachAll(n.Hosts)
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 7, Src: 0, Dst: 1, Size: 5_000}
	tcp.StartFlow(s, n.Hosts[0], n.Hosts[1], f, tcp.DefaultConfig(), rec, nil)
	s.RunAll()
	if !rec.Flows[0].Done {
		t.Fatal("flow incomplete")
	}
}

func TestTracerRecordsBothDirections(t *testing.T) {
	tr := New(0)
	runTraced(t, tr)
	events := tr.Events()
	// 5 data packets: each seen as tx at host0 and rx at host1, plus 5
	// ACKs both ways: 20 events.
	if len(events) != 20 {
		t.Fatalf("events = %d, want 20", len(events))
	}
	var tx, rx, data, acks int
	for _, e := range events {
		switch e.Dir {
		case "tx":
			tx++
		case "rx":
			rx++
		}
		switch e.Pkt.Type {
		case packet.Data:
			data++
		case packet.Ack:
			acks++
		}
	}
	if tx != 10 || rx != 10 || data != 10 || acks != 10 {
		t.Fatalf("tx=%d rx=%d data=%d acks=%d", tx, rx, data, acks)
	}
	// Chronological order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := New(6)
	runTraced(t, tr)
	events := tr.Events()
	if len(events) != 6 {
		t.Fatalf("ring kept %d events", len(events))
	}
	// The last event must be the final ACK rx at host 0.
	last := events[len(events)-1]
	if last.Pkt.Type != packet.Ack || last.Dir != "rx" || last.Host != 0 {
		t.Fatalf("last event = %+v", last)
	}
}

func TestTracerFlowFilter(t *testing.T) {
	tr := New(0)
	tr.FlowFilter = 999 // no such flow
	runTraced(t, tr)
	if tr.Len() != 0 {
		t.Fatalf("filter leaked %d events", tr.Len())
	}
}

func TestTracerStreamAndFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(0).Stream(&buf)
	runTraced(t, tr)
	out := buf.String()
	if !strings.Contains(out, "DATA flow=7 seq=0 len=1000") {
		t.Fatalf("missing data line:\n%s", out)
	}
	if !strings.Contains(out, "ACK flow=7 ack=") {
		t.Fatalf("missing ack line:\n%s", out)
	}
	var dump bytes.Buffer
	tr.Dump(&dump)
	if dump.String() != out {
		t.Fatal("Dump should match streamed output")
	}
}
