package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

func runTraced(t *testing.T, tr *Tracer) {
	t.Helper()
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	tr.AttachAll(n.Hosts)
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 7, Src: 0, Dst: 1, Size: 5_000}
	tcp.StartFlow(s, n.Hosts[0], n.Hosts[1], f, tcp.DefaultConfig(), rec, nil)
	s.RunAll()
	if !rec.Flows[0].Done {
		t.Fatal("flow incomplete")
	}
}

func TestTracerRecordsBothDirections(t *testing.T) {
	tr := New(0)
	runTraced(t, tr)
	events := tr.Events()
	// 5 data packets: each seen as tx at host0 and rx at host1, plus 5
	// ACKs both ways: 20 events.
	if len(events) != 20 {
		t.Fatalf("events = %d, want 20", len(events))
	}
	var tx, rx, data, acks int
	for _, e := range events {
		switch e.Dir {
		case "tx":
			tx++
		case "rx":
			rx++
		}
		switch e.Pkt.Type {
		case packet.Data:
			data++
		case packet.Ack:
			acks++
		}
	}
	if tx != 10 || rx != 10 || data != 10 || acks != 10 {
		t.Fatalf("tx=%d rx=%d data=%d acks=%d", tx, rx, data, acks)
	}
	// Chronological order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := New(6)
	runTraced(t, tr)
	events := tr.Events()
	if len(events) != 6 {
		t.Fatalf("ring kept %d events", len(events))
	}
	// The last event must be the final ACK rx at host 0.
	last := events[len(events)-1]
	if last.Pkt.Type != packet.Ack || last.Dir != "rx" || last.Host != 0 {
		t.Fatalf("last event = %+v", last)
	}
}

func TestTracerFlowFilter(t *testing.T) {
	tr := New(0)
	tr.FlowFilter = 999 // no such flow
	runTraced(t, tr)
	if tr.Len() != 0 {
		t.Fatalf("filter leaked %d events", tr.Len())
	}
}

func TestTracerStreamAndFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(0).Stream(&buf)
	runTraced(t, tr)
	out := buf.String()
	if !strings.Contains(out, "DATA flow=7 seq=0 len=1000") {
		t.Fatalf("missing data line:\n%s", out)
	}
	if !strings.Contains(out, "ACK flow=7 ack=") {
		t.Fatalf("missing ack line:\n%s", out)
	}
	var dump bytes.Buffer
	tr.Dump(&dump)
	if dump.String() != out {
		t.Fatal("Dump should match streamed output")
	}
}

// runScenario drives a fixed multi-flow incast, optionally attaching tr
// to every host, and returns a deterministic per-flow report string plus
// the network for hook inspection.
func runScenario(t *testing.T, tr *Tracer) (string, *topo.Network) {
	t.Helper()
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 5, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 300_000, Alpha: 1},
	})
	if tr != nil {
		tr.AttachAll(n.Hosts)
	}
	rec := stats.NewRecorder()
	for i := 0; i < 4; i++ {
		f := &transport.Flow{
			ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0,
			Size: 200_000,
		}
		tcp.StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, tcp.DefaultConfig(), rec, nil)
	}
	s.RunAll()
	var b strings.Builder
	for _, fr := range rec.Flows {
		fmt.Fprintf(&b, "flow=%d done=%v fct=%v sent=%d retx=%d to=%d bytes=%d\n",
			fr.Flow.ID, fr.Done, fr.FCT(), fr.SentPackets, fr.RetxPackets, fr.Timeouts, fr.TotalBytes)
	}
	return b.String(), n
}

// TestUntracedRunIdenticalAndHookFree is the regression test for the
// hot-path tracing contract: a run without a tracer must leave every
// host's Trace hook nil (so receive/send pay only a nil check and no
// trace call can ever happen), and the simulation results must be
// byte-identical with and without tracing attached.
func TestUntracedRunIdenticalAndHookFree(t *testing.T) {
	plain, n := runScenario(t, nil)
	for _, h := range n.Hosts {
		if h.Trace != nil {
			t.Fatalf("host %d has a trace hook in an untraced run", h.ID())
		}
	}
	for _, sw := range n.Switches {
		if sw.Audit != nil {
			t.Fatalf("switch %d has an audit hook in a plain run", sw.ID())
		}
	}

	tr := New(0)
	traced, _ := runScenario(t, tr)
	if traced != plain {
		t.Fatalf("tracing changed the report:\n--- untraced ---\n%s--- traced ---\n%s", plain, traced)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
}
