// Package trace provides packet-level tracing for debugging transport
// behaviour: attach a Tracer to hosts and it records (or streams) every
// send and receive in a compact text format, similar to tcpdump output
// for the simulated wire.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Event is one observed packet movement.
type Event struct {
	At   sim.Time
	Host packet.NodeID
	Dir  string // "tx" or "rx"
	Pkt  packet.Packet
}

// String renders an event on one line.
func (e Event) String() string {
	p := e.Pkt
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s host%-3d %s %s flow=%d", e.At, e.Host, e.Dir, p.Type, p.Flow)
	switch p.Type {
	case packet.Data:
		fmt.Fprintf(&b, " seq=%d len=%d", p.Seq, p.Len)
		if p.IsRetx {
			b.WriteString(" retx")
		}
	case packet.Ack:
		fmt.Fprintf(&b, " ack=%d", p.Ack)
		for _, s := range p.Sack {
			fmt.Fprintf(&b, " sack=%d-%d", s.Start, s.End)
		}
		if p.ECE {
			b.WriteString(" ece")
		}
	case packet.Nack:
		fmt.Fprintf(&b, " expect=%d", p.Ack)
	}
	if p.Mark != packet.Unimportant {
		fmt.Fprintf(&b, " [%s]", p.Mark)
	}
	if p.CE {
		b.WriteString(" ce")
	}
	return b.String()
}

// Tracer collects events from any number of hosts. A zero capacity keeps
// everything; otherwise it keeps the most recent capacity events (ring).
//
// There is no package-level state: each Tracer instance guards its ring
// (and optional stream writer) with its own mutex, so independent
// concurrent simulations — e.g. grid cells run by experiments.RunGrid —
// can each use their own Tracer, or even share one, without data races.
// Interleaving across sims sharing a Tracer is scheduling-dependent, so
// deterministic traces need one Tracer per sim. FlowFilter is read
// without the lock: set it before the run starts, not while tracing.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	events []Event
	start  int
	w      io.Writer // optional live stream

	// FlowFilter, when non-zero, restricts recording to one flow.
	FlowFilter packet.FlowID
}

// New returns a tracer retaining at most capacity events (0 = unbounded).
func New(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

// Stream makes the tracer also write each event line to w as it happens.
func (t *Tracer) Stream(w io.Writer) *Tracer {
	t.w = w
	return t
}

// Attach hooks the tracer onto a host. Call before the run starts.
func (t *Tracer) Attach(h *fabric.Host) {
	id := h.ID()
	h.Trace = func(now sim.Time, dir string, pkt *packet.Packet) {
		t.record(Event{At: now, Host: id, Dir: dir, Pkt: *pkt})
	}
}

// AttachAll hooks the tracer onto all the given hosts.
func (t *Tracer) AttachAll(hosts []*fabric.Host) {
	for _, h := range hosts {
		t.Attach(h)
	}
}

func (t *Tracer) record(e Event) {
	if t.FlowFilter != 0 && e.Pkt.Flow != t.FlowFilter {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w != nil {
		fmt.Fprintln(t.w, e.String())
	}
	if t.cap > 0 && len(t.events) == t.cap {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.cap
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dump writes all retained events to w.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
}
