package trace

import (
	"fmt"
	"sync"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// runTracedSim drives one small independent simulation with tr attached —
// the moral equivalent of one RunGrid cell.
func runTracedSim(tr *Tracer, seed int64) error {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	tr.AttachAll(n.Hosts)
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 7, Src: 0, Dst: 1, Size: 20_000, Start: sim.Time(seed) * sim.Microsecond}
	tcp.StartFlow(s, n.Hosts[0], n.Hosts[1], f, tcp.DefaultConfig(), rec, nil)
	s.RunAll()
	if !rec.Flows[0].Done {
		return fmt.Errorf("flow incomplete in traced sim %d", seed)
	}
	return nil
}

// Two simulations sharing one Tracer from two goroutines must be free of
// data races (run under -race) — the concurrency shape the parallel run
// executor produces. Deterministic traces still want a Tracer per sim;
// this only guarantees memory safety.
func TestTracerSharedAcrossConcurrentSims(t *testing.T) {
	tr := New(64)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runTracedSim(tr, int64(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() == 0 {
		t.Fatal("shared tracer recorded nothing")
	}
	if got := len(tr.Events()); got > 64 {
		t.Fatalf("ring exceeded capacity: %d", got)
	}
}
