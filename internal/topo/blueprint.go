package topo

import (
	"sync"

	"tlt/internal/fabric"
)

// Fabric blueprints: the immutable parts of a topology build — the
// min-cut partition and the shared routing structure — depend only on
// the shape (k, shard count), not on the cell (seed, RNG salt, MMU
// policy). Experiments instantiate hundreds of cells of one shape, so
// these parts are computed once per shape and reused; everything
// mutable (switches, hosts, wires, RNG streams, packet pools) is still
// built per cell. Shared tables are safe across concurrently-running
// cells because the fat-tree installs no reroute (see FatTree's doc
// comment) and the leaf-spine reroute never touches the entries shared
// here — sharing anything reroute mutates would corrupt neighbors.

// ftBlueprint is the reusable skeleton of a k-ary fat-tree.
type ftBlueprint struct {
	// Switch → shard assignment (all zeros when built unsharded).
	edgeShard, aggShard, coreShard []int
	// Shared ECMP structure: portGroup[i] is the singleton group {i},
	// uplinks is {half..k-1}.
	portGroup [][]int
	uplinks   []int
	// One table per forwarding-equivalence class: every edge switch
	// installs edgeTbl at its own host-range offset, every aggregation
	// switch installs aggTbl at its pod's offset, every core shares
	// coreTbl. The *Flat arrays are the tables' FlatRoutes projections
	// (single-port fast path), shared the same way.
	edgeTbl, aggTbl, coreTbl    [][]int
	edgeFlat, aggFlat, coreFlat []int32
}

type ftKey struct {
	k       int
	shards  int
	sharded bool // Group set (Partition ran) vs classic zero assignment
}

type lsKey struct {
	spines, tors, hostsPerTor int
	shards                    int
	sharded                   bool
}

// lsBlueprint is the reusable skeleton of a leaf-spine fabric. ToR
// tables are NOT here: reroute rewrites their uplink entries per cell.
type lsBlueprint struct {
	torShard, spineShard []int
	uplinks              []int
	// hostPort[p] is the singleton egress group {p}, reused by every
	// ToR's local-host entries (reroute never touches those).
	hostPort [][]int
	// spineTbl maps destination host → down port; spines are untouched
	// by reroute, so one table serves every spine of every cell.
	// spineFlat is its shared FlatRoutes projection.
	spineTbl  [][]int
	spineFlat []int32
}

var (
	bpMu    sync.Mutex
	ftCache = map[ftKey]*ftBlueprint{}
	lsCache = map[lsKey]*lsBlueprint{}
)

// fatTreeBlueprint returns (building on first use) the shared skeleton
// for a k-ary fat-tree split across `shards` shards.
func fatTreeBlueprint(k, shards int, sharded bool) *ftBlueprint {
	key := ftKey{k: k, shards: shards, sharded: sharded}
	bpMu.Lock()
	defer bpMu.Unlock()
	if bp, ok := ftCache[key]; ok {
		return bp
	}
	half := k / 2
	podHosts := half * half
	numHosts := k * podHosts
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	numSw := numEdge + numAgg + numCore

	bp := &ftBlueprint{
		edgeShard: make([]int, numEdge),
		aggShard:  make([]int, numAgg),
		coreShard: make([]int, numCore),
	}
	if sharded {
		// Edges weigh their attached hosts; every intra-pod edge↔agg
		// link and every agg↔core link is an affinity edge.
		weight := make([]int, numSw)
		var links [][2]int
		for e := 0; e < numEdge; e++ {
			weight[e] = 1 + half
			p := e / half
			for m := 0; m < half; m++ {
				links = append(links, [2]int{e, numEdge + p*half + m})
			}
		}
		for a := 0; a < numAgg; a++ {
			weight[numEdge+a] = 1
			m := a % half
			for c := 0; c < half; c++ {
				links = append(links, [2]int{numEdge + a, numEdge + numAgg + m*half + c})
			}
		}
		for j := 0; j < numCore; j++ {
			weight[numEdge+numAgg+j] = 1
		}
		assign := Partition(numSw, shards, weight, links)
		copy(bp.edgeShard, assign[:numEdge])
		copy(bp.aggShard, assign[numEdge:numEdge+numAgg])
		copy(bp.coreShard, assign[numEdge+numAgg:])
	}

	bp.portGroup = make([][]int, k)
	for i := range bp.portGroup {
		bp.portGroup[i] = []int{i}
	}
	bp.uplinks = make([]int, half)
	for c := range bp.uplinks {
		bp.uplinks[c] = half + c
	}
	// Every edge switch forwards its half local hosts the same way
	// relative to its offset; likewise every pod's aggregation table.
	bp.edgeTbl = make([][]int, half)
	for j := 0; j < half; j++ {
		bp.edgeTbl[j] = bp.portGroup[j]
	}
	bp.aggTbl = make([][]int, podHosts)
	for h := 0; h < podHosts; h++ {
		bp.aggTbl[h] = bp.portGroup[h/half]
	}
	bp.coreTbl = make([][]int, numHosts)
	for h := 0; h < numHosts; h++ {
		bp.coreTbl[h] = bp.portGroup[h/podHosts]
	}
	bp.edgeFlat = fabric.FlatRoutes(bp.edgeTbl)
	bp.aggFlat = fabric.FlatRoutes(bp.aggTbl)
	bp.coreFlat = fabric.FlatRoutes(bp.coreTbl)
	ftCache[key] = bp
	return bp
}

// leafSpineBlueprint returns the shared skeleton for a leaf-spine
// fabric of the given shape.
func leafSpineBlueprint(spines, tors, hostsPerTor, shards int, sharded bool) *lsBlueprint {
	key := lsKey{spines: spines, tors: tors, hostsPerTor: hostsPerTor, shards: shards, sharded: sharded}
	bpMu.Lock()
	defer bpMu.Unlock()
	if bp, ok := lsCache[key]; ok {
		return bp
	}
	numHosts := tors * hostsPerTor
	bp := &lsBlueprint{
		torShard:   make([]int, tors),
		spineShard: make([]int, spines),
	}
	if sharded {
		// ToRs weigh their attached hosts, every uplink is an affinity
		// edge.
		weight := make([]int, tors+spines)
		var links [][2]int
		for t := 0; t < tors; t++ {
			weight[t] = 1 + hostsPerTor
			for c := 0; c < spines; c++ {
				links = append(links, [2]int{t, tors + c})
			}
		}
		for c := 0; c < spines; c++ {
			weight[tors+c] = 1
		}
		assign := Partition(tors+spines, shards, weight, links)
		copy(bp.torShard, assign[:tors])
		copy(bp.spineShard, assign[tors:])
	}
	bp.uplinks = make([]int, spines)
	for c := range bp.uplinks {
		bp.uplinks[c] = hostsPerTor + c
	}
	bp.hostPort = make([][]int, hostsPerTor)
	for p := range bp.hostPort {
		bp.hostPort[p] = []int{p}
	}
	// Spine down-port groups: one singleton per ToR.
	torPort := make([][]int, tors)
	for t := range torPort {
		torPort[t] = []int{t}
	}
	bp.spineTbl = make([][]int, numHosts)
	for h := 0; h < numHosts; h++ {
		bp.spineTbl[h] = torPort[h/hostsPerTor]
	}
	bp.spineFlat = fabric.FlatRoutes(bp.spineTbl)
	lsCache[key] = bp
	return bp
}
