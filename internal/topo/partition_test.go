package topo

import (
	"reflect"
	"testing"
)

// leafSpineShape builds the weight/link arrays of the paper fabric: 12
// ToRs (indices 0-11, weight 1+8 hosts) and 4 spines (12-15, weight 1),
// every ToR linked to every spine.
func leafSpineShape() (weight []int, links [][2]int) {
	weight = make([]int, 16)
	for t := 0; t < 12; t++ {
		weight[t] = 9
	}
	for c := 0; c < 4; c++ {
		weight[12+c] = 1
	}
	for t := 0; t < 12; t++ {
		for c := 0; c < 4; c++ {
			links = append(links, [2]int{t, 12 + c})
		}
	}
	return
}

func TestPartitionBalancesLeafSpine(t *testing.T) {
	weight, links := leafSpineShape()
	got := Partition(16, 4, weight, links)
	load := make([]int, 4)
	for i, s := range got {
		if s < 0 || s >= 4 {
			t.Fatalf("switch %d assigned to shard %d", i, s)
		}
		load[s] += weight[i]
	}
	for s, l := range load {
		if l != 28 { // (12*9 + 4*1) / 4
			t.Fatalf("shard %d load %d, want 28 (loads %v)", s, l, load)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	weight, links := leafSpineShape()
	a := Partition(16, 4, weight, links)
	b := Partition(16, 4, weight, links)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic: %v vs %v", a, b)
	}
}

// A chain with an even split must cut exactly one edge: affinity keeps
// runs of linked switches together.
func TestPartitionClustersChain(t *testing.T) {
	n := 8
	weight := make([]int, n)
	var links [][2]int
	for i := range weight {
		weight[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		links = append(links, [2]int{i, i + 1})
	}
	got := Partition(n, 2, weight, links)
	cut := 0
	for _, l := range links {
		if got[l[0]] != got[l[1]] {
			cut++
		}
	}
	load := []int{0, 0}
	for _, s := range got {
		load[s]++
	}
	if load[0] != 4 || load[1] != 4 {
		t.Fatalf("chain split unbalanced: %v", got)
	}
	// A perfectly balanced 2-way chain split can't do better than 1 cut;
	// allow the greedy pass a little slack but not a shuffle.
	if cut > 3 {
		t.Fatalf("chain partition cuts %d edges: %v", cut, got)
	}
}

func TestPartitionDegenerateCases(t *testing.T) {
	if got := Partition(3, 1, []int{1, 1, 1}, nil); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Fatalf("single shard = %v", got)
	}
	got := Partition(2, 8, []int{1, 1}, nil)
	for _, s := range got {
		if s < 0 || s >= 8 {
			t.Fatalf("more shards than switches: %v", got)
		}
	}
}
