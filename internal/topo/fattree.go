package topo

import (
	"fmt"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// FatTreeConfig parametrizes a k-ary fat-tree (multi-pod Clos): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² cores, and
// k³/4 hosts total (k=8 → 128 hosts, k=16 → 1024, k=34 → 9826).
type FatTreeConfig struct {
	K           int // even, >= 4
	LinkRateBps int64
	LinkDelay   sim.Time
	Switch      fabric.SwitchConfig // Ports is set per switch by the builder
	SeedSalt    int64               // RNG seed for probabilistic ECN

	// HostPauseTimeout: see LeafSpineConfig.
	HostPauseTimeout sim.Time

	// Group, when set, builds the fabric sharded: switches partitioned
	// min-cut-ish with hosts pinned to their edge switch's shard, and
	// every switch↔switch wire through the group mailboxes (at every
	// shard count, including one, so event order is partition-
	// independent). The group's lookahead must not exceed LinkDelay.
	Group *sim.Group
}

// FatTreeHosts returns the host count of a k-ary fat-tree.
func FatTreeHosts(k int) int { return k * k * k / 4 }

// FatTree builds the k-ary fat-tree and installs ECMP routing.
//
// Memory note: FIB state is kept sub-O(switches × hosts) by sharing
// routing structure — every core switch shares one table, the
// aggregation switches of a pod share one table, edge and aggregation
// tables are offset-indexed (SetRouteTableAt) so they hold only their
// local host range with no dense nil prefix, and all "go up" decisions
// use a per-switch default ECMP route over the uplinks. There is no failure-aware
// reroute for this topology (Reroute no-ops); the failure experiments
// run on the leaf-spine fabric.
func FatTree(s *sim.Sim, cfg FatTreeConfig) *Network {
	k := cfg.K
	if k < 4 || k%2 != 0 {
		panic(fmt.Sprintf("fat-tree k must be even and >= 4, got %d", k))
	}
	half := k / 2
	podHosts := half * half
	numHosts := k * podHosts
	numEdge := k * half    // edge e = pod*half + i
	numAgg := k * half     // agg  a = pod*half + m
	numCore := half * half // core j = m*half + c

	g := cfg.Group
	shards := 1
	if g != nil {
		shards = g.Shards()
		s = g.Shard(0)
	}
	n := &Network{Sim: s, Group: g, LinkRateBps: cfg.LinkRateBps}

	// Packet pools: per shard when sharded (a packet always uses the
	// pool of the shard touching it); per pod when classic, so pod-local
	// traffic recycles through a pod-local free list. Cores borrow pool
	// 0 in the classic build.
	if g != nil {
		for i := 0; i < shards; i++ {
			n.Pools = append(n.Pools, packet.NewPool())
		}
	} else {
		for p := 0; p < k; p++ {
			n.Pools = append(n.Pools, packet.NewPool())
		}
	}
	n.Pool = n.Pools[0]
	rng := sim.NewRNG(0xfa7 + cfg.SeedSalt)

	// Partition and shared routing structure come from the cached
	// blueprint — identical for every cell of this shape, computed once.
	bp := fatTreeBlueprint(k, shards, g != nil)
	edgeShard, aggShard, coreShard := bp.edgeShard, bp.aggShard, bp.coreShard
	simFor := func(shard int) *sim.Sim {
		if g == nil {
			return s
		}
		return g.Shard(shard)
	}
	poolFor := func(shard, pod int) *packet.Pool {
		if g != nil {
			return n.Pools[shard]
		}
		return n.Pools[pod]
	}
	// Per-switch ECN RNG streams, derived in build order so they do not
	// depend on the partition.
	swRNG := func() *sim.RNG { return sim.NewRNG(rng.Int63()) }

	// Hosts: host h lives in pod h/podHosts under edge (h%podHosts)/half
	// at edge port h%half. NodeID equals the Hosts index.
	n.HostShard = make([]int, numHosts)
	for h := 0; h < numHosts; h++ {
		e := h / half // global edge index: pods are contiguous host ranges
		sh := edgeShard[e]
		n.HostShard[h] = sh
		host := fabric.NewHost(simFor(sh), packet.NodeID(h))
		host.SetPool(poolFor(sh, h/podHosts))
		n.Hosts = append(n.Hosts, host)
	}

	// Switch NodeIDs live far above any host ID.
	edgeID := func(e int) packet.NodeID { return packet.NodeID(1<<20 + e) }
	aggID := func(a int) packet.NodeID { return packet.NodeID(2<<20 + a) }
	coreID := func(j int) packet.NodeID { return packet.NodeID(3<<20 + j) }

	edges := make([]*fabric.Switch, numEdge)
	for e := range edges {
		sc := cfg.Switch
		sc.Ports = k
		edges[e] = fabric.NewSwitch(simFor(edgeShard[e]), edgeID(e), swRNG(), sc)
		edges[e].SetPool(poolFor(edgeShard[e], e/half))
		n.Switches = append(n.Switches, edges[e])
		n.SwitchShard = append(n.SwitchShard, edgeShard[e])
	}
	aggs := make([]*fabric.Switch, numAgg)
	for a := range aggs {
		sc := cfg.Switch
		sc.Ports = k
		aggs[a] = fabric.NewSwitch(simFor(aggShard[a]), aggID(a), swRNG(), sc)
		aggs[a].SetPool(poolFor(aggShard[a], a/half))
		n.Switches = append(n.Switches, aggs[a])
		n.SwitchShard = append(n.SwitchShard, aggShard[a])
	}
	cores := make([]*fabric.Switch, numCore)
	for j := range cores {
		sc := cfg.Switch
		sc.Ports = k
		cores[j] = fabric.NewSwitch(simFor(coreShard[j]), coreID(j), swRNG(), sc)
		cores[j].SetPool(poolFor(coreShard[j], 0))
		n.Switches = append(n.Switches, cores[j])
		n.SwitchShard = append(n.SwitchShard, coreShard[j])
	}

	// Host ↔ edge links: direct, on the edge's shard.
	for h := 0; h < numHosts; h++ {
		e := h / half
		port := h % half
		sh := edgeShard[e]
		a, b := fabric.Connect(simFor(sh), n.Hosts[h], 0, edges[e], port, cfg.LinkRateBps, cfg.LinkDelay)
		if g != nil {
			a.SetShards(sh, sh)
			b.SetShards(sh, sh)
		}
		a.SetPauseTimeout(cfg.HostPauseTimeout)
		n.Txs = append(n.Txs, a, b)
	}

	// Switch ↔ switch wires. Sharded builds route all of them through
	// the group mailboxes regardless of endpoint placement.
	var wireID uint32
	wire := func(A *fabric.Switch, ap, ash int, B *fabric.Switch, bp, bsh int) {
		var a, b *fabric.Tx
		if g != nil {
			a, b = fabric.ConnectSharded(g, A, ap, ash, B, bp, bsh, cfg.LinkRateBps, cfg.LinkDelay, wireID)
			wireID += 2
		} else {
			a, b = fabric.Connect(s, A, ap, B, bp, cfg.LinkRateBps, cfg.LinkDelay)
		}
		n.Txs = append(n.Txs, a, b)
		n.SwitchLinks = append(n.SwitchLinks, SwitchLink{A: A, APort: ap, B: B, BPort: bp})
	}
	// Edge (p,i) uplink port half+m ↔ agg (p,m) down port i.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			e := p*half + i
			for m := 0; m < half; m++ {
				a := p*half + m
				wire(edges[e], half+m, edgeShard[e], aggs[a], i, aggShard[a])
			}
		}
	}
	// Agg (p,m) uplink port half+c ↔ core m*half+c port p.
	for p := 0; p < k; p++ {
		for m := 0; m < half; m++ {
			a := p*half + m
			for c := 0; c < half; c++ {
				j := m*half + c
				wire(aggs[a], half+c, aggShard[a], cores[j], p, coreShard[j])
			}
		}
	}

	// Routing. Structure is shared aggressively — and, via the
	// blueprint, across cells too: every edge switch installs the one
	// edge table at its own host-range offset, every aggregation switch
	// its pod's offset of the one agg table, every core the one core
	// table. Safe because this topology never reroutes (tables are
	// write-once).
	for e, sw := range edges {
		sw.SetRouteTableFlatAt(packet.NodeID(e*half), bp.edgeTbl, bp.edgeFlat)
		sw.SetDefaultRoute(bp.uplinks)
	}
	for p := 0; p < k; p++ {
		lo := p * podHosts
		for m := 0; m < half; m++ {
			aggs[p*half+m].SetRouteTableFlatAt(packet.NodeID(lo), bp.aggTbl, bp.aggFlat)
			aggs[p*half+m].SetDefaultRoute(bp.uplinks)
		}
	}
	for _, sw := range cores {
		sw.SetRouteTableFlatAt(0, bp.coreTbl, bp.coreFlat)
	}

	// Host→edge→agg→core→agg→edge→host: 6 links each way.
	n.BaseRTT = 2 * 6 * cfg.LinkDelay
	return n
}
