package topo

// Partition assigns n switches to shards for parallel execution. It
// balances the per-switch weights (a switch's event load is roughly
// proportional to its port count, so callers weight ToRs by their
// attached hosts) while preferring, among equally loaded shards, the
// one already holding the most neighbors — a greedy min-cut-ish rule
// that clusters chains and pods without an exact graph cut. Heavier
// switches place first so the balance is decided by the big items.
//
// The result depends only on the arguments, never on map order or
// randomness: the same topology partitions the same way in every run,
// which the byte-identical-reports contract requires.
func Partition(n, shards int, weight []int, links [][2]int) []int {
	if shards < 1 {
		shards = 1
	}
	assign := make([]int, n)
	if shards == 1 {
		return assign
	}

	adj := make([][]int, n)
	for _, l := range links {
		a, b := l[0], l[1]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	// Placement order: descending weight, index-stable.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && weight[order[j]] < weight[x] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}

	// Loads are capped at the perfectly balanced share (rounded up):
	// a switch joins the shard with the most neighbors among those
	// still under the cap, falling back to least-loaded when every
	// shard is at it. Ties break by load, then shard index.
	total := 0
	w := make([]int, n)
	for i := range w {
		w[i] = weight[i]
		if w[i] < 1 {
			w[i] = 1
		}
		total += w[i]
	}
	capacity := (total + shards - 1) / shards

	load := make([]int, shards)
	placed := make([]bool, n)
	for _, sw := range order {
		best, bestLoad, bestAff := -1, 0, 0
		pick := func(s, aff int) {
			if best == -1 || aff > bestAff ||
				(aff == bestAff && load[s] < bestLoad) {
				best, bestLoad, bestAff = s, load[s], aff
			}
		}
		for s := 0; s < shards; s++ {
			if load[s]+w[sw] > capacity {
				continue
			}
			aff := 0
			for _, nb := range adj[sw] {
				if placed[nb] && assign[nb] == s {
					aff++
				}
			}
			pick(s, aff)
		}
		if best == -1 { // every shard at the cap: least-loaded wins
			for s := 0; s < shards; s++ {
				if best == -1 || load[s] < bestLoad {
					best, bestLoad = s, load[s]
				}
			}
		}
		assign[sw] = best
		placed[sw] = true
		load[best] += w[sw]
	}
	return assign
}
