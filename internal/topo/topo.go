// Package topo builds the network topologies used by the paper's
// evaluation: the 96-host leaf-spine fabric (§7.1), a single-switch star
// (testbed microbenchmarks, §7.4), and a two-switch dumbbell (§7.4 mixed
// traffic with PFC).
package topo

import (
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Network is a built topology with routing installed.
type Network struct {
	Sim      *sim.Sim
	Hosts    []*fabric.Host
	Switches []*fabric.Switch
	// Pool is the packet free-list shared by every host of this network
	// (one per simulation; the event loop is single-threaded). In a
	// sharded build it is shard 0's pool; see Pools.
	Pool *packet.Pool

	// Group is the shard group a sharded build runs on (nil classic).
	// Hosts live on their ToR's shard, every inter-switch wire crosses
	// the group's mailboxes — at every shard count, including one, so
	// the event order is partition-independent.
	Group *sim.Group
	// HostShard / SwitchShard give each device's shard (all zero when
	// Group is nil). Fault injectors use them to run mutations on the
	// owning shard.
	HostShard   []int
	SwitchShard []int
	// Pools holds the per-shard packet free-lists (len 1 when Group is
	// nil). A packet is always got from and put to the pool of the
	// shard touching it; packets migrate between pools as they cross
	// the fabric, which is safe because Put fully zeroes.
	Pools []*packet.Pool
	// Txs lists every fabric-side transmitter (switch→switch and
	// switch→host and host→switch), for pause-time accounting.
	Txs         []*fabric.Tx
	LinkRateBps int64
	// BaseRTT is the round-trip propagation+store-forward latency
	// between two hosts under different ToRs (zero queueing), useful
	// for configuring transports.
	BaseRTT sim.Time

	// SwitchLinks lists the switch-to-switch adjacencies of the fabric
	// (A's port APort faces B, and B's port BPort faces A), so failure
	// tooling — the audit pause wait-for graph in particular — can map
	// ports to peer devices without re-deriving the wiring.
	SwitchLinks []SwitchLink

	// failedSwitches is the control plane's view of dead switches
	// (indexed like Switches), maintained by SetSwitchFailed. The data
	// plane only changes when Reroute pushes the view into the routing
	// tables — the gap between the two is the reconvergence black-hole
	// window.
	failedSwitches []bool
	// reroute reinstalls routes honoring failedSwitches. Builders with
	// path diversity install it; topologies without alternates leave it
	// nil and keep black-holing.
	reroute func(failed []bool)
	// rerouteOne reinstalls routes on a single switch, for sharded
	// fault schedules that must mutate each switch on its own shard.
	rerouteOne func(i int, failed []bool)
}

// SwitchLink is one full-duplex switch-to-switch cable.
type SwitchLink struct {
	A     *fabric.Switch
	APort int
	B     *fabric.Switch
	BPort int
}

// SetSwitchFailed marks switch index i as failed (or repaired) in the
// control-plane view. The data plane is unaffected until Reroute runs,
// modeling detection plus reconvergence delay.
func (n *Network) SetSwitchFailed(i int, failed bool) {
	if n.failedSwitches == nil {
		n.failedSwitches = make([]bool, len(n.Switches))
	}
	if i >= 0 && i < len(n.failedSwitches) {
		n.failedSwitches[i] = failed
	}
}

// Reroute reinstalls static failure-aware routes for the current failed
// set. Topologies without path diversity (star, dumbbell) have nothing
// to reroute and no-op.
func (n *Network) Reroute() {
	if n.reroute == nil {
		return
	}
	if n.failedSwitches == nil {
		n.failedSwitches = make([]bool, len(n.Switches))
	}
	n.reroute(n.failedSwitches)
}

// RerouteSwitch reinstalls failure-aware routes on switch i alone,
// using the caller's snapshot of the control-plane failed view instead
// of the network's. Resolved fault schedules run it as a per-switch
// event on the switch's own shard, so a fabric-wide reconvergence is a
// set of same-instant shard-local route updates.
func (n *Network) RerouteSwitch(i int, failed []bool) {
	if n.rerouteOne != nil {
		n.rerouteOne(i, failed)
	}
}

// ShardSim returns the simulator owning shard i (the network's only
// simulator when unsharded).
func (n *Network) ShardSim(i int) *sim.Sim {
	if n.Group == nil {
		return n.Sim
	}
	return n.Group.Shard(i)
}

// Counters sums the switch counters across the fabric.
func (n *Network) Counters() fabric.Counters {
	var c fabric.Counters
	for _, sw := range n.Switches {
		c.Add(&sw.Ctr)
	}
	return c
}

// FinishPausedClocks closes any open PFC pause intervals at end of run.
func (n *Network) FinishPausedClocks() {
	for _, tx := range n.Txs {
		tx.FinishPausedClock()
	}
}

// PausedFraction returns the mean fraction of link-time spent paused
// across all fabric transmitters, over the elapsed duration.
func (n *Network) PausedFraction(elapsed sim.Time) float64 {
	if elapsed <= 0 || len(n.Txs) == 0 {
		return 0
	}
	var sum float64
	for _, tx := range n.Txs {
		sum += float64(tx.PausedTotal) / float64(elapsed)
	}
	return sum / float64(len(n.Txs))
}

// LeafSpineConfig parametrizes the leaf-spine fabric.
type LeafSpineConfig struct {
	Spines      int // core switches
	Tors        int // leaf switches
	HostsPerTor int
	LinkRateBps int64
	LinkDelay   sim.Time
	Switch      fabric.SwitchConfig // Ports is set per switch by the builder
	SeedSalt    int64               // RNG seed for probabilistic ECN

	// PerSwitch, when set, is called for every switch the builder
	// constructs — ToRs first (i = 0..Tors-1, spine=false), then spines
	// (i = Tors..Tors+Spines-1, spine=true) — after the builder sets
	// Ports and before NewSwitch. It may mutate the config in place to
	// give individual switches their own MMU/flow-control policies or
	// thresholds (e.g. tiny-buffer ToRs under a deep-buffered spine).
	PerSwitch func(i int, spine bool, sc *fabric.SwitchConfig)

	// HostPauseTimeout, when non-zero, makes host NIC pause state expire
	// after that long without a refreshing PAUSE frame (finite PFC
	// quanta), so a NIC paused by a switch that then dies recovers.
	// Zero keeps pauses latched until RESUME (the seed model).
	HostPauseTimeout sim.Time

	// Group, when set, builds the fabric sharded across the group's
	// simulators: switches are partitioned min-cut-ish (hosts pinned to
	// their ToR's shard), host↔ToR links stay direct on the shared
	// shard, and every ToR↔spine wire goes through the group mailboxes
	// — at every shard count, including one, so the firing order is
	// identical no matter how the fabric is split. The group's
	// lookahead must not exceed LinkDelay. Nil builds the classic
	// single-simulator network on s.
	Group *sim.Group
}

// DefaultLeafSpine returns the paper's simulation fabric: 4 spines, 12
// ToRs, 8 hosts per ToR, 40 Gbps links. The per-link delay is the caller's
// choice (10 µs for the TCP family, 1 µs for RoCE).
func DefaultLeafSpine(delay sim.Time) LeafSpineConfig {
	return LeafSpineConfig{
		Spines:      4,
		Tors:        12,
		HostsPerTor: 8,
		LinkRateBps: 40e9,
		LinkDelay:   delay,
		Switch: fabric.SwitchConfig{
			BufferBytes: 4_500_000, // Trident II slice emulation (§7.1)
			Alpha:       1,
		},
	}
}

// LeafSpine builds the fabric and installs ECMP routing. With
// cfg.Group set the build is sharded: see LeafSpineConfig.Group.
func LeafSpine(s *sim.Sim, cfg LeafSpineConfig) *Network {
	g := cfg.Group
	shards := 1
	if g != nil {
		shards = g.Shards()
		s = g.Shard(0)
	}
	n := &Network{Sim: s, Group: g, LinkRateBps: cfg.LinkRateBps}
	for i := 0; i < shards; i++ {
		n.Pools = append(n.Pools, packet.NewPool())
	}
	n.Pool = n.Pools[0]
	numHosts := cfg.Tors * cfg.HostsPerTor
	rng := sim.NewRNG(0x7a17 + cfg.SeedSalt)

	// Partition (ToRs first, then spines, matching the Switches slice)
	// and shared routing structure come from the cached blueprint —
	// identical for every cell of this shape, computed once. Hosts are
	// pinned to their ToR's shard so the host↔ToR links never cross
	// shards.
	bp := leafSpineBlueprint(cfg.Spines, cfg.Tors, cfg.HostsPerTor, shards, g != nil)
	torShard, spineShard := bp.torShard, bp.spineShard
	simFor := func(shard int) *sim.Sim {
		if g == nil {
			return s
		}
		return g.Shard(shard)
	}
	// In a sharded build every switch gets its own ECN RNG stream,
	// derived here in build order so the streams — like everything else
	// about the build — do not depend on the partition. The classic
	// build keeps the shared topology stream.
	swRNG := func() *sim.RNG {
		if g == nil {
			return rng
		}
		return sim.NewRNG(rng.Int63())
	}

	n.HostShard = make([]int, numHosts)
	for h := 0; h < numHosts; h++ {
		sh := torShard[h/cfg.HostsPerTor]
		n.HostShard[h] = sh
		host := fabric.NewHost(simFor(sh), packet.NodeID(h))
		host.SetPool(n.Pools[sh])
		n.Hosts = append(n.Hosts, host)
	}
	torID := func(t int) packet.NodeID { return packet.NodeID(1000 + t) }
	spineID := func(c int) packet.NodeID { return packet.NodeID(2000 + c) }

	tors := make([]*fabric.Switch, cfg.Tors)
	for t := range tors {
		sc := cfg.Switch
		sc.Ports = cfg.HostsPerTor + cfg.Spines
		if cfg.PerSwitch != nil {
			cfg.PerSwitch(t, false, &sc)
		}
		tors[t] = fabric.NewSwitch(simFor(torShard[t]), torID(t), swRNG(), sc)
		tors[t].SetPool(n.Pools[torShard[t]])
		n.Switches = append(n.Switches, tors[t])
		n.SwitchShard = append(n.SwitchShard, torShard[t])
	}
	spines := make([]*fabric.Switch, cfg.Spines)
	for c := range spines {
		sc := cfg.Switch
		sc.Ports = cfg.Tors
		if cfg.PerSwitch != nil {
			cfg.PerSwitch(cfg.Tors+c, true, &sc)
		}
		spines[c] = fabric.NewSwitch(simFor(spineShard[c]), spineID(c), swRNG(), sc)
		spines[c].SetPool(n.Pools[spineShard[c]])
		n.Switches = append(n.Switches, spines[c])
		n.SwitchShard = append(n.SwitchShard, spineShard[c])
	}

	// Host <-> ToR links: host h on ToR h/HostsPerTor, ToR port h%HostsPerTor.
	for h := 0; h < numHosts; h++ {
		t := h / cfg.HostsPerTor
		p := h % cfg.HostsPerTor
		sh := torShard[t]
		a, b := fabric.Connect(simFor(sh), n.Hosts[h], 0, tors[t], p, cfg.LinkRateBps, cfg.LinkDelay)
		a.SetShards(sh, sh)
		b.SetShards(sh, sh)
		a.SetPauseTimeout(cfg.HostPauseTimeout)
		n.Txs = append(n.Txs, a, b)
	}
	// ToR <-> spine links: ToR uplink port HostsPerTor+c to spine c port
	// t. Sharded builds route these through the group mailboxes whether
	// or not the endpoints share a shard — the mailbox order must be
	// the only order that ever exists.
	var wireID uint32
	for t := range tors {
		for c := range spines {
			var a, b *fabric.Tx
			if g != nil {
				a, b = fabric.ConnectSharded(g, tors[t], cfg.HostsPerTor+c, torShard[t],
					spines[c], t, spineShard[c], cfg.LinkRateBps, cfg.LinkDelay, wireID)
				wireID += 2
			} else {
				a, b = fabric.Connect(s, tors[t], cfg.HostsPerTor+c, spines[c], t, cfg.LinkRateBps, cfg.LinkDelay)
			}
			n.Txs = append(n.Txs, a, b)
			n.SwitchLinks = append(n.SwitchLinks, SwitchLink{
				A: tors[t], APort: cfg.HostsPerTor + c, B: spines[c], BPort: t,
			})
		}
	}

	// Routing. ToR tables are per-cell (reroute rewrites their uplink
	// entries in place), but their entry slices — the local-host
	// singletons and the uplink group — and the whole spine table come
	// from the blueprint: reroute never mutates those, so every cell
	// shares them.
	uplinks := bp.uplinks
	for t, tor := range tors {
		for h := 0; h < numHosts; h++ {
			if h/cfg.HostsPerTor == t {
				tor.SetRoute(packet.NodeID(h), bp.hostPort[h%cfg.HostsPerTor])
			} else {
				tor.SetRoute(packet.NodeID(h), uplinks)
			}
		}
	}
	for _, sp := range spines {
		sp.SetRouteTableFlatAt(0, bp.spineTbl, bp.spineFlat)
	}

	// Failure-aware static rerouting: ToR uplink ECMP groups shrink to
	// the live spines. A dead ToR is terminal for its hosts (no
	// alternate path exists), so only spine health changes routes.
	// With every spine dead the static routes stay put and black-hole —
	// there is nothing better to install.
	liveUplinks := func(failed []bool) []int {
		live := make([]int, 0, cfg.Spines)
		for c := 0; c < cfg.Spines; c++ {
			if !failed[cfg.Tors+c] {
				live = append(live, cfg.HostsPerTor+c)
			}
		}
		if len(live) == 0 {
			live = uplinks
		}
		return live
	}
	rerouteTor := func(t int, live []int) {
		for h := 0; h < numHosts; h++ {
			if h/cfg.HostsPerTor != t {
				tors[t].SetRoute(packet.NodeID(h), live)
			}
		}
	}
	n.reroute = func(failed []bool) {
		live := liveUplinks(failed)
		for t := range tors {
			rerouteTor(t, live)
		}
	}
	// Sharded reconvergence touches one switch per event so each route
	// update runs on the owning shard; spines have nothing to reroute.
	n.rerouteOne = func(i int, failed []bool) {
		if i < cfg.Tors {
			rerouteTor(i, liveUplinks(failed))
		}
	}

	// Host→ToR→spine→ToR→host: 4 links each way.
	n.BaseRTT = 2 * 4 * cfg.LinkDelay
	return n
}

// StarConfig parametrizes a single-switch star (the testbed's single ToR).
type StarConfig struct {
	Hosts       int
	LinkRateBps int64
	LinkDelay   sim.Time
	Switch      fabric.SwitchConfig
	SeedSalt    int64

	// HostPauseTimeout: see LeafSpineConfig.
	HostPauseTimeout sim.Time
}

// Star builds an N-host single switch network.
func Star(s *sim.Sim, cfg StarConfig) *Network {
	n := &Network{Sim: s, LinkRateBps: cfg.LinkRateBps, Pool: packet.NewPool()}
	n.Pools = []*packet.Pool{n.Pool}
	rng := sim.NewRNG(0x57a6 + cfg.SeedSalt)
	sc := cfg.Switch
	sc.Ports = cfg.Hosts
	sw := fabric.NewSwitch(s, 1000, rng, sc)
	sw.SetPool(n.Pool)
	n.Switches = []*fabric.Switch{sw}
	for h := 0; h < cfg.Hosts; h++ {
		host := fabric.NewHost(s, packet.NodeID(h))
		host.SetPool(n.Pool)
		n.Hosts = append(n.Hosts, host)
		a, b := fabric.Connect(s, host, 0, sw, h, cfg.LinkRateBps, cfg.LinkDelay)
		a.SetPauseTimeout(cfg.HostPauseTimeout)
		n.Txs = append(n.Txs, a, b)
		sw.SetRoute(packet.NodeID(h), []int{h})
	}
	n.BaseRTT = 2 * 2 * cfg.LinkDelay
	return n
}

// DumbbellConfig parametrizes the two-switch dumbbell of §7.4: senders on
// the left switch, receivers on the right, one inter-switch link.
type DumbbellConfig struct {
	LeftHosts, RightHosts int
	LinkRateBps           int64 // host links
	CrossRateBps          int64 // inter-switch link
	LinkDelay             sim.Time
	Switch                fabric.SwitchConfig
	SeedSalt              int64

	// HostPauseTimeout: see LeafSpineConfig.
	HostPauseTimeout sim.Time
}

// Dumbbell builds the two-switch topology. Hosts 0..LeftHosts-1 attach to
// the left switch; the rest to the right switch.
func Dumbbell(s *sim.Sim, cfg DumbbellConfig) *Network {
	n := &Network{Sim: s, LinkRateBps: cfg.LinkRateBps, Pool: packet.NewPool()}
	n.Pools = []*packet.Pool{n.Pool}
	rng := sim.NewRNG(0xd0bb + cfg.SeedSalt)
	lc := cfg.Switch
	lc.Ports = cfg.LeftHosts + 1
	rc := cfg.Switch
	rc.Ports = cfg.RightHosts + 1
	left := fabric.NewSwitch(s, 1000, rng, lc)
	right := fabric.NewSwitch(s, 1001, rng, rc)
	left.SetPool(n.Pool)
	right.SetPool(n.Pool)
	n.Switches = []*fabric.Switch{left, right}

	total := cfg.LeftHosts + cfg.RightHosts
	for h := 0; h < total; h++ {
		host := fabric.NewHost(s, packet.NodeID(h))
		host.SetPool(n.Pool)
		n.Hosts = append(n.Hosts, host)
		if h < cfg.LeftHosts {
			a, b := fabric.Connect(s, host, 0, left, h, cfg.LinkRateBps, cfg.LinkDelay)
			a.SetPauseTimeout(cfg.HostPauseTimeout)
			n.Txs = append(n.Txs, a, b)
		} else {
			a, b := fabric.Connect(s, host, 0, right, h-cfg.LeftHosts, cfg.LinkRateBps, cfg.LinkDelay)
			a.SetPauseTimeout(cfg.HostPauseTimeout)
			n.Txs = append(n.Txs, a, b)
		}
	}
	cross := cfg.CrossRateBps
	if cross == 0 {
		cross = cfg.LinkRateBps
	}
	a, b := fabric.Connect(s, left, cfg.LeftHosts, right, cfg.RightHosts, cross, cfg.LinkDelay)
	n.Txs = append(n.Txs, a, b)
	n.SwitchLinks = append(n.SwitchLinks, SwitchLink{
		A: left, APort: cfg.LeftHosts, B: right, BPort: cfg.RightHosts,
	})

	for h := 0; h < total; h++ {
		dst := packet.NodeID(h)
		if h < cfg.LeftHosts {
			left.SetRoute(dst, []int{h})
			right.SetRoute(dst, []int{cfg.RightHosts})
		} else {
			left.SetRoute(dst, []int{cfg.LeftHosts})
			right.SetRoute(dst, []int{h - cfg.LeftHosts})
		}
	}
	n.BaseRTT = 2 * 3 * cfg.LinkDelay
	return n
}
