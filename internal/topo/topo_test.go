package topo

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// capture retains packets past Handle, so it must copy: the host
// recycles the delivered packet once Handle returns.
type capture struct {
	got []packet.Packet
}

func (c *capture) Handle(p *packet.Packet) { c.got = append(c.got, *p) }

func defaultLS(s *sim.Sim) *Network {
	cfg := DefaultLeafSpine(10 * sim.Microsecond)
	return LeafSpine(s, cfg)
}

func TestLeafSpineShape(t *testing.T) {
	s := sim.New()
	n := defaultLS(s)
	if len(n.Hosts) != 96 {
		t.Fatalf("hosts = %d", len(n.Hosts))
	}
	if len(n.Switches) != 16 {
		t.Fatalf("switches = %d, want 12 ToR + 4 spine", len(n.Switches))
	}
	for _, sw := range n.Switches[:12] {
		if sw.NumPorts() != 12 {
			t.Fatalf("ToR ports = %d, want 12", sw.NumPorts())
		}
	}
	for _, sw := range n.Switches[12:] {
		if sw.NumPorts() != 12 {
			t.Fatalf("spine ports = %d, want 12 (one per ToR)", sw.NumPorts())
		}
	}
	// 96 host links + 48 uplinks, both directions.
	if got := len(n.Txs); got != 2*(96+48) {
		t.Fatalf("transmitters = %d, want %d", got, 2*(96+48))
	}
	if n.BaseRTT != 80*sim.Microsecond {
		t.Fatalf("BaseRTT = %v, want 80us", n.BaseRTT)
	}
}

func TestLeafSpineAllPairsReachable(t *testing.T) {
	s := sim.New()
	n := defaultLS(s)
	// Sample src/dst pairs covering intra-rack, inter-rack and every ToR.
	pairs := [][2]int{{0, 1}, {0, 95}, {7, 8}, {40, 41}, {95, 0}, {13, 77}}
	for t2 := 0; t2 < 12; t2++ {
		pairs = append(pairs, [2]int{t2 * 8, (t2*8 + 9) % 96})
	}
	for i, pr := range pairs {
		c := &capture{}
		n.Hosts[pr[1]].Register(packet.FlowID(i+1), c)
		n.Hosts[pr[0]].Send(&packet.Packet{
			Flow: packet.FlowID(i + 1), Dst: packet.NodeID(pr[1]),
			Type: packet.Data, Len: 100,
		})
		s.RunAll()
		if len(c.got) != 1 {
			t.Fatalf("pair %v: delivered %d packets", pr, len(c.got))
		}
	}
}

func TestLeafSpineECMPSpreadsFlows(t *testing.T) {
	s := sim.New()
	n := defaultLS(s)
	// Many flows host0 -> host95: the four spine paths should all carry
	// traffic, and each flow must stay on one path (no reordering).
	c := &capture{}
	for f := 1; f <= 64; f++ {
		n.Hosts[95].Register(packet.FlowID(f), c)
		for k := 0; k < 3; k++ {
			n.Hosts[0].Send(&packet.Packet{
				Flow: packet.FlowID(f), Dst: 95,
				Type: packet.Data, Seq: int64(k), Len: 100,
			})
		}
	}
	s.RunAll()
	if len(c.got) != 64*3 {
		t.Fatalf("delivered %d", len(c.got))
	}
	perFlowSeq := map[packet.FlowID]int64{}
	for _, p := range c.got {
		if p.Seq != perFlowSeq[p.Flow] {
			t.Fatalf("flow %d reordered", p.Flow)
		}
		perFlowSeq[p.Flow]++
	}
	// Spine utilization: count spine switches that forwarded bytes.
	used := 0
	for _, sw := range n.Switches[12:] {
		var bytes int64
		for p := 0; p < sw.NumPorts(); p++ {
			bytes += sw.Tx(p).TxBytes
		}
		if bytes > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d of 4 spines used by 64 flows", used)
	}
}

func TestStar(t *testing.T) {
	s := sim.New()
	n := Star(s, StarConfig{
		Hosts:       9,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	if len(n.Hosts) != 9 || len(n.Switches) != 1 {
		t.Fatal("star shape wrong")
	}
	c := &capture{}
	n.Hosts[0].Register(1, c)
	for h := 1; h < 9; h++ {
		n.Hosts[h].Send(&packet.Packet{Flow: 1, Dst: 0, Type: packet.Data, Len: 100})
	}
	s.RunAll()
	if len(c.got) != 8 {
		t.Fatalf("delivered %d", len(c.got))
	}
}

func TestDumbbell(t *testing.T) {
	s := sim.New()
	n := Dumbbell(s, DumbbellConfig{
		LeftHosts: 7, RightHosts: 2,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	if len(n.Hosts) != 9 || len(n.Switches) != 2 {
		t.Fatal("dumbbell shape wrong")
	}
	// Left to right crosses the inter-switch link.
	c := &capture{}
	n.Hosts[8].Register(1, c)
	n.Hosts[0].Send(&packet.Packet{Flow: 1, Dst: 8, Type: packet.Data, Len: 100})
	// Right to left too.
	c2 := &capture{}
	n.Hosts[1].Register(2, c2)
	n.Hosts[7].Send(&packet.Packet{Flow: 2, Dst: 1, Type: packet.Data, Len: 100})
	s.RunAll()
	if len(c.got) != 1 || len(c2.got) != 1 {
		t.Fatalf("cross deliveries: %d, %d", len(c.got), len(c2.got))
	}
}

func TestCountersAggregate(t *testing.T) {
	s := sim.New()
	n := defaultLS(s)
	ctr := n.Counters()
	if ctr.TotalDrops() != 0 || ctr.EnqGreen != 0 {
		t.Fatal("fresh network has non-zero counters")
	}
}

func TestPausedFraction(t *testing.T) {
	s := sim.New()
	n := Star(s, StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 1 << 20},
	})
	n.Txs[0].Pause()
	s.Post(100*sim.Microsecond, func() {})
	s.RunAll()
	n.FinishPausedClocks()
	frac := n.PausedFraction(100 * sim.Microsecond)
	want := 1.0 / float64(len(n.Txs))
	if frac < want*0.99 || frac > want*1.01 {
		t.Fatalf("paused fraction = %f, want %f", frac, want)
	}
}
