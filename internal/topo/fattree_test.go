package topo

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

func fatTreeCfg(k int) FatTreeConfig {
	return FatTreeConfig{
		K:           k,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes: 4_500_000,
			Alpha:       1,
		},
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 8} {
		s := sim.New()
		n := FatTree(s, fatTreeCfg(k))
		half := k / 2
		wantHosts := k * k * k / 4
		if len(n.Hosts) != wantHosts {
			t.Fatalf("k=%d: hosts = %d, want %d", k, len(n.Hosts), wantHosts)
		}
		wantSw := k*half + k*half + half*half
		if len(n.Switches) != wantSw {
			t.Fatalf("k=%d: switches = %d, want %d", k, len(n.Switches), wantSw)
		}
		for i, sw := range n.Switches {
			if sw.NumPorts() != k {
				t.Fatalf("k=%d: switch %d has %d ports, want %d", k, i, sw.NumPorts(), k)
			}
		}
		// Hosts + edge↔agg (k·(k/2)² links) + agg↔core (k·(k/2)² links),
		// both directions.
		wantTx := 2 * (wantHosts + k*half*half + k*half*half)
		if len(n.Txs) != wantTx {
			t.Fatalf("k=%d: transmitters = %d, want %d", k, len(n.Txs), wantTx)
		}
		if n.BaseRTT != 2*6*10*sim.Microsecond {
			t.Fatalf("k=%d: BaseRTT = %v", k, n.BaseRTT)
		}
		if FatTreeHosts(k) != wantHosts {
			t.Fatalf("FatTreeHosts(%d) = %d", k, FatTreeHosts(k))
		}
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	k := 4
	s := sim.New()
	n := FatTree(s, fatTreeCfg(k))
	hosts := len(n.Hosts) // 16
	// Every ordered pair: same-edge, same-pod cross-edge, cross-pod.
	f := packet.FlowID(0)
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if src == dst {
				continue
			}
			f++
			c := &capture{}
			n.Hosts[dst].Register(f, c)
			n.Hosts[src].Send(&packet.Packet{
				Flow: f, Dst: packet.NodeID(dst),
				Type: packet.Data, Len: 100,
			})
			s.RunAll()
			if len(c.got) != 1 {
				t.Fatalf("pair (%d,%d): delivered %d packets", src, dst, len(c.got))
			}
			n.Hosts[dst].Unregister(f)
		}
	}
}

func TestFatTreeECMPSpreadsAcrossCores(t *testing.T) {
	k := 8
	s := sim.New()
	n := FatTree(s, fatTreeCfg(k))
	half := k / 2
	numEdge, numAgg, numCore := k*half, k*half, half*half
	src, dst := 0, len(n.Hosts)-1 // cross-pod
	c := &capture{}
	for f := 1; f <= 256; f++ {
		n.Hosts[dst].Register(packet.FlowID(f), c)
		for seq := 0; seq < 3; seq++ {
			n.Hosts[src].Send(&packet.Packet{
				Flow: packet.FlowID(f), Dst: packet.NodeID(dst),
				Type: packet.Data, Seq: int64(seq), Len: 100,
			})
		}
	}
	s.RunAll()
	if len(c.got) != 256*3 {
		t.Fatalf("delivered %d", len(c.got))
	}
	perFlowSeq := map[packet.FlowID]int64{}
	for _, p := range c.got {
		if p.Seq != perFlowSeq[p.Flow] {
			t.Fatalf("flow %d reordered", p.Flow)
		}
		perFlowSeq[p.Flow]++
	}
	used := 0
	for _, sw := range n.Switches[numEdge+numAgg : numEdge+numAgg+numCore] {
		var bytes int64
		for p := 0; p < sw.NumPorts(); p++ {
			bytes += sw.Tx(p).TxBytes
		}
		if bytes > 0 {
			used++
		}
	}
	if used < numCore/2 {
		t.Fatalf("only %d of %d cores used by 256 cross-pod flows", used, numCore)
	}
}

// A sharded fat-tree build must deliver identically to the classic one,
// and the partitioner must keep every shard non-empty.
func TestFatTreeShardedDelivery(t *testing.T) {
	k := 4
	for _, shards := range []int{1, 4} {
		g := sim.NewGroup(shards, 10*sim.Microsecond)
		cfg := fatTreeCfg(k)
		cfg.Group = g
		n := FatTree(g.Shard(0), cfg)
		if len(n.Pools) != shards {
			t.Fatalf("shards=%d: %d pools", shards, len(n.Pools))
		}
		seen := make([]bool, shards)
		for _, sh := range n.SwitchShard {
			seen[sh] = true
		}
		for sh, ok := range seen {
			if !ok {
				t.Fatalf("shards=%d: shard %d owns no switches", shards, sh)
			}
		}
		src, dst := 0, len(n.Hosts)-1
		c := &capture{}
		n.Hosts[dst].Register(1, c)
		n.ShardSim(n.HostShard[src]).At(0, func() {
			n.Hosts[src].Send(&packet.Packet{
				Flow: 1, Dst: packet.NodeID(dst), Type: packet.Data, Len: 100,
			})
		})
		g.Run(sim.Second)
		if len(c.got) != 1 {
			t.Fatalf("shards=%d: delivered %d packets", shards, len(c.got))
		}
	}
}

// Classic build uses per-pod pools; pods must not share.
func TestFatTreePerPodPools(t *testing.T) {
	s := sim.New()
	n := FatTree(s, fatTreeCfg(4))
	if len(n.Pools) != 4 {
		t.Fatalf("pools = %d, want one per pod", len(n.Pools))
	}
	for i := 1; i < len(n.Pools); i++ {
		if n.Pools[i] == n.Pools[0] {
			t.Fatalf("pod %d shares pool with pod 0", i)
		}
	}
}
