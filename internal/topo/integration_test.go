package topo

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// TestLeafSpinePFCLossless runs a hard incast over the full fabric with
// PFC enabled and verifies the lossless property end to end: zero drops,
// every flow completes, pauses happen and unwind (no deadlock — the
// up/down routing of a leaf-spine is cycle-free).
func TestLeafSpinePFCLossless(t *testing.T) {
	s := sim.New()
	cfg := DefaultLeafSpine(10 * sim.Microsecond)
	cfg.Switch.PFC = true
	cfg.Switch.XOff = cfg.Switch.BufferBytes / (2 * 12)
	cfg.Switch.XOn = cfg.Switch.XOff - 2096
	cfg.Switch.ECN = fabric.ECNStep
	cfg.Switch.KEcn = 200_000
	n := LeafSpine(s, cfg)

	rec := stats.NewRecorder()
	tcfg := tcp.DCTCPConfig()
	id := packet.FlowID(1)
	// 95-to-1 incast of 8kB flows plus cross-rack background.
	for h := 1; h < 96; h++ {
		f := &transport.Flow{ID: id, Src: packet.NodeID(h), Dst: 0, Size: 8_000, FG: true}
		id++
		tcp.StartFlow(s, n.Hosts[h], n.Hosts[0], f, tcfg, rec, nil)
	}
	for i := 0; i < 8; i++ {
		f := &transport.Flow{ID: id, Src: packet.NodeID(8 + i), Dst: packet.NodeID(80 + i), Size: 2_000_000}
		id++
		tcp.StartFlow(s, n.Hosts[8+i], n.Hosts[80+i], f, tcfg, rec, nil)
	}
	end := s.Run(5 * sim.Second)
	n.FinishPausedClocks()

	ctr := n.Counters()
	if ctr.TotalDrops() != 0 {
		t.Fatalf("PFC network dropped packets: %+v", ctr)
	}
	if ctr.PauseFrames == 0 {
		t.Fatal("incast should trigger PFC PAUSE")
	}
	if ctr.ResumeFrames != ctr.PauseFrames {
		t.Fatalf("pause/resume unbalanced at end: %d vs %d (stuck pause?)",
			ctr.PauseFrames, ctr.ResumeFrames)
	}
	done, total := rec.CompletedCount(true)
	if done != total {
		t.Fatalf("%d/%d fg flows complete", done, total)
	}
	if d, tot := rec.CompletedCount(false); d != tot {
		t.Fatalf("%d/%d bg flows complete", d, tot)
	}
	if rec.TimeoutsAll() != 0 {
		t.Fatalf("timeouts in a lossless network: %d", rec.TimeoutsAll())
	}
	if frac := n.PausedFraction(end); frac <= 0 || frac > 0.5 {
		t.Fatalf("paused fraction = %v", frac)
	}
}

// TestLeafSpineTLTUnderChurn: repeated incast events with TLT on the
// full fabric — no timeouts, no important drops, bounded red queues.
func TestLeafSpineTLTUnderChurn(t *testing.T) {
	s := sim.New()
	cfg := DefaultLeafSpine(10 * sim.Microsecond)
	cfg.Switch.ColorThreshold = 400_000
	cfg.Switch.ECN = fabric.ECNStep
	cfg.Switch.KEcn = 200_000
	n := LeafSpine(s, cfg)

	rec := stats.NewRecorder()
	tcfg := tcp.DCTCPConfig()
	tcfg.TLT = core.Config{Enabled: true}
	id := packet.FlowID(1)
	for wave := 0; wave < 3; wave++ {
		dst := packet.NodeID(wave * 13 % 96)
		at := sim.Time(wave) * 500 * sim.Microsecond
		for h := 0; h < 96; h++ {
			if packet.NodeID(h) == dst {
				continue
			}
			f := &transport.Flow{ID: id, Src: packet.NodeID(h), Dst: dst, Size: 8_000, Start: at, FG: true}
			id++
			tcp.StartFlow(s, n.Hosts[h], n.Hosts[dst], f, tcfg, rec, nil)
		}
	}
	s.Run(5 * sim.Second)

	if d, tot := rec.CompletedCount(true); d != tot {
		t.Fatalf("%d/%d flows complete", d, tot)
	}
	if rec.TimeoutsAll() != 0 {
		t.Fatalf("timeouts with TLT: %d", rec.TimeoutsAll())
	}
	ctr := n.Counters()
	if ctr.DropGreen != 0 {
		t.Fatalf("important drops: %d", ctr.DropGreen)
	}
	for _, sw := range n.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			if red := sw.MaxRedQueueBytes(p); red > 400_000+2096 {
				t.Fatalf("red queue reached %d > K", red)
			}
		}
	}
}
