package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tlt/internal/sim"
)

func TestWebSearchMeanMatchesPaper(t *testing.T) {
	// §7.1: "an average flow size of 1.72 MB".
	m := WebSearch.Mean()
	if m < 1.55e6 || m > 1.9e6 {
		t.Fatalf("web-search mean = %.0f bytes, want ~1.72MB", m)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	for _, d := range []*SizeDist{WebSearch, WebServer, CacheFollower} {
		rng := sim.NewRNG(1)
		lo := int64(d.x[0])
		hi := int64(d.x[len(d.x)-1])
		for i := 0; i < 10_000; i++ {
			v := d.Sample(rng)
			if v < 1 || v < lo-1 || v > hi {
				t.Fatalf("%s: sample %d out of [%d, %d]", d.Name, v, lo, hi)
			}
		}
	}
}

func TestEmpiricalMeanApproachesAnalytic(t *testing.T) {
	for _, d := range []*SizeDist{WebSearch, WebServer, CacheFollower} {
		rng := sim.NewRNG(7)
		var sum float64
		const n = 400_000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("%s: empirical mean %.0f vs analytic %.0f", d.Name, got, want)
		}
	}
}

func TestSampleMonotoneInU(t *testing.T) {
	// Property: inverse-CDF sampling preserves order of the uniform
	// draws (sampling determinism up to RNG).
	f := func(seed int64) bool {
		a := sim.NewRNG(seed)
		b := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			if WebSearch.Sample(a) != WebSearch.Sample(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "webserver", "cachefollower"} {
		if d, ok := ByName(name); !ok || d.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestBadDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotone knots should panic")
		}
	}()
	NewSizeDist("bad", [][2]float64{{10, 0}, {5, 1}})
}

func TestGenerateSchedule(t *testing.T) {
	cfg := DefaultTraffic(0.4, 500)
	cfg.Seed = 3
	flows := Generate(cfg, 1)
	if len(flows) <= 500 {
		t.Fatalf("flows = %d, expected background plus foreground", len(flows))
	}
	if !sort.SliceIsSorted(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start }) {
		t.Fatal("schedule not sorted by start time")
	}
	seen := map[uint64]bool{}
	var fg, bg int
	for _, f := range flows {
		if seen[uint64(f.ID)] {
			t.Fatal("duplicate flow ID")
		}
		seen[uint64(f.ID)] = true
		if f.Src == f.Dst {
			t.Fatal("flow to self")
		}
		if int(f.Src) >= cfg.NumHosts || int(f.Dst) >= cfg.NumHosts {
			t.Fatal("host out of range")
		}
		if f.FG {
			fg++
			if f.Size != cfg.FgFlowSize {
				t.Fatalf("fg size = %d", f.Size)
			}
		} else {
			bg++
			if f.Size < 1 {
				t.Fatal("bg size < 1")
			}
		}
	}
	if bg != 500 {
		t.Fatalf("bg flows = %d", bg)
	}
	// Incast events come in bursts of FanOut*FlowsPerSender flows.
	if fg%(cfg.FanOut*cfg.FlowsPerSender) != 0 {
		t.Fatalf("fg flows = %d not a multiple of %d", fg, cfg.FanOut*cfg.FlowsPerSender)
	}
	if fg == 0 {
		t.Fatal("no incast events generated")
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	cfg := DefaultTraffic(0.3, 200)
	cfg.Seed = 5
	a := Generate(cfg, 1)
	b := Generate(cfg, 1)
	if len(a) != len(b) {
		t.Fatal("same seed produced different flow counts")
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("same seed diverged")
		}
	}
	cfg.Seed = 6
	c := Generate(cfg, 1)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Size != c[i].Size {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestIncastEventStructure(t *testing.T) {
	cfg := DefaultTraffic(0.4, 300)
	cfg.Seed = 9
	flows := Generate(cfg, 1)
	// Group fg flows by start time: each event has one receiver and
	// FanOut senders with FlowsPerSender flows each.
	events := map[sim.Time][]int{}
	for i, f := range flows {
		if f.FG {
			events[f.Start] = append(events[f.Start], i)
		}
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for at, idxs := range events {
		dst := flows[idxs[0]].Dst
		perSender := map[int32]int{}
		for _, i := range idxs {
			f := flows[i]
			if f.Dst != dst {
				t.Fatalf("event at %v has multiple receivers", at)
			}
			if f.Src == dst {
				t.Fatal("receiver sending to itself")
			}
			perSender[int32(f.Src)]++
		}
		if len(perSender) != cfg.FanOut {
			t.Fatalf("event at %v has %d senders, want %d", at, len(perSender), cfg.FanOut)
		}
		for s, cnt := range perSender {
			if cnt != cfg.FlowsPerSender {
				t.Fatalf("sender %d has %d flows", s, cnt)
			}
		}
	}
}

func TestFgVolumeShare(t *testing.T) {
	cfg := DefaultTraffic(0.4, 5000)
	cfg.Seed = 11
	flows := Generate(cfg, 1)
	var fgB, bgB float64
	for _, f := range flows {
		if f.FG {
			fgB += float64(f.Size)
		} else {
			bgB += float64(f.Size)
		}
	}
	share := fgB / (fgB + bgB)
	if share < 0.02 || share > 0.12 {
		t.Fatalf("fg share = %.3f, want near 0.05", share)
	}
}
