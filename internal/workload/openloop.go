package workload

import (
	"math"

	"tlt/internal/sim"
)

// RPC approximates a key-value service's response-size distribution:
// small objects with a modest tail, mean ~2.9 kB. Used by the scale
// experiments' service mode, where the interesting pressure is
// connection churn and fan-in, not elephant bytes.
var RPC = NewSizeDist("rpc", [][2]float64{
	{256, 0}, {512, 0.3}, {1_024, 0.6}, {2_048, 0.8},
	{4_096, 0.9}, {16_384, 0.97}, {65_536, 1},
})

// Arrival is one open-loop flow arrival. Unlike the closed-loop
// Generate path, arrivals are produced by an iterator and never
// materialized as a slice — million-flow schedules walk in O(1) memory.
type Arrival struct {
	At       sim.Time
	Src, Dst int // host indexes
	Size     int64
	FG       bool
}

// Source yields a deterministic arrival stream in non-decreasing time
// order. Every shard of a sharded run constructs its own identical
// Source (same seed) and walks the full schedule, acting only on the
// endpoints it owns — so the schedule is byte-identical at any shard
// count without any cross-shard hand-off.
type Source interface {
	// Next returns the next arrival, or ok=false when exhausted.
	Next() (a Arrival, ok bool)
}

// PoissonConfig parametrizes an open-loop Poisson pair stream: Flows
// arrivals with Exp(MeanGap) inter-arrival times between uniformly
// random distinct host pairs, sizes drawn from Dist.
type PoissonConfig struct {
	Flows   int
	MeanGap sim.Time
	Hosts   int
	Dist    *SizeDist
	Seed    int64
	FG      bool
}

// Poisson implements Source for PoissonConfig.
type Poisson struct {
	cfg  PoissonConfig
	rng  *sim.RNG
	now  sim.Time
	left int
}

// NewPoisson returns a fresh iterator over the configured stream.
func NewPoisson(cfg PoissonConfig) *Poisson {
	return &Poisson{cfg: cfg, rng: sim.NewRNG(cfg.Seed), left: cfg.Flows}
}

// Next implements Source.
func (p *Poisson) Next() (Arrival, bool) {
	if p.left <= 0 {
		return Arrival{}, false
	}
	p.left--
	p.now += p.rng.ExpDuration(p.cfg.MeanGap)
	src := p.rng.Intn(p.cfg.Hosts)
	dst := p.rng.Intn(p.cfg.Hosts - 1)
	if dst >= src {
		dst++
	}
	return Arrival{
		At:   p.now,
		Src:  src,
		Dst:  dst,
		Size: p.cfg.Dist.Sample(p.rng),
		FG:   p.cfg.FG,
	}, true
}

// Zipf samples {0..n-1} with P(i) ∝ 1/(i+1)^skew via a cumulative
// table and binary search. Deterministic given the RNG stream; O(n)
// memory once, O(log n) per draw.
type Zipf struct {
	cum []float64
}

// NewZipf builds the sampler. skew <= 0 degenerates to uniform.
func NewZipf(n int, skew float64) *Zipf {
	z := &Zipf{cum: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Sample draws one index.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of index i.
func (z *Zipf) P(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// merged interleaves two sources by arrival time; ties go to the first
// source, so the merge is deterministic.
type merged struct {
	a, b     Source
	na, nb   Arrival
	oka, okb bool
	primed   bool
}

// MergeSources combines two arrival streams into one time-ordered
// stream. Both inputs must themselves be time-ordered.
func MergeSources(a, b Source) Source { return &merged{a: a, b: b} }

func (m *merged) Next() (Arrival, bool) {
	if !m.primed {
		m.na, m.oka = m.a.Next()
		m.nb, m.okb = m.b.Next()
		m.primed = true
	}
	switch {
	case m.oka && (!m.okb || m.na.At <= m.nb.At):
		out := m.na
		m.na, m.oka = m.a.Next()
		return out, true
	case m.okb:
		out := m.nb
		m.nb, m.okb = m.b.Next()
		return out, true
	}
	return Arrival{}, false
}
