// Package workload generates the paper's traffic mixes: Poisson-arrival
// background flows drawn from published datacenter flow-size
// distributions, and on/off incast foreground traffic (95 senders × 8
// flows × 8 kB to one receiver by default).
package workload

import (
	"fmt"
	"sort"

	"tlt/internal/sim"
)

// SizeDist is an empirical flow-size CDF sampled by inverse transform
// with linear interpolation between knots.
type SizeDist struct {
	Name string
	x    []float64 // sizes in bytes, ascending
	cdf  []float64 // cumulative probability at x, ascending, ends at 1
}

// NewSizeDist builds a distribution from (size, cdf) knots. The first
// knot's cdf may be > 0 (mass at the minimum size); the last must be 1.
func NewSizeDist(name string, knots [][2]float64) *SizeDist {
	d := &SizeDist{Name: name}
	for _, k := range knots {
		d.x = append(d.x, k[0])
		d.cdf = append(d.cdf, k[1])
	}
	if !sort.Float64sAreSorted(d.x) || !sort.Float64sAreSorted(d.cdf) {
		panic(fmt.Sprintf("workload: %s knots not monotone", name))
	}
	if d.cdf[len(d.cdf)-1] != 1 {
		panic(fmt.Sprintf("workload: %s cdf does not reach 1", name))
	}
	return d
}

// Sample draws one flow size in bytes (at least 1).
func (d *SizeDist) Sample(rng *sim.RNG) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		if v := int64(d.x[0]); v > 0 {
			return v
		}
		return 1
	}
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	x0, x1 := d.x[i-1], d.x[i]
	c0, c1 := d.cdf[i-1], d.cdf[i]
	v := x0
	if c1 > c0 {
		v = x0 + (x1-x0)*(u-c0)/(c1-c0)
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Mean returns the distribution mean in bytes (piecewise-uniform).
func (d *SizeDist) Mean() float64 {
	m := d.x[0] * d.cdf[0]
	for i := 1; i < len(d.x); i++ {
		p := d.cdf[i] - d.cdf[i-1]
		m += p * (d.x[i-1] + d.x[i]) / 2
	}
	return m
}

// WebSearch is the "background traffic" distribution from the DCTCP
// paper (Alizadeh et al. 2010), the paper's default background workload;
// its mean is ~1.7 MB as §7.1 states.
var WebSearch = NewSizeDist("websearch", [][2]float64{
	{6_000, 0}, {10_000, 0.15}, {18_000, 0.2}, {28_000, 0.3},
	{50_000, 0.4}, {80_000, 0.53}, {200_000, 0.6}, {1_000_000, 0.7},
	{2_000_000, 0.8}, {5_000_000, 0.9}, {10_000_000, 0.97}, {30_000_000, 1},
})

// WebServer approximates the Facebook web-server distribution (Roy et
// al., SIGCOMM'15): dominated by sub-kilobyte responses with a thin heavy
// tail.
var WebServer = NewSizeDist("webserver", [][2]float64{
	{100, 0}, {200, 0.3}, {300, 0.55}, {500, 0.7}, {1_000, 0.8},
	{2_000, 0.85}, {10_000, 0.9}, {100_000, 0.96}, {1_000_000, 0.99},
	{10_000_000, 1},
})

// CacheFollower approximates the Facebook cache-follower distribution
// (Roy et al., SIGCOMM'15): small and medium objects with a modest tail.
var CacheFollower = NewSizeDist("cachefollower", [][2]float64{
	{100, 0}, {300, 0.2}, {1_000, 0.4}, {2_000, 0.55}, {5_000, 0.7},
	{10_000, 0.8}, {50_000, 0.9}, {500_000, 0.97}, {5_000_000, 1},
})

// ByName returns a built-in distribution.
func ByName(name string) (*SizeDist, bool) {
	switch name {
	case "websearch":
		return WebSearch, true
	case "webserver":
		return WebServer, true
	case "cachefollower":
		return CacheFollower, true
	}
	return nil, false
}
