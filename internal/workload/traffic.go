package workload

import (
	"sort"

	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

// TrafficConfig describes the paper's benchmark mix (§7.1): Poisson
// background flows between random host pairs plus periodic incast events
// in which FanOut senders each open FlowsPerSender flows of FgFlowSize
// bytes to one receiver.
type TrafficConfig struct {
	NumHosts int

	// Load is the average utilization of the ToR-to-core links
	// contributed by all traffic; FgShare of the volume is foreground.
	Load    float64
	FgShare float64

	// CoreCapacityBps is the aggregate ToR→core capacity; InterRackProb
	// is the probability a random background flow crosses the core.
	CoreCapacityBps float64
	InterRackProb   float64

	NumBgFlows     int
	Dist           *SizeDist
	FanOut         int   // incast senders per event (95)
	FlowsPerSender int   // 8
	FgFlowSize     int64 // 8 kB

	Seed int64
}

// DefaultTraffic returns the §7.1 mix for the default 96-host leaf-spine
// fabric at the given load, scaled to numBgFlows background flows.
func DefaultTraffic(load float64, numBgFlows int) TrafficConfig {
	const hosts = 96
	return TrafficConfig{
		NumHosts:        hosts,
		Load:            load,
		FgShare:         0.05,
		CoreCapacityBps: 12 * 4 * 40e9,
		InterRackProb:   1 - 7.0/95.0,
		NumBgFlows:      numBgFlows,
		Dist:            WebSearch,
		FanOut:          hosts - 1,
		FlowsPerSender:  8,
		FgFlowSize:      8_000,
		Seed:            1,
	}
}

// Generate produces the flow arrival schedule, sorted by start time.
// Flow IDs start at firstID.
func Generate(cfg TrafficConfig, firstID packet.FlowID) []*transport.Flow {
	rng := sim.NewRNG(cfg.Seed)
	var flows []*transport.Flow
	id := firstID

	// Background: Poisson arrivals of Dist-sized flows between random
	// distinct hosts. The aggregate rate is chosen so the background
	// share of Load is met on the core links.
	bgLoad := cfg.Load * (1 - cfg.FgShare)
	meanBits := cfg.Dist.Mean() * 8
	bgBps := bgLoad * cfg.CoreCapacityBps / cfg.InterRackProb
	bgInterval := sim.Time(meanBits / bgBps * 1e9) // ns between arrivals
	var horizon sim.Time
	t := sim.Time(0)
	for i := 0; i < cfg.NumBgFlows; i++ {
		t += rng.ExpDuration(bgInterval)
		src := rng.Intn(cfg.NumHosts)
		dst := rng.Intn(cfg.NumHosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, &transport.Flow{
			ID:    id,
			Src:   packet.NodeID(src),
			Dst:   packet.NodeID(dst),
			Size:  cfg.Dist.Sample(rng),
			Start: t,
		})
		id++
	}
	horizon = t

	// Foreground: incast events at a rate giving FgShare of volume.
	if cfg.FgShare > 0 && cfg.FanOut > 0 {
		eventBytes := float64(cfg.FanOut) * float64(cfg.FlowsPerSender) * float64(cfg.FgFlowSize)
		fgBps := cfg.Load * cfg.FgShare * cfg.CoreCapacityBps / cfg.InterRackProb
		eventInterval := sim.Time(eventBytes * 8 / fgBps * 1e9)
		// At reduced background scale the horizon can be shorter than
		// the nominal inter-event gap; guarantee a few incast events so
		// foreground tails remain measurable (this raises the effective
		// fg share on tiny runs, which the quick scale accepts).
		if eventInterval > horizon/3 && horizon > 0 {
			eventInterval = horizon / 3
		}
		for t := rng.ExpDuration(eventInterval); t < horizon; t += rng.ExpDuration(eventInterval) {
			dst := rng.Intn(cfg.NumHosts)
			senders := rng.Perm(cfg.NumHosts)
			cnt := 0
			for _, src := range senders {
				if src == dst {
					continue
				}
				if cnt >= cfg.FanOut {
					break
				}
				cnt++
				for k := 0; k < cfg.FlowsPerSender; k++ {
					flows = append(flows, &transport.Flow{
						ID:    id,
						Src:   packet.NodeID(src),
						Dst:   packet.NodeID(dst),
						Size:  cfg.FgFlowSize,
						Start: t,
						FG:    true,
					})
					id++
				}
			}
		}
	}

	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start })
	return flows
}
