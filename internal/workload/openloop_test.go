package workload

import (
	"math"
	"sort"
	"testing"

	"tlt/internal/sim"
)

// Poisson arrivals must have exponential inter-arrival times: a
// Kolmogorov–Smirnov-style check of the empirical gap CDF against
// 1-exp(-x/mean).
func TestPoissonInterArrivalKS(t *testing.T) {
	const n = 20000
	mean := 50 * sim.Microsecond
	p := NewPoisson(PoissonConfig{
		Flows: n, MeanGap: mean, Hosts: 64, Dist: RPC, Seed: 9,
	})
	gaps := make([]float64, 0, n)
	var prev sim.Time
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		if a.At < prev {
			t.Fatal("arrivals not time-ordered")
		}
		gaps = append(gaps, float64(a.At-prev))
		prev = a.At
	}
	if len(gaps) != n {
		t.Fatalf("got %d arrivals, want %d", len(gaps), n)
	}
	// Walk the sorted sample and track the max CDF deviation.
	sort.Float64s(gaps)
	var d float64
	for i, g := range gaps {
		fe := 1 - math.Exp(-g/float64(mean))
		emp0 := float64(i) / n
		emp1 := float64(i+1) / n
		if dev := math.Abs(fe - emp0); dev > d {
			d = dev
		}
		if dev := math.Abs(fe - emp1); dev > d {
			d = dev
		}
	}
	// KS critical value at alpha=0.001 is ~1.95/sqrt(n) ≈ 0.014; allow
	// headroom for the 1ns ExpDuration floor.
	if d > 0.02 {
		t.Fatalf("KS statistic %.4f too large for Exp(%v) inter-arrivals", d, mean)
	}
}

// Zipf must concentrate mass: the top 1% of keys at skew 1.1 carry far
// more than their uniform share, and empirical frequencies must match
// the analytic probabilities.
func TestZipfSkewMass(t *testing.T) {
	const keys, draws = 1000, 200000
	z := NewZipf(keys, 1.1)
	rng := sim.NewRNG(5)
	counts := make([]int, keys)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	var top int
	for k := 0; k < keys/100; k++ {
		top += counts[k]
	}
	topFrac := float64(top) / draws
	if topFrac < 0.15 {
		t.Fatalf("top 1%% of keys carry only %.3f of draws; Zipf(1.1) should concentrate >15%%", topFrac)
	}
	// Analytic check on the head keys (enough samples for a tight bound).
	for k := 0; k < 10; k++ {
		want := z.P(k)
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01+0.2*want {
			t.Fatalf("key %d: empirical %.4f vs analytic %.4f", k, got, want)
		}
	}
	var sum float64
	for k := 0; k < keys; k++ {
		sum += z.P(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
}

// The open-loop schedule must be byte-identical across independently
// constructed iterators — the property that lets every shard of a
// sharded run walk its own copy and agree on every arrival.
func TestOpenLoopScheduleDeterministic(t *testing.T) {
	mk := func() Source {
		bg := NewPoisson(PoissonConfig{
			Flows: 500, MeanGap: sim.Millisecond, Hosts: 128,
			Dist: WebSearch, Seed: 77,
		})
		fg := NewPoisson(PoissonConfig{
			Flows: 900, MeanGap: 300 * sim.Microsecond, Hosts: 128,
			Dist: RPC, Seed: 78, FG: true,
		})
		return MergeSources(fg, bg)
	}
	a, b := mk(), mk()
	var n int
	var prev sim.Time
	for {
		x, okx := a.Next()
		y, oky := b.Next()
		if okx != oky {
			t.Fatal("streams end at different lengths")
		}
		if !okx {
			break
		}
		if x != y {
			t.Fatalf("arrival %d diverges: %+v vs %+v", n, x, y)
		}
		if x.At < prev {
			t.Fatalf("merged stream out of order at %d", n)
		}
		prev = x.At
		n++
	}
	if n != 1400 {
		t.Fatalf("merged %d arrivals, want 1400", n)
	}
}

func TestMergeSourcesOrdersAndExhausts(t *testing.T) {
	a := NewPoisson(PoissonConfig{Flows: 10, MeanGap: sim.Second, Hosts: 4, Dist: RPC, Seed: 1})
	b := NewPoisson(PoissonConfig{Flows: 200, MeanGap: sim.Millisecond, Hosts: 4, Dist: RPC, Seed: 2})
	m := MergeSources(a, b)
	var prev sim.Time
	n := 0
	for {
		x, ok := m.Next()
		if !ok {
			break
		}
		if x.At < prev {
			t.Fatalf("out of order at %d", n)
		}
		prev = x.At
		n++
	}
	if n != 210 {
		t.Fatalf("merged %d arrivals, want 210", n)
	}
}
