package sim

import "math/bits"

// The scheduler front end is a hierarchical timing wheel: four levels of
// 256 slots each, with level-0 slots 1 ns wide. An event at absolute time
// at is placed at the lowest level whose slot index differs from the
// cursor's — equivalently, by the highest byte in which at and the cursor
// disagree — so every event within ~4.29 s (2^32 ns) of the cursor lives
// in the wheel and is scheduled and popped in O(1). Events farther out go
// to a 4-ary overflow heap and are promoted into the wheel in batches
// when the cursor crosses a 2^32 ns window boundary.
//
// Ordering guarantee: a level-0 slot is 1 ns wide, so every event in it
// shares the same timestamp, and slot lists are appended in scheduling
// order (ascending seq). Cascades (re-binning a higher-level slot when
// the cursor enters it) walk the list in order and append, so they are
// stable, and the XOR placement rule guarantees that two events for the
// same instant are always in the same list while they wait. The firing
// order is therefore exactly (time, seq) — byte-identical to the flat
// heap this replaced.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelLevels = 4
	slotMask    = wheelSlots - 1
	// wheelSpan is the horizon covered by the wheel relative to the
	// cursor: 2^32 ns. Events at or beyond it overflow to the heap.
	wheelSpan = uint64(1) << (wheelBits * wheelLevels)
)

// Event states. Free events are pooled (or, for external events, idle);
// dead events are cancelled overflow-heap entries awaiting reclamation.
// The state lives in the low bits of Event.where; the high bit marks an
// externally owned event (NewEvent/NewKindEvent) that is never returned
// to the node pool.
const (
	evFree uint8 = iota
	evWheel
	evHeap
	evRun
	evDead

	evStateMask uint8 = 0x0f
	evExt       uint8 = 0x80
)

// Event is one schedulable entry: an intrusive doubly-linked node when it
// lives in a wheel slot, a leaf when it lives in the overflow heap.
// Events are pooled by the Sim; fabric code preallocates self-rescheduling
// events with NewEvent so the packet hot path allocates nothing.
//
// The layout is exactly one cache line (64 bytes): payload is either
// fn+arg (kindFnArg), a func() boxed in arg (kindFunc), or a typed
// kind+tgt+arg triple dispatched through the kind table.
type Event struct {
	at  Time
	seq uint64

	next, prev *Event

	fn  func(any)
	arg any

	tgt   uint32
	kind  EventKind
	where uint8 // evExt bit | state
	level uint8
	slot  uint8
}

func (e *Event) state() uint8      { return e.where & evStateMask }
func (e *Event) setState(st uint8) { e.where = e.where&evExt | st }
func (e *Event) isExt() bool       { return e.where&evExt != 0 }

// Scheduled reports whether the event is currently queued to fire.
func (e *Event) Scheduled() bool {
	st := e.where & evStateMask
	return st == evWheel || st == evHeap
}

// evList is one wheel slot: a FIFO of events in scheduling (seq) order.
type evList struct{ head, tail *Event }

// heapItem is one overflow-heap entry. The hot comparisons touch only
// the 24-byte item, not the event.
type heapItem struct {
	at  Time
	seq uint64
	ev  *Event
}

func (a *heapItem) before(b *heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- wheel slot bitmaps ---------------------------------------------------

func (s *Sim) setBit(l, i int) { s.bitmap[l][i>>6] |= 1 << uint(i&63) }

func (s *Sim) clearBit(l, i int) { s.bitmap[l][i>>6] &^= 1 << uint(i&63) }

// nextBit returns the first occupied slot index >= from at level l, or -1.
func (s *Sim) nextBit(l, from int) int {
	w := from >> 6
	word := s.bitmap[l][w] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= wheelSlots/64 {
			return -1
		}
		word = s.bitmap[l][w]
	}
}

// --- placement ------------------------------------------------------------

// place bins a live event by the highest byte in which its time differs
// from the cursor, or pushes it to the overflow heap when out of range.
func (s *Sim) place(ev *Event) {
	d := uint64(ev.at ^ s.wcur)
	var l int
	switch {
	case d < 1<<wheelBits:
		l = 0
	case d < 1<<(2*wheelBits):
		l = 1
	case d < 1<<(3*wheelBits):
		l = 2
	case d < wheelSpan:
		l = 3
	default:
		s.heapPush(ev)
		return
	}
	slot := int(uint64(ev.at)>>(uint(l)*wheelBits)) & slotMask
	ev.setState(evWheel)
	ev.level, ev.slot = uint8(l), uint8(slot)
	ls := &s.slots[l][slot]
	ev.prev = ls.tail
	ev.next = nil
	if ls.tail != nil {
		ls.tail.next = ev
	} else {
		ls.head = ev
		s.setBit(l, slot)
	}
	ls.tail = ev
	s.wheelCount++
}

// unlink removes a wheel-resident event from its slot list in O(1).
func (s *Sim) unlink(ev *Event) {
	ls := &s.slots[ev.level][ev.slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		ls.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		ls.tail = ev.prev
	}
	if ls.head == nil {
		s.clearBit(int(ev.level), int(ev.slot))
	}
	ev.next, ev.prev = nil, nil
	s.wheelCount--
}

// cascade re-bins every event of a higher-level slot once the cursor has
// entered it. The walk preserves list order, so re-binning is stable.
func (s *Sim) cascade(l, slot int) {
	ls := &s.slots[l][slot]
	ev := ls.head
	if ev == nil {
		return
	}
	ls.head, ls.tail = nil, nil
	s.clearBit(l, slot)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		s.wheelCount--
		s.Sched.Cascades++
		s.place(ev)
		ev = next
	}
}

// peek returns the earliest pending (time), without committing the cursor.
// It never moves wheel state, so Run can stop at a horizon and leave
// everything where later schedules expect it.
func (s *Sim) peek() (Time, bool) {
	if s.wheelCount > 0 {
		cur := uint64(s.wcur)
		if i := s.nextBit(0, int(cur)&slotMask); i >= 0 {
			return Time(cur&^slotMask | uint64(i)), true
		}
		for l := 1; l < wheelLevels; l++ {
			shift := uint(l) * wheelBits
			i := s.nextBit(l, int(cur>>shift)&slotMask)
			if i < 0 {
				continue
			}
			// The slot spans 2^(8l) ns; its list is in seq order, so
			// the first event holding the minimum time is the winner.
			min := s.slots[l][i].head.at
			for ev := s.slots[l][i].head.next; ev != nil; ev = ev.next {
				if ev.at < min {
					min = ev.at
				}
			}
			return min, true
		}
		panic("sim: wheel count out of sync")
	}
	for len(s.heap) > 0 {
		if s.heap[0].ev.state() == evDead {
			it := s.heapPop()
			s.Sched.DeadPops++
			s.heapDead--
			s.release(it.ev)
			continue
		}
		return s.heap[0].at, true
	}
	return 0, false
}

// advanceTo commits the cursor to t, the time of the next event to run:
// it promotes the overflow heap when crossing a wheel-span boundary and
// cascades the higher-level slots t lives under. Must only be called
// with t ≥ wcur and t equal to a pending event's time.
func (s *Sim) advanceTo(t Time) {
	d := uint64(t ^ s.wcur)
	s.wcur = t
	if d < 1<<wheelBits {
		return
	}
	if d >= wheelSpan {
		// The wheel is empty (t came from the heap); enter t's window.
		s.promoteHeap()
	}
	if d >= 1<<(3*wheelBits) {
		s.cascade(3, int(uint64(t)>>(3*wheelBits))&slotMask)
	}
	if d >= 1<<(2*wheelBits) {
		s.cascade(2, int(uint64(t)>>(2*wheelBits))&slotMask)
	}
	s.cascade(1, int(uint64(t)>>wheelBits)&slotMask)
}

// promoteHeap moves every overflow-heap event in the cursor's 2^32 ns
// window into the wheel. Pops come out in (time, seq) order and placement
// appends, so promotion is stable.
func (s *Sim) promoteHeap() {
	win := uint64(s.wcur) >> (wheelBits * wheelLevels)
	for len(s.heap) > 0 {
		top := &s.heap[0]
		if top.ev.state() == evDead {
			it := s.heapPop()
			s.Sched.DeadPops++
			s.heapDead--
			s.release(it.ev)
			continue
		}
		if uint64(top.at)>>(wheelBits*wheelLevels) != win {
			break
		}
		it := s.heapPop()
		s.place(it.ev)
	}
}

// --- overflow heap --------------------------------------------------------

func (s *Sim) heapPush(ev *Event) {
	ev.setState(evHeap)
	h := append(s.heap, heapItem{at: ev.at, seq: ev.seq, ev: ev})
	s.heap = h
	if n := len(h); n > s.Sched.HeapMax {
		s.Sched.HeapMax = n
	}
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *Sim) heapPop() heapItem {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = heapItem{}
	s.heap = h[:last]
	s.siftDown(0)
	return top
}

func (s *Sim) siftDown(i int) {
	h := s.heap
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		m := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(&h[m]) {
				m = c
			}
		}
		if !h[m].before(&h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// maybeCompact reclaims cancelled overflow-heap entries once tombstones
// dominate: it filters the live items and re-heapifies in O(n), so churny
// far-out timers cannot pollute the heap indefinitely.
func (s *Sim) maybeCompact() {
	if s.heapDead < compactMinDead || s.heapDead*2 < len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, it := range s.heap {
		if it.ev.state() == evDead {
			s.Sched.DeadReclaimed++
			s.release(it.ev)
			continue
		}
		live = append(live, it)
	}
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = heapItem{}
	}
	s.heap = live
	s.heapDead = 0
	for i := (len(live) - 2) / 4; i >= 0; i-- {
		s.siftDown(i)
	}
	s.Sched.Compactions++
}

// compactMinDead is the tombstone floor below which compaction is not
// worth the O(n) pass.
const compactMinDead = 64
