package sim

import "math/rand"

// RNG is a deterministic random source for workload generation. It wraps
// math/rand with a fixed seed so runs are reproducible; experiments vary
// the seed to obtain independent replications, as the paper does.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// ExpDuration samples an exponential inter-arrival time with the given
// mean. Used for Poisson flow arrival processes.
func (g *RNG) ExpDuration(mean Time) Time {
	d := Time(g.r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
