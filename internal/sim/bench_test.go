package sim

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the scheduler hot paths. BenchmarkPostPop is the
// per-event cost budget the fabric hot path pays (one schedule + one
// pop); it must report 0 allocs/op — the event node pool and monomorphic
// fnArg handlers exist precisely so steady state allocates nothing.

func BenchmarkPostPop(b *testing.B) {
	s := New()
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PostArg(s.Now()+Time(i%512), fn, nil)
		if s.Pending() > 1024 {
			s.Run(s.Now() + 256)
		}
	}
	s.RunAll()
}

// BenchmarkTimerChurn is the RTO pattern: arm a cancellable timer far
// out, cancel it before it fires, re-arm. Dead-timer reclamation keeps
// this from polluting the queue.
func BenchmarkTimerChurn(b *testing.B) {
	s := New()
	fn := func() {}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	var tm Timer
	for i := 0; i < b.N; i++ {
		tm.Stop()
		tm = s.At(s.Now()+Time(1000+rng.Intn(100_000)), fn)
		if i%8 == 0 {
			s.Post(s.Now()+Time(rng.Intn(64)), fn)
			s.Run(s.Now() + 32)
		}
	}
	tm.Stop()
	s.RunAll()
}

// BenchmarkWheelFarTimers schedules past the wheel span so every event
// lands in the overflow heap and must be promoted across a window
// boundary before firing — the worst case for the hierarchy.
func BenchmarkWheelFarTimers(b *testing.B) {
	s := New()
	fn := func() {}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+Time(wheelSpan)+Time(rng.Int63n(int64(wheelSpan))), fn)
		if s.Pending() > 4096 {
			s.RunAll()
		}
	}
	s.RunAll()
}
