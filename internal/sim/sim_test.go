package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("now = %v, want 30", s.Now())
	}
}

func TestFIFOForEqualTimestamps(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestRandomOrderExecutesSorted(t *testing.T) {
	// Property: arbitrary insertion orders always execute in
	// non-decreasing time order.
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.RunAll()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 10 {
			s.After(7, rec)
		}
	}
	s.After(0, rec)
	s.RunAll()
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != 63 {
		t.Fatalf("now = %v, want 63", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report success")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report failure")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Stopping after firing is a no-op.
	tm2 := s.At(20, func() {})
	s.RunAll()
	if tm2.Stop() {
		t.Fatal("Stop after fire should report failure")
	}
	if tm2.Pending() {
		t.Fatal("fired timer still pending")
	}
	var zero Timer
	if zero.Stop() || zero.Pending() {
		t.Fatal("zero timer should be inert")
	}
}

func TestTimerPendingAcrossRunBoundary(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(100, func() { fired = true })
	s.Run(50)
	if fired {
		t.Fatal("timer fired before its time")
	}
	if !tm.Pending() {
		t.Fatal("timer past the horizon must stay pending")
	}
	s.Run(200)
	if !fired {
		t.Fatal("timer did not fire in the later run")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
}

func TestStopSameInstantEvent(t *testing.T) {
	// An event may cancel a timer scheduled for the very same instant;
	// the dead flag must be honoured even though the event is already in
	// the heap behind the canceller.
	s := New()
	fired := false
	var tm Timer
	s.At(10, func() { tm.Stop() })
	tm = s.At(10, func() { fired = true })
	s.RunAll()
	if fired {
		t.Fatal("same-instant cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestHeapPopOrderProperty(t *testing.T) {
	// Property: random bursts of same-timestamp events pop in (time,
	// insertion) order — the 4-ary heap must preserve FIFO inside every
	// burst, not just global time order.
	type burst struct {
		At    uint16
		Count uint8
	}
	f := func(bursts []burst) bool {
		s := New()
		type key struct {
			at  Time
			ord int
		}
		var fired []key
		ord := 0
		for _, b := range bursts {
			at := Time(b.At)
			n := int(b.Count%8) + 1
			for i := 0; i < n; i++ {
				k := key{at, ord}
				ord++
				s.At(at, func() { fired = append(fired, k) })
			}
		}
		s.RunAll()
		if len(fired) != ord {
			return false
		}
		want := append([]key(nil), fired...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].ord < want[j].ord
		})
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run(15)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.RunAll()
	if len(fired) != 3 {
		t.Fatalf("fired %v after RunAll", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	// Run resumes after Stop.
	s.RunAll()
	if n != 10 {
		t.Fatalf("executed %d events after resume, want 10", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(50, func() {})
	})
	s.RunAll()
}

func TestPostArg(t *testing.T) {
	s := New()
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	s.PostArg(5, fn, 42)
	s.PostArg(3, fn, 7)
	s.RunAll()
	if len(got) != 2 || got[0] != 7 || got[1] != 42 {
		t.Fatalf("got %v", got)
	}
}

// poisonKind exists so the canary below covers dynamic-kind events; the
// handler body never matters, only what release leaves behind.
var poisonKind = NewKind(func(tgt, arg any) { tgt.(*poisonTgt).hits++ })

type poisonTgt struct{ hits int }

// TestReleasePoisonsPooledEvents is the pool-poison canary: after a
// pooled event fires, release must clear every payload reference
// (fn, arg) and reset kind/tgt, or a recycled node would pin app
// objects — fatal at million-flow scale — and could dispatch through a
// stale kind. External (caller-owned) events keep their binding by
// design and must NOT be pushed onto the pool.
func TestReleasePoisonsPooledEvents(t *testing.T) {
	s := New()
	tgt := &poisonTgt{}
	tgtID := s.RegisterTarget(tgt)
	fired := 0
	s.Post(1, func() { fired++ })
	s.PostArg(2, func(a any) { fired += a.(int) }, 1)
	s.PostKind(3, poisonKind, tgtID, 7)
	ext := s.NewKindEvent(poisonKind, tgtID, 9)
	s.Schedule(ext, 4)
	s.RunAll()
	if fired != 2 || tgt.hits != 2 {
		t.Fatalf("fired=%d hits=%d, want 2 and 2", fired, tgt.hits)
	}
	n := 0
	for ev := s.free; ev != nil; ev = ev.next {
		n++
		if ev == ext {
			t.Fatal("external event leaked onto the pool free list")
		}
		if ev.fn != nil || ev.arg != nil {
			t.Fatalf("pooled event %d retains payload: fn set=%v arg=%v", n, ev.fn != nil, ev.arg)
		}
		if ev.kind != 0 || ev.tgt != 0 {
			t.Fatalf("pooled event %d retains dispatch state: kind=%d tgt=%d", n, ev.kind, ev.tgt)
		}
		if ev.prev != nil {
			t.Fatalf("pooled event %d retains prev link", n)
		}
		if ev.where != evFree {
			t.Fatalf("pooled event %d has where=%#x, want evFree", n, ev.where)
		}
	}
	if n < 3 {
		t.Fatalf("free list has %d events, expected the 3 fired pooled events back", n)
	}
	// The external event idles released-but-bound: re-armable, payload
	// intact, ext flag preserved.
	if ext.state() != evFree || !ext.isExt() {
		t.Fatalf("external event state=%#x isExt=%v after fire", ext.state(), ext.isExt())
	}
	if ext.kind != poisonKind || ext.tgt != tgtID || ext.arg != any(9) {
		t.Fatal("external event lost its kind/tgt/arg binding")
	}
	s.Schedule(ext, s.Now()+1)
	s.RunAll()
	if tgt.hits != 3 {
		t.Fatalf("re-armed external event did not fire: hits=%d", tgt.hits)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() || a.Intn(100) != b.Intn(100) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExpDurationMean(t *testing.T) {
	g := NewRNG(1)
	const mean = Time(1000)
	var sum int64
	const n = 200_000
	for i := 0; i < n; i++ {
		d := g.ExpDuration(mean)
		if d < 1 {
			t.Fatal("duration below 1ns")
		}
		sum += int64(d)
	}
	got := float64(sum) / n
	if got < 950 || got > 1050 {
		t.Fatalf("empirical mean %.1f, want ~1000", got)
	}
}

func BenchmarkScheduler(b *testing.B) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+Time(rng.Intn(1000)), fn)
		if s.Pending() > 1024 {
			s.Run(s.Now() + 500)
		}
	}
	s.RunAll()
}
