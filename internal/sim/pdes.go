// Conservative parallel DES: a Group runs N shard simulators in
// lockstep time windows sized by the minimum cross-shard link latency
// (the lookahead). Within a window shards execute independently —
// nothing a shard does before the window closes can affect another
// shard earlier than the lookahead — and cross-shard hand-offs are
// exchanged at window barriers through per-shard outboxes.
//
// Determinism does not depend on the partition: hand-offs are injected
// into the destination shard in a canonical (arrival time, key) order,
// where the key is unique per hand-off (wire id + per-wire sequence).
// Because every hand-off lands in a strictly later window than the one
// that produced it, the injection point — after all of window k's
// events, before any of window k+1's — is the same no matter how many
// shards the model is split across. A single-shard Group therefore
// fires events in exactly the same order as a 4-shard one, and reports
// built on either are byte-identical.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// xfer is one cross-shard hand-off: a callback (or typed kind+target
// pair, for hot paths like wire delivery) to inject into the destination
// shard at the next window barrier.
type xfer struct {
	at   Time
	key  uint64
	fn   func(any)
	arg  any
	dst  int32
	tgt  uint32
	kind EventKind
}

// Group synchronizes N shard simulators with conservative time windows.
// Model code running inside a window may call Send (to hand work to
// another shard), RequestStop, and Stopping; everything else on Group
// is coordinator-only.
type Group struct {
	shards    []*Sim
	lookahead Time
	workers   int

	out  [][]xfer // per-source outbox, written only by that shard's worker
	pend [][]xfer // per-destination scratch reused across barriers

	// stopReq is set by model code (any shard, mid-window); it is
	// latched into stopLatched only at barriers so every shard observes
	// the stop at the same window boundary regardless of partition.
	stopReq     atomic.Bool
	stopLatched bool
}

// NewGroup returns a Group of n fresh simulators with the given
// lookahead. Every cross-shard hand-off must arrive at least lookahead
// after it is sent; the topology builder derives it from the minimum
// latency of the links it routes through mailboxes.
func NewGroup(n int, lookahead Time) *Group {
	if n < 1 {
		panic(fmt.Sprintf("sim: group of %d shards", n))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: group lookahead %v must be positive", lookahead))
	}
	g := &Group{
		shards:    make([]*Sim, n),
		lookahead: lookahead,
		workers:   1,
		out:       make([][]xfer, n),
		pend:      make([][]xfer, n),
	}
	for i := range g.shards {
		g.shards[i] = New()
	}
	return g
}

// Shard returns the i'th shard simulator.
func (g *Group) Shard(i int) *Sim { return g.shards[i] }

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.shards) }

// Lookahead returns the group's synchronization window span.
func (g *Group) Lookahead() Time { return g.lookahead }

// SetWorkers bounds how many OS-level workers execute a window. The
// default 1 runs shards sequentially on the caller's goroutine — the
// fast path when cells already saturate the machine via -procs.
func (g *Group) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// Send queues a hand-off from shard src to shard dst: fn(arg) will run
// on dst at absolute time at. The key must be unique among all
// hand-offs at the same instant (wires use id<<32 | seq); it fixes the
// injection order so the destination's event sequence is independent of
// the partition. Send may only be called from code executing on src.
func (g *Group) Send(src, dst int, at Time, key uint64, fn func(any), arg any) {
	g.out[src] = append(g.out[src], xfer{at: at, key: key, fn: fn, arg: arg, dst: int32(dst)})
}

// SendKind queues a typed hand-off: the kind's handler fires on dst at
// absolute time at with (target, arg), where tgt was registered on the
// DESTINATION shard's simulator. Ordering semantics match Send.
func (g *Group) SendKind(src, dst int, at Time, key uint64, k EventKind, tgt uint32, arg any) {
	g.out[src] = append(g.out[src], xfer{at: at, key: key, kind: k, tgt: tgt, arg: arg, dst: int32(dst)})
}

// RequestStop asks the group to stop at the next window barrier. Safe
// to call from any shard mid-window; the run ends only at a barrier so
// every shard stops at the same boundary.
func (g *Group) RequestStop() { g.stopReq.Store(true) }

// Stopping reports whether the stop request has been latched at a
// barrier. Self-rescheduling model events (samplers) consult it instead
// of the raw request so their reschedule decision is made with
// barrier-consistent state on every shard.
func (g *Group) Stopping() bool { return g.stopLatched }

// Run executes the group until the queues drain, a stop request is
// latched, or the horizon passes. It returns the group end time, to
// which every shard's clock has been aligned.
func (g *Group) Run(horizon Time) Time {
	for {
		g.stopLatched = g.stopReq.Load()
		if g.stopLatched {
			break
		}
		g.inject()
		t0, ok := g.minNext()
		if !ok || t0 > horizon {
			break
		}
		end := t0 + g.lookahead - 1
		if end > horizon {
			end = horizon
		}
		g.runWindow(end)
	}
	var end Time
	for _, s := range g.shards {
		if s.now > end {
			end = s.now
		}
	}
	for _, s := range g.shards {
		s.AlignClock(end)
	}
	return end
}

// inject drains every outbox into the destination shards in canonical
// (at, key) order. Hand-offs always target a strictly later window, so
// injection cannot schedule into a shard's past.
func (g *Group) inject() {
	if len(g.shards) == 1 {
		// Single shard: every hand-off targets shard 0 and the outbox
		// already holds them in send order, so sort and post in place —
		// the same sequence the pend copy would produce.
		p := g.out[0]
		if len(p) == 0 {
			return
		}
		sortXfers(p)
		s := g.shards[0]
		for j := range p {
			if p[j].kind != kindFnArg {
				s.PostKind(p[j].at, p[j].kind, p[j].tgt, p[j].arg)
			} else {
				s.PostArg(p[j].at, p[j].fn, p[j].arg)
			}
		}
		for j := range p {
			p[j].fn, p[j].arg = nil, nil // don't pin pooled packets
		}
		g.out[0] = p[:0]
		return
	}
	for i := range g.pend {
		g.pend[i] = g.pend[i][:0]
	}
	for si := range g.out {
		ob := g.out[si]
		for j := range ob {
			g.pend[ob[j].dst] = append(g.pend[ob[j].dst], ob[j])
		}
		for j := range ob {
			ob[j].fn, ob[j].arg = nil, nil // don't pin pooled packets
		}
		g.out[si] = ob[:0]
	}
	for d := range g.pend {
		p := g.pend[d]
		if len(p) == 0 {
			continue
		}
		sortXfers(p)
		s := g.shards[d]
		for j := range p {
			if p[j].kind != kindFnArg {
				s.PostKind(p[j].at, p[j].kind, p[j].tgt, p[j].arg)
			} else {
				s.PostArg(p[j].at, p[j].fn, p[j].arg)
			}
		}
		for j := range p {
			p[j].fn, p[j].arg = nil, nil
		}
	}
}

// sortXfers orders hand-offs by (at, key). Keys are unique, so the
// order is total. Windows carry few hand-offs, so an allocation-free
// insertion sort beats sort.Slice here.
func sortXfers(p []xfer) {
	for i := 1; i < len(p); i++ {
		x := p[i]
		j := i - 1
		for j >= 0 && (p[j].at > x.at || (p[j].at == x.at && p[j].key > x.key)) {
			p[j+1] = p[j]
			j--
		}
		p[j+1] = x
	}
}

// minNext returns the earliest pending event time across all shards.
func (g *Group) minNext() (Time, bool) {
	var best Time
	ok := false
	for _, s := range g.shards {
		if t, o := s.NextTime(); o && (!ok || t < best) {
			best = t
			ok = true
		}
	}
	return best, ok
}

// runWindow advances every shard to end. With one worker the shards run
// sequentially on the caller's goroutine; otherwise up to g.workers
// goroutines claim shards from a shared counter. Each shard is executed
// by exactly one goroutine per window, and each writes only its own
// outbox, so windows race-free regardless of scheduling.
func (g *Group) runWindow(end Time) {
	if g.workers <= 1 || len(g.shards) == 1 {
		for _, s := range g.shards {
			s.Run(end)
		}
		return
	}
	n := g.workers
	if n > len(g.shards) {
		n = len(g.shards)
	}
	var next atomic.Int32
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(g.shards) {
				return
			}
			g.shards[i].Run(end)
		}
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
