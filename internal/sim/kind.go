package sim

import (
	"fmt"
	"sync"
)

// Typed event dispatch. The two builtin kinds cover the generic
// closure-based APIs (Post/At store a func() in arg; PostArg stores
// fn+arg); model packages register additional kinds for their hot event
// classes (wire arrival, Tx serialization done, transport ticks) so
// those fire through a static handler shared by every instance instead
// of a per-object closure. Kind values do not participate in the
// (time, seq) firing order, so registration order — package init order —
// cannot affect determinism.

// EventKind identifies how an event's payload is dispatched.
type EventKind uint8

const (
	// kindFnArg dispatches ev.fn(ev.arg): the PostArg/NewEvent path.
	kindFnArg EventKind = iota
	// kindFunc dispatches ev.arg.(func())(): the Post/At/After path.
	// Func values are pointer-shaped, so storing one in arg is
	// allocation-free.
	kindFunc
	// kindDyn is the first dynamically registered kind.
	kindDyn
)

var (
	kindMu    sync.Mutex
	kindNext  = int(kindDyn)
	kindTable [256]func(tgt, arg any)
)

// NewKind registers a typed dispatch handler and returns its kind.
// Handlers receive the event's resolved target (nil when the event
// carries no target id) and its arg. Intended to be called from package
// init or other single-setup code; the kind space is 8-bit.
func NewKind(h func(tgt, arg any)) EventKind {
	kindMu.Lock()
	defer kindMu.Unlock()
	if kindNext > 255 {
		panic("sim: event-kind space exhausted")
	}
	k := EventKind(kindNext)
	kindTable[k] = h
	kindNext++
	return k
}

// RegisterTarget interns a long-lived dispatch target (a wire, a port)
// and returns its dense id for PostKind. Target id 0 means "no target";
// the table lives for the lifetime of the Sim, so per-flow objects
// should ride in an event's arg instead of registering.
func (s *Sim) RegisterTarget(obj any) uint32 {
	if len(s.targets) == 0 {
		s.targets = append(s.targets, nil)
	}
	s.targets = append(s.targets, obj)
	return uint32(len(s.targets) - 1)
}

// PostKind schedules a typed event with no cancellation handle and no
// allocation: the kind's handler fires with (target, arg).
func (s *Sim) PostKind(at Time, k EventKind, tgt uint32, arg any) {
	ev := s.alloc()
	ev.kind = k
	ev.tgt = tgt
	ev.arg = arg
	s.schedule(ev, at)
}

// NewKindEvent preallocates a reusable, externally owned typed event.
// Like NewEvent it is never taken by the node pool and may re-schedule
// itself from its own handler; unlike a registered target, its arg can
// hold a short-lived object (a flow's sender) without pinning it in the
// Sim's target table past the object's life.
func (s *Sim) NewKindEvent(k EventKind, tgt uint32, arg any) *Event {
	return &Event{where: evExt, kind: k, tgt: tgt, arg: arg}
}

// ScheduleTimer queues a preallocated event at absolute time at and
// returns a cancellable handle. It is the allocation-free counterpart of
// At for callers that re-arm a timer many times: the event is created
// once (NewEvent/NewKindEvent) and each arm costs only the schedule.
func (s *Sim) ScheduleTimer(ev *Event, at Time) Timer {
	s.Schedule(ev, at)
	return Timer{sim: s, ev: ev, seq: ev.seq}
}

// dispatch fires one dynamically registered kind: Run inlines the two
// builtin kinds and lands here for everything else.
func (s *Sim) dispatch(ev *Event) {
	var tgt any
	if ev.tgt != 0 {
		tgt = s.targets[ev.tgt]
	}
	h := kindTable[ev.kind]
	if h == nil {
		panic(fmt.Sprintf("sim: dispatch of unregistered event kind %d", ev.kind))
	}
	h(tgt, ev.arg)
}
