package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong builds the same toy model on an n-shard group: two nodes
// exchanging messages with a cross-node latency equal to the lookahead,
// each firing a few same-instant local events to exercise intra-window
// ordering. Node a lives on shard 0, node b on the last shard (the same
// shard when n == 1). It returns the observed event log.
func pingPong(n int, rounds int) []string {
	const la = Time(100)
	g := NewGroup(n, la)
	sa, sb := g.Shard(0), g.Shard(n-1)
	ashard, bshard := 0, n-1
	var log []string
	var key uint64
	send := func(src, dst int, s *Sim, at Time, label string, fn func(any)) {
		key++
		g.Send(src, dst, at, key, fn, label)
	}
	var ping, pong func(any)
	left := rounds
	ping = func(v any) {
		log = append(log, fmt.Sprintf("%d ping %v", sb.Now(), v))
		sb.Post(sb.Now()+3, func() { log = append(log, fmt.Sprintf("%d b-local", sb.Now())) })
		send(bshard, ashard, sb, sb.Now()+la, v.(string)+"'", pong)
	}
	pong = func(v any) {
		log = append(log, fmt.Sprintf("%d pong %v", sa.Now(), v))
		left--
		if left == 0 {
			g.RequestStop()
			return
		}
		sa.Post(sa.Now()+1, func() { log = append(log, fmt.Sprintf("%d a-local", sa.Now())) })
		send(ashard, bshard, sa, sa.Now()+la, fmt.Sprintf("r%d", rounds-left), ping)
	}
	sa.Post(0, func() { send(ashard, bshard, sa, la, "r0", ping) })
	g.Run(1 << 40)
	return log
}

// The tentpole invariant: the event log is byte-identical no matter how
// many shards the model is split across.
func TestGroupShardCountInvariant(t *testing.T) {
	one := pingPong(1, 6)
	if len(one) == 0 {
		t.Fatal("model produced no events")
	}
	for _, n := range []int{2, 3, 4} {
		if got := pingPong(n, 6); !reflect.DeepEqual(one, got) {
			t.Fatalf("%d-shard log differs from 1-shard:\n1: %v\n%d: %v", n, one, n, got)
		}
	}
}

// Same-instant hand-offs must inject in key order, not send order.
func TestGroupInjectionKeyOrder(t *testing.T) {
	g := NewGroup(2, 10)
	var log []int
	rec := func(v any) { log = append(log, v.(int)) }
	// Shard 0 sends keys out of order at the same arrival instant.
	g.Shard(0).Post(0, func() {
		g.Send(0, 1, 10, 7, rec, 7)
		g.Send(0, 1, 10, 3, rec, 3)
		g.Send(0, 1, 10, 5, rec, 5)
	})
	g.Run(1 << 20)
	if want := []int{3, 5, 7}; !reflect.DeepEqual(log, want) {
		t.Fatalf("injection order = %v, want %v", log, want)
	}
}

// A stop request mid-window must not cut the window short: remaining
// events in the window still run, and nothing runs after the barrier.
func TestGroupStopLatchesAtBarrier(t *testing.T) {
	g := NewGroup(2, 100)
	var ran []string
	g.Shard(0).Post(5, func() {
		ran = append(ran, "stopper")
		g.RequestStop()
	})
	g.Shard(1).Post(50, func() { ran = append(ran, "same-window") })
	g.Shard(1).Post(500, func() { ran = append(ran, "next-window") })
	end := g.Run(1 << 20)
	want := []string{"stopper", "same-window"}
	if !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	if !g.Stopping() {
		t.Fatal("stop not latched")
	}
	if g.Shard(0).Now() != end || g.Shard(1).Now() != end {
		t.Fatalf("clocks not aligned: %v %v end %v",
			g.Shard(0).Now(), g.Shard(1).Now(), end)
	}
}

// The horizon bounds every window, and clocks align to the group end.
func TestGroupHorizonAndAlignment(t *testing.T) {
	g := NewGroup(3, 1000)
	var hits int
	g.Shard(0).Post(10, func() { hits++ })
	g.Shard(1).Post(20, func() { hits++ })
	g.Shard(2).Post(5000, func() { hits++ }) // beyond horizon
	end := g.Run(100)
	if hits != 2 {
		t.Fatalf("ran %d events, want 2", hits)
	}
	if end != 20 {
		t.Fatalf("end = %v, want 20", end)
	}
	for i := 0; i < 3; i++ {
		if g.Shard(i).Now() != end {
			t.Fatalf("shard %d clock %v != end %v", i, g.Shard(i).Now(), end)
		}
	}
}

// Parallel windows (workers > 1) must produce the same log as
// sequential execution of the same group size.
func TestGroupWorkersDeterministic(t *testing.T) {
	run := func(workers int) []string {
		const la = Time(50)
		g := NewGroup(4, la)
		g.SetWorkers(workers)
		logs := make([][]string, 4) // per-shard logs: no cross-worker writes
		keys := make([]uint64, 4)   // per-shard key counters, ditto
		for i := 0; i < 4; i++ {
			i := i
			s := g.Shard(i)
			var bounce func(any)
			bounce = func(v any) {
				hop := v.(int)
				logs[i] = append(logs[i], fmt.Sprintf("s%d t%d hop%d", i, s.Now(), hop))
				if hop < 20 {
					keys[i]++
					g.Send(i, (i+1)%4, s.Now()+la, keys[i]<<8|uint64(i), bounce, hop+1)
				}
			}
			s.PostArg(Time(i), bounce, 0)
		}
		g.Run(1 << 30)
		var all []string
		for _, l := range logs {
			all = append(all, l...)
		}
		return all
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("no events")
	}
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(seq, got) {
			t.Fatalf("workers=%d log differs:\nseq: %v\ngot: %v", w, seq, got)
		}
	}
}
