package sim

import (
	"math/rand"
	"testing"
)

// This file is a differential property test for the timing-wheel
// scheduler: refSim below is a faithful copy of the seed value-based
// 4-ary heap scheduler this package replaced, and the test drives both
// implementations through identical randomized schedule / cancel / run
// scripts, asserting that every event fires at the same (time, id) and
// in the same total order. Because both implementations stamp sequence
// numbers in schedule-call order, identical (time, id) firing order is
// equivalent to identical (time, seq) firing order — the property the
// byte-identical-reports contract rests on.

// --- reference implementation: the seed 4-ary heap scheduler ---

type refTimerState struct {
	dead  bool
	fired bool
}

type refTimer struct{ ts *refTimerState }

func (t *refTimer) Stop() bool {
	if t == nil || t.ts == nil || t.ts.dead || t.ts.fired {
		return false
	}
	t.ts.dead = true
	return true
}

func (t *refTimer) Pending() bool {
	return t != nil && t.ts != nil && !t.ts.dead && !t.ts.fired
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
	ts  *refTimerState
}

func (e *refEvent) before(o *refEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

type refSim struct {
	now  Time
	seq  uint64
	heap []refEvent
}

func (s *refSim) push(ev refEvent) {
	if ev.at < s.now {
		panic("refSim: scheduling in the past")
	}
	ev.seq = s.seq
	s.seq++
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.heap[i].before(&s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *refSim) pop() refEvent {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = refEvent{}
	s.heap = h[:last]
	h = s.heap
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		m := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(&h[m]) {
				m = c
			}
		}
		if !h[m].before(&h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

func (s *refSim) post(at Time, fn func()) {
	s.push(refEvent{at: at, fn: fn})
}

func (s *refSim) at(at Time, fn func()) *refTimer {
	ts := &refTimerState{}
	s.push(refEvent{at: at, fn: fn, ts: ts})
	return &refTimer{ts: ts}
}

func (s *refSim) run(until Time) Time {
	for len(s.heap) > 0 {
		if s.heap[0].at > until {
			break
		}
		ev := s.pop()
		if ev.ts != nil {
			if ev.ts.dead {
				continue
			}
			ev.ts.fired = true
		}
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

// --- differential harness ---

type fireRec struct {
	at Time
	id int
}

// diffScript is one randomized round: a batch of schedules, a batch of
// cancellations, then a bounded run. Deltas mix same-instant collisions,
// near wheel levels, and far-out times past wheelSpan so the overflow
// heap and window promotion are exercised, not just level 0.
func genDelta(r *rand.Rand) Time {
	switch r.Intn(10) {
	case 0, 1, 2:
		return Time(r.Intn(4)) // same-instant pileups
	case 3, 4, 5:
		return Time(r.Intn(1000)) // levels 0–1
	case 6, 7:
		return Time(r.Intn(1 << 20)) // levels 2–3
	case 8:
		return Time(r.Int63n(1 << 30)) // level 3 / near-span
	default:
		return Time(wheelSpan) + Time(r.Int63n(int64(wheelSpan))) // overflow heap
	}
}

func TestDifferentialAgainstSeedHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			ref := &refSim{}
			whl := New()
			var refLog, whlLog []fireRec

			type handlePair struct {
				rt *refTimer
				wt Timer
				id int
			}
			var handles []handlePair
			nextID := 0

			// Handlers log their firing; every fifth id also schedules a
			// deterministic child from inside its own handler, exercising
			// scheduling during Run in both implementations.
			schedule := func(id int, at Time, cancellable bool) {
				var mkRef func(id int) func()
				var mkWhl func(id int) func()
				mkRef = func(id int) func() {
					return func() {
						refLog = append(refLog, fireRec{at: ref.now, id: id})
						if id >= 0 && id%5 == 0 {
							child := 1_000_000 + id
							ref.post(ref.now+Time(id%97), mkRef(-child))
						}
					}
				}
				mkWhl = func(id int) func() {
					return func() {
						whlLog = append(whlLog, fireRec{at: whl.Now(), id: id})
						if id >= 0 && id%5 == 0 {
							child := 1_000_000 + id
							whl.Post(whl.Now()+Time(id%97), mkWhl(-child))
						}
					}
				}
				if cancellable {
					rt := ref.at(at, mkRef(id))
					wt := whl.At(at, mkWhl(id))
					handles = append(handles, handlePair{rt: rt, wt: wt, id: id})
				} else {
					ref.post(at, mkRef(id))
					whl.Post(at, mkWhl(id))
				}
			}

			const rounds = 40
			for round := 0; round < rounds; round++ {
				// Schedule a batch.
				for n := r.Intn(60); n > 0; n-- {
					at := ref.now + genDelta(r)
					schedule(nextID, at, r.Intn(2) == 0)
					nextID++
				}
				// Cancel a random subset; Stop must agree between the two.
				for n := r.Intn(1 + len(handles)/3); n > 0; n-- {
					h := handles[r.Intn(len(handles))]
					if h.rt.Pending() != h.wt.Pending() {
						t.Fatalf("id %d: ref Pending=%v wheel Pending=%v",
							h.id, h.rt.Pending(), h.wt.Pending())
					}
					rs, ws := h.rt.Stop(), h.wt.Stop()
					if rs != ws {
						t.Fatalf("id %d: ref Stop=%v wheel Stop=%v", h.id, rs, ws)
					}
				}
				// Run both to the same horizon, often landing mid-queue.
				until := ref.now + genDelta(r)
				rNow, wNow := ref.run(until), whl.Run(until)
				if rNow != wNow {
					t.Fatalf("round %d: ref now %v, wheel now %v", round, rNow, wNow)
				}
				if whl.Pending() != liveCount(ref) {
					t.Fatalf("round %d: wheel Pending()=%d, reference live count=%d",
						round, whl.Pending(), liveCount(ref))
				}
			}

			// Drain both completely.
			const horizon = Time(1) << 62
			ref.run(horizon)
			whl.Run(horizon)

			if len(refLog) != len(whlLog) {
				t.Fatalf("fired %d events on reference, %d on wheel", len(refLog), len(whlLog))
			}
			for i := range refLog {
				if refLog[i] != whlLog[i] {
					t.Fatalf("firing %d diverges: reference (%v, id %d), wheel (%v, id %d)",
						i, refLog[i].at, refLog[i].id, whlLog[i].at, whlLog[i].id)
				}
			}
			if whl.Pending() != 0 {
				t.Fatalf("wheel reports %d pending after drain", whl.Pending())
			}
		})
	}
}

// --- typed dispatch vs closures ---

// diffTestKind fires through the registered-target table: tgt resolves
// to the test's diffTgt and arg carries the event id, the same shape
// the fabric's wire-arrival events use. Assigned in init because the
// handler's callee schedules through the kind (same knot the transport
// packages untie the same way).
var diffTestKind EventKind

func init() {
	diffTestKind = NewKind(func(tgt, arg any) {
		tgt.(*diffTgt).fire(arg.(int))
	})
}

type diffTgt struct {
	s     *Sim
	log   *[]fireRec
	tgtID uint32
}

func (d *diffTgt) fire(id int) {
	*d.log = append(*d.log, fireRec{at: d.s.Now(), id: id})
	if id >= 0 && id%5 == 0 {
		// Children go through PostKind too, exercising typed scheduling
		// from inside a typed handler mid-Run.
		d.s.PostKind(d.s.Now()+Time(id%97), diffTestKind, d.tgtID, -(1_000_000 + id))
	}
}

// TestTypedDispatchMatchesClosures drives two Sims through identical
// randomized schedule / cancel / run scripts — one entirely through
// closures (Post/At), one entirely through typed events (PostKind,
// NewKindEvent + ScheduleTimer) — and asserts every event fires at the
// same (time, id) in the same total order. Each schedule call consumes
// exactly one sequence number on both sides, so identical (time, id)
// logs prove the typed path preserves (time, seq) order, the property
// the byte-identical-reports contract rests on.
func TestTypedDispatchMatchesClosures(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			cls := New()
			typ := New()
			var clsLog, typLog []fireRec
			tgt := &diffTgt{s: typ, log: &typLog}
			tgt.tgtID = typ.RegisterTarget(tgt)

			type handlePair struct {
				ct, tt Timer
				id     int
			}
			var handles []handlePair
			nextID := 0

			var mkCls func(id int) func()
			mkCls = func(id int) func() {
				return func() {
					clsLog = append(clsLog, fireRec{at: cls.Now(), id: id})
					if id >= 0 && id%5 == 0 {
						cls.Post(cls.Now()+Time(id%97), mkCls(-(1_000_000 + id)))
					}
				}
			}
			schedule := func(id int, at Time, cancellable bool) {
				if cancellable {
					ct := cls.At(at, mkCls(id))
					tt := typ.ScheduleTimer(typ.NewKindEvent(diffTestKind, tgt.tgtID, id), at)
					handles = append(handles, handlePair{ct: ct, tt: tt, id: id})
				} else {
					cls.Post(at, mkCls(id))
					typ.PostKind(at, diffTestKind, tgt.tgtID, id)
				}
			}

			const rounds = 40
			for round := 0; round < rounds; round++ {
				for n := r.Intn(60); n > 0; n-- {
					at := cls.Now() + genDelta(r)
					schedule(nextID, at, r.Intn(2) == 0)
					nextID++
				}
				for n := r.Intn(1 + len(handles)/3); n > 0; n-- {
					h := handles[r.Intn(len(handles))]
					if h.ct.Pending() != h.tt.Pending() {
						t.Fatalf("id %d: closure Pending=%v typed Pending=%v",
							h.id, h.ct.Pending(), h.tt.Pending())
					}
					cs, ts := h.ct.Stop(), h.tt.Stop()
					if cs != ts {
						t.Fatalf("id %d: closure Stop=%v typed Stop=%v", h.id, cs, ts)
					}
				}
				until := cls.Now() + genDelta(r)
				cNow, tNow := cls.Run(until), typ.Run(until)
				if cNow != tNow {
					t.Fatalf("round %d: closure now %v, typed now %v", round, cNow, tNow)
				}
				if cls.Pending() != typ.Pending() {
					t.Fatalf("round %d: closure Pending()=%d, typed Pending()=%d",
						round, cls.Pending(), typ.Pending())
				}
			}

			const horizon = Time(1) << 62
			cls.Run(horizon)
			typ.Run(horizon)

			if len(clsLog) != len(typLog) {
				t.Fatalf("fired %d events on closure sim, %d on typed sim", len(clsLog), len(typLog))
			}
			for i := range clsLog {
				if clsLog[i] != typLog[i] {
					t.Fatalf("firing %d diverges: closure (%v, id %d), typed (%v, id %d)",
						i, clsLog[i].at, clsLog[i].id, typLog[i].at, typLog[i].id)
				}
			}
		})
	}
}

// liveCount recomputes the reference's live (scheduled, non-cancelled)
// event count from its heap, the ground truth Sim.Pending must match.
func liveCount(s *refSim) int {
	n := 0
	for i := range s.heap {
		if s.heap[i].ts == nil || !s.heap[i].ts.dead {
			n++
		}
	}
	return n
}
