// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds. Events scheduled for the same
// instant fire in FIFO order of scheduling, which keeps runs fully
// deterministic for a given seed and call sequence.
//
// The scheduler is a value-based 4-ary heap: the hot path (packet
// serialization and propagation events) allocates nothing beyond what the
// caller captures, which matters when runs process tens of millions of
// events.
package sim

import "fmt"

// Time is a simulated point in time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as both instants and spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit for logs and test output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// timerState is the cancellable handle state shared between a Timer and
// its scheduled event.
type timerState struct {
	dead  bool
	fired bool
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ts *timerState }

// Stop cancels the timer. It is safe to call on a nil, already-fired, or
// already-stopped timer. It reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ts == nil || t.ts.dead || t.ts.fired {
		return false
	}
	t.ts.dead = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ts != nil && !t.ts.dead && !t.ts.fired
}

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO for equal timestamps

	// Exactly one of fn / fnArg is set. fnArg avoids a closure
	// allocation on the per-packet hot path.
	fn    func()
	fnArg func(any)
	arg   any

	ts *timerState // nil for uncancellable events
}

func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Sim struct {
	now     Time
	seq     uint64
	heap    []event
	stopped bool
	// Processed counts events executed, for performance accounting.
	Processed uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

func (s *Sim) push(ev event) {
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", ev.at, s.now))
	}
	ev.seq = s.seq
	s.seq++
	s.heap = append(s.heap, ev)
	// Sift up (4-ary).
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.heap[i].before(&s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *Sim) pop() event {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{}
	s.heap = h[:last]
	h = s.heap
	// Sift down (4-ary).
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		m := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(&h[m]) {
				m = c
			}
		}
		if !h[m].before(&h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// Post schedules fn at absolute time at with no cancellation handle.
func (s *Sim) Post(at Time, fn func()) {
	s.push(event{at: at, fn: fn})
}

// PostArg schedules fn(arg) at absolute time at with no cancellation
// handle and no closure allocation.
func (s *Sim) PostArg(at Time, fn func(any), arg any) {
	s.push(event{at: at, fnArg: fn, arg: arg})
}

// At schedules fn to run at the absolute time at and returns a
// cancellable handle. Scheduling in the past panics: it indicates a model
// bug that would silently corrupt causality.
func (s *Sim) At(at Time, fn func()) *Timer {
	ts := &timerState{}
	s.push(event{at: at, fn: fn, ts: ts})
	return &Timer{ts: ts}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue empties, Stop is called, or the
// event horizon passes until (exclusive). It returns the simulation time
// at exit.
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > until {
			break
		}
		ev := s.pop()
		if ev.ts != nil {
			if ev.ts.dead {
				continue
			}
			ev.ts.fired = true
		}
		s.now = ev.at
		s.Processed++
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.fnArg(ev.arg)
		}
	}
	return s.now
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Sim) RunAll() Time {
	const horizon = Time(1) << 62
	return s.Run(horizon)
}

// Pending returns the number of scheduled (possibly cancelled) events.
func (s *Sim) Pending() int { return len(s.heap) }
