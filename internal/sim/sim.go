// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds. Events scheduled for the same
// instant fire in FIFO order of scheduling, which keeps runs fully
// deterministic for a given seed and call sequence.
//
// The scheduler is a hierarchical timing wheel (wheel.go) backed by a
// 4-ary overflow heap for far-out timers: the hot path (packet
// serialization and propagation events) schedules and pops in O(1) from
// pooled intrusive nodes, which matters when runs process tens of
// millions of events. Cancelled timers are reclaimed immediately when
// wheel-resident and compacted away when heap-resident, so dead events
// do not pollute the queue.
package sim

import "fmt"

// Time is a simulated point in time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as both instants and spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit for logs and test output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Timer is a cancellable handle to a scheduled event. It is a value: the
// zero Timer is inert, and handles stay safe after the event fires or the
// node is reused because the event's seq acts as a generation counter —
// a handle whose seq no longer matches its node is simply stale.
type Timer struct {
	sim *Sim
	ev  *Event
	seq uint64
}

// Stop cancels the timer. It is safe to call on a zero, already-fired, or
// already-stopped timer. It reports whether the call prevented the event
// from firing. Wheel-resident timers are unlinked and reclaimed in O(1);
// overflow-heap timers become tombstones that are compacted once they
// outnumber live far-out events.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.seq != t.seq {
		return false
	}
	s := t.sim
	switch ev.state() {
	case evWheel:
		s.unlink(ev)
		s.live--
		s.Sched.DeadReclaimed++
		s.release(ev)
		return true
	case evHeap:
		ev.setState(evDead)
		s.live--
		s.heapDead++
		s.maybeCompact()
		return true
	}
	return false
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.seq == t.seq && t.ev.Scheduled()
}

// SchedStats exposes scheduler-internal counters for performance
// accounting and regression tracking (surfaced via -bench-out).
type SchedStats struct {
	// DeadPops counts cancelled events that still paid a heap pop
	// (tombstones that fired before compaction could reclaim them).
	DeadPops uint64
	// DeadReclaimed counts cancelled events reclaimed without a pop:
	// O(1) wheel unlinks plus heap compaction removals.
	DeadReclaimed uint64
	// Cascades counts events re-binned when the cursor entered their
	// higher-level slot.
	Cascades uint64
	// Compactions counts overflow-heap tombstone sweeps.
	Compactions uint64
	// HeapMax is the overflow heap's high-water mark.
	HeapMax int
}

// Add accumulates o into s (HeapMax takes the maximum), for aggregating
// per-run scheduler counters across a grid.
func (s *SchedStats) Add(o *SchedStats) {
	s.DeadPops += o.DeadPops
	s.DeadReclaimed += o.DeadReclaimed
	s.Cascades += o.Cascades
	s.Compactions += o.Compactions
	if o.HeapMax > s.HeapMax {
		s.HeapMax = o.HeapMax
	}
}

// Sim is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Sim struct {
	now     Time
	seq     uint64
	stopped bool

	// wcur is the wheel cursor: the time whose wheel slots have been
	// cascaded. It equals the time of the last executed event and never
	// runs ahead of pending work, so horizon-bounded runs leave the
	// wheel consistent for later schedules.
	wcur Time

	slots      [wheelLevels][wheelSlots]evList
	bitmap     [wheelLevels][wheelSlots / 64]uint64
	wheelCount int

	heap     []heapItem
	heapDead int

	live int // scheduled, non-cancelled events

	free *Event

	// targets interns long-lived typed-dispatch targets (RegisterTarget);
	// index 0 is reserved for "no target".
	targets []any

	// Processed counts events executed, for performance accounting.
	Processed uint64
	// Sched exposes scheduler-internal counters.
	Sched SchedStats
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// alloc takes an event node from the pool, growing it a chunk at a time
// so steady-state scheduling allocates nothing.
func (s *Sim) alloc() *Event {
	ev := s.free
	if ev == nil {
		chunk := make([]Event, 128)
		for i := 1; i < len(chunk); i++ {
			chunk[i-1].next = &chunk[i]
		}
		ev = &chunk[0]
	}
	s.free = ev.next
	ev.next = nil
	return ev
}

// release returns a finished event to the pool (or just idles an external
// one), clearing captured references so they do not leak past the fire.
// External events keep their payload binding by design (it is their
// owner's, installed once at NewEvent/NewKindEvent); pooled events must
// drop every reference and reset kind/tgt so a recycled node cannot pin
// app objects or dispatch through a stale kind.
func (s *Sim) release(ev *Event) {
	if ev.isExt() {
		ev.setState(evFree)
		return
	}
	ev.where = evFree
	ev.fn, ev.arg = nil, nil
	ev.kind, ev.tgt = 0, 0
	ev.prev = nil
	ev.next = s.free
	s.free = ev
}

// schedule stamps and places a live event. Scheduling in the past panics:
// it indicates a model bug that would silently corrupt causality.
func (s *Sim) schedule(ev *Event, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev.at = at
	ev.seq = s.seq
	s.seq++
	s.live++
	s.place(ev)
}

// Post schedules fn at absolute time at with no cancellation handle.
// The func value rides in arg (funcs are pointer-shaped, so the boxing
// is allocation-free) and fires through the builtin kindFunc.
func (s *Sim) Post(at Time, fn func()) {
	ev := s.alloc()
	ev.kind = kindFunc
	ev.arg = fn
	s.schedule(ev, at)
}

// PostArg schedules fn(arg) at absolute time at with no cancellation
// handle and no closure allocation.
func (s *Sim) PostArg(at Time, fn func(any), arg any) {
	ev := s.alloc()
	ev.fn = fn
	ev.arg = arg
	s.schedule(ev, at)
}

// At schedules fn to run at the absolute time at and returns a
// cancellable handle.
func (s *Sim) At(at Time, fn func()) Timer {
	ev := s.alloc()
	ev.kind = kindFunc
	ev.arg = fn
	s.schedule(ev, at)
	return Timer{sim: s, ev: ev, seq: ev.seq}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// NewEvent preallocates a reusable, externally owned event bound to fn
// and arg. Schedule queues it; it may be re-scheduled from inside its own
// handler (self-rescheduling), and it is never taken by the node pool, so
// per-packet hot paths built on it allocate nothing and box nothing.
func (s *Sim) NewEvent(fn func(any), arg any) *Event {
	return &Event{where: evExt, fn: fn, arg: arg}
}

// Schedule queues a preallocated event at absolute time at. Scheduling an
// event that is already queued panics: an external event represents one
// slot of pending work by design.
func (s *Sim) Schedule(ev *Event, at Time) {
	if ev.Scheduled() {
		panic(fmt.Sprintf("sim: event already scheduled (at %v)", ev.at))
	}
	s.schedule(ev, at)
}

// Stop halts the run loop after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue empties, Stop is called, or the
// event horizon passes until (exclusive). It returns the simulation time
// at exit.
//
// The loop drains one level-0 slot per peek: a level-0 slot is 1 ns
// wide, so every event in it shares the instant t and the slot list is
// already in seq order. Draining the whole chain after a single
// peek/advanceTo amortizes the bitmap scan and cascade checks over the
// batch instead of paying them per event. Same-instant events scheduled
// by a handler append to the tail (with a higher seq) and fire within
// the same batch, so the firing order remains exactly (time, seq).
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	for !s.stopped {
		t, ok := s.peek()
		if !ok || t > until {
			break
		}
		s.advanceTo(t)
		s.now = t
		slot := int(uint64(t)) & slotMask
		ls := &s.slots[0][slot]
		for !s.stopped {
			ev := ls.head
			if ev == nil {
				break
			}
			// Head pop, specialized from unlink: ev is ls.head so its
			// prev is nil and the slot coordinates are already in hand.
			next := ev.next
			ls.head = next
			if next != nil {
				next.prev = nil
			} else {
				ls.tail = nil
				s.clearBit(0, slot)
			}
			ev.next = nil
			s.wheelCount--
			ev.setState(evRun)
			s.live--
			s.Processed++
			switch ev.kind {
			case kindFnArg:
				ev.fn(ev.arg)
			case kindFunc:
				ev.arg.(func())()
			default:
				s.dispatch(ev)
			}
			if ev.state() == evRun {
				// Not re-scheduled by its own handler.
				s.release(ev)
			}
		}
	}
	return s.now
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Sim) RunAll() Time {
	const horizon = Time(1) << 62
	return s.Run(horizon)
}

// Pending returns the number of live (scheduled, non-cancelled) events.
func (s *Sim) Pending() int { return s.live }

// NextTime returns the time of the earliest pending event, if any. It is
// a pure peek: the wheel cursor does not move, so interleaving NextTime
// with horizon-bounded runs is safe. Group uses it to compute the global
// lower bound each synchronization window.
func (s *Sim) NextTime() (Time, bool) { return s.peek() }

// AlignClock advances the clock to t without running anything. Group
// calls it after the last window so every shard reads the same end time
// (paused-clock accounting samples Now after the run). Moving time
// backwards would corrupt causality and panics.
func (s *Sim) AlignClock(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AlignClock to %v before now %v", t, s.now))
	}
	s.now = t
}
