package experiments

import (
	"fmt"

	"tlt/internal/app"
	"tlt/internal/audit"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// testbedStar builds the 10-node testbed model (§6): a Tomahawk-class
// switch whose dynamic allocation lets a single busy port absorb up to
// ~1.8 MB, color threshold 270 kB (~BDP), ECN at 200 kB. The audit flag
// comes from the cell's RunConfig (resolved by RunGrid), never from
// global state, so concurrent cells stay independent.
func testbedStar(v Variant, hosts int, auditOn bool) (*sim.Sim, *topo.Network) {
	s := sim.New()
	swc := v.switchConfig()
	swc.BufferBytes = 3_600_000
	if v.TLT {
		swc.ColorThreshold = 270_000
	}
	n := topo.Star(s, topo.StarConfig{
		Hosts:       hosts,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      swc,
	})
	if auditOn {
		a := audit.New(s)
		for _, sw := range n.Switches {
			a.AttachSwitch(sw)
		}
	}
	return s, n
}

func durSecs(ts []sim.Time) []float64 {
	out := make([]float64, 0, len(ts))
	for _, t := range ts {
		if t > 0 {
			out = append(out, t.Seconds())
		}
	}
	return out
}

// Fig12 reproduces Figure 12: the Redis SET-burst benchmark — 99th
// percentile HTTP response time as the number of simultaneous requests
// (and hence 32 kB incast flows into the cache node) grows.
func Fig12(scale Scale) *Report {
	rep := &Report{
		ID:     "fig12",
		Title:  "In-memory cache burst: 99% response time vs number of flows",
		Header: []string{"variant", "flows", "p99 resp", "max resp", "timeouts"},
	}
	points := []int{20, 60, 100, 140, 180}
	if scale.AppPoints > 0 && scale.AppPoints < len(points) {
		points = points[:scale.AppPoints]
	}
	variants := []Variant{
		{Transport: "tcp"},
		{Transport: "tcp", TLT: true},
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		for _, reqs := range points {
			rc := RunConfig{
				Label:   fmt.Sprintf("%s fig12 flows=%d", v.Name(), reqs),
				Variant: v,
				// Build from rc.Variant, not the captured v: RunGrid folds
				// the session -mmu/-fc overrides into rc.Variant only.
				Custom: func(rc RunConfig) *Result {
					s, n := testbedStar(rc.Variant, 10, rc.Audit)
					rec := stats.NewRecorder()
					cl := app.NewCacheCluster(s, n.Hosts, rc.Variant.tcpConfig(), rec, 1)
					rts := cl.RunSetBurst(reqs, sim.Time(rc.Seed)*sim.Microsecond)
					s.Run(5 * sim.Second)
					res := &Result{Rec: rec, EventsRun: s.Processed, Sched: s.Sched}
					xs := durSecs(rts)
					if len(xs) != reqs {
						res.Notef("%s flows=%d seed=%d: only %d/%d requests completed", v.Name(), reqs, rc.Seed, len(xs), reqs)
					}
					res.App = xs
					return res
				},
			}
			sw.add0(rc, scale.Seeds, func(rs []*Result) {
				var p99s, maxs []float64
				timeouts := 0
				for _, r := range rs {
					if r == nil || r.Panicked {
						continue
					}
					sorted := stats.Sorted(r.App.([]float64))
					p99s = append(p99s, stats.PercentileSorted(sorted, 0.99))
					maxs = append(maxs, stats.PercentileSorted(sorted, 1))
					timeouts += r.Rec.TimeoutsAll()
				}
				rep.AddRow(v.Name(), fmt.Sprintf("%d", reqs),
					meanStdDur(p99s), meanStdDur(maxs), fmt.Sprintf("%d", timeouts))
			})
		}
	}
	sw.exec()
	rep.Note("paper: (DC)TCP response time explodes with fan-out and varies wildly; +TLT stays 213us-4.4ms with no timeouts")
	return rep
}

// mixedCell is the Fig13 per-seed payload.
type mixedCell struct {
	p99        float64
	goodput    float64
	bgComplete bool
}

// Fig13 reproduces Figure 13: one 8 MB background flow to the cache node
// competing with 152 foreground 32 kB SETs.
func Fig13(scale Scale) *Report {
	rep := &Report{
		ID:     "fig13",
		Title:  "Mixed traffic: 99% fg completion and bg goodput (8MB bg + 152 x 32kB fg)",
		Header: []string{"variant", "fg p99", "bg goodput", "timeouts"},
	}
	sw := newSweep(rep)
	for _, v := range []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
	} {
		rc := RunConfig{
			Label:   v.Name() + " fig13",
			Variant: v,
			Custom: func(rc RunConfig) *Result {
				s, n := testbedStar(rc.Variant, 10, rc.Audit)
				rec := stats.NewRecorder()
				// hosts[0]=client (unused), 1..8 web servers, 9=redis; the
				// bg sender is the client host to keep servers clean.
				cl := app.NewCacheCluster(s, n.Hosts, rc.Variant.tcpConfig(), rec, 1)
				mr := cl.RunMixed(152, n.Hosts[0], 8_000_000, 0)
				s.Run(5 * sim.Second)
				return &Result{Rec: rec, EventsRun: s.Processed, Sched: s.Sched, App: mixedCell{
					p99:        stats.Percentile(durSecs(mr.FgRTs), 0.99),
					goodput:    mr.BgGoodput * 8 / 1e9,
					bgComplete: mr.BgComplete,
				}}
			},
		}
		sw.add0(rc, scale.Seeds, func(rs []*Result) {
			var p99s, goodputs []float64
			timeouts := 0
			for _, r := range rs {
				if r == nil || r.Panicked {
					continue
				}
				mc := r.App.(mixedCell)
				p99s = append(p99s, mc.p99)
				if mc.bgComplete {
					goodputs = append(goodputs, mc.goodput)
				}
				timeouts += r.Rec.TimeoutsAll()
			}
			rep.AddRow(v.Name(), meanStdDur(p99s),
				fmt.Sprintf("%.2fGbps", stats.Mean(goodputs)), fmt.Sprintf("%d", timeouts))
		})
	}
	sw.exec()
	rep.Note("paper: DCTCP fg p99 up to 11.3ms vs 3.39ms with TLT (71%% better) at 5.6%% bg goodput cost")
	return rep
}

// Fig14 reproduces Figure 14: the testbed incast microbenchmark — a
// client fetches 32 kB from 8 servers over N concurrent flows.
func Fig14(scale Scale) *Report {
	rep := &Report{
		ID:     "fig14",
		Title:  "Incast microbenchmark: 99% FCT vs fan-out (32kB responses, 8 servers)",
		Header: []string{"variant", "flows", "p99 FCT", "p50 FCT", "timeouts"},
	}
	points := []int{8, 40, 80, 120, 160, 200}
	if scale.AppPoints > 0 && scale.AppPoints < len(points) {
		points = points[:scale.AppPoints]
	}
	variants := []Variant{
		{Transport: "tcp"},
		{Transport: "tcp", RTOMin: 200 * sim.Microsecond},
		{Transport: "tcp", TLT: true},
		{Transport: "dctcp"},
		{Transport: "dctcp", RTOMin: 200 * sim.Microsecond},
		{Transport: "dctcp", TLT: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		for _, flowsN := range points {
			rc := RunConfig{
				Label:   fmt.Sprintf("%s fig14 flows=%d", v.Name(), flowsN),
				Variant: v,
				Custom:  incastCell(flowsN),
			}
			sw.add0(rc, scale.Seeds, func(rs []*Result) {
				var p99s, p50s []float64
				timeouts := 0
				for _, r := range rs {
					if r == nil || r.Panicked {
						continue
					}
					ir := r.App.(*incastResult)
					sorted := stats.Sorted(ir.fcts)
					p99s = append(p99s, stats.PercentileSorted(sorted, 0.99))
					p50s = append(p50s, stats.PercentileSorted(sorted, 0.5))
					timeouts += ir.timeouts
				}
				rep.AddRow(v.Name(), fmt.Sprintf("%d", flowsN),
					meanStdDur(p99s), meanStdDur(p50s), fmt.Sprintf("%d", timeouts))
			})
		}
	}
	sw.exec()
	rep.Note("paper: (DC)TCP hits the RTO cliff beyond ~40-50 flows; TLT absorbs 4x more flows with zero timeouts")
	return rep
}

type incastResult struct {
	fcts     []float64
	timeouts int
}

// incastCell wraps runIncastStar as a grid cell; the variant, seed and audit flag
// arrive through the resolved RunConfig.
func incastCell(flowsN int) func(rc RunConfig) *Result {
	return func(rc RunConfig) *Result {
		ir, events, sched, rec := runIncastStar(rc.Variant, flowsN, rc.Seed, rc.Audit)
		return &Result{Rec: rec, EventsRun: events, Sched: sched, App: ir}
	}
}

// runIncastStar starts flowsN synchronized 32 kB flows from 8 servers to
// one client on the testbed star.
func runIncastStar(v Variant, flowsN int, seed int64, auditOn bool) (*incastResult, uint64, sim.SchedStats, *stats.Recorder) {
	s, n := testbedStar(v, 9, auditOn)
	rec := stats.NewRecorder()
	cfg := v.tcpConfig()
	for i := 0; i < flowsN; i++ {
		src := n.Hosts[1+i%8]
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: src.ID(), Dst: 0,
			Size: 32 * 1024,
			// Tiny jitter stands in for request fan-out skew.
			Start: sim.Time(seed*17+int64(i)%8) * 100 * sim.Nanosecond,
			FG:    true,
		}
		tcp.StartFlow(s, src, n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(10 * sim.Second)
	return &incastResult{fcts: rec.Select(true), timeouts: rec.TimeoutsAll()}, s.Processed, s.Sched, rec
}

// Fig14CDF prints the FCT distribution at a fixed fan-out (Figure 14c).
func Fig14CDF(scale Scale) *Report {
	rep := &Report{
		ID:     "fig14c",
		Title:  "Incast microbenchmark FCT distribution at 100 flows",
		Header: []string{"variant", "p25", "p50", "p75", "p90", "p99", "max"},
	}
	variants := []Variant{
		{Transport: "tcp"},
		{Transport: "tcp", RTOMin: 200 * sim.Microsecond},
		{Transport: "tcp", TLT: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		rc := RunConfig{
			Label:   v.Name() + " fig14c",
			Seed:    1,
			Variant: v,
			Custom:  incastCell(100),
		}
		sw.cell(rc, func(res *Result) {
			ir := res.App.(*incastResult)
			sorted := stats.Sorted(ir.fcts)
			row := []string{v.Name()}
			for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				row = append(row, stats.FmtDur(stats.PercentileSorted(sorted, p)))
			}
			rep.AddRow(row...)
		})
	}
	sw.exec()
	return rep
}
