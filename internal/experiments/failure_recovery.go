package experiments

import (
	"fmt"
	"math"

	"tlt/internal/chaos"
	"tlt/internal/sim"
	"tlt/internal/stats"
)

// FailureRecovery measures how each transport family rides out
// failure-domain events: a spine switch dying mid-run (black-holing every
// flow hashed across it until the control plane reroutes) and an end-host
// PFC pause storm (mitigated by the switch watchdog and NIC pause
// expiry). Flows either complete or abort via retry exhaustion — the
// timeout-less claim under test is that TLT variants recover through
// ACK-clocked retransmission where the baselines burn RTOs (§5, §7.4).
func FailureRecovery(scale Scale) *Report {
	rep := &Report{
		ID:    "failure-recovery",
		Title: "recovery from switch failure and PFC pause storm",
		Header: []string{"fault", "variant", "fg p99 FCT", "timeouts/1k", "aborted",
			"incomplete", "goodput dip", "recovery", "wd fires", "pfc findings"},
	}
	sw := newSweep(rep)

	const faultAt = 200 * sim.Microsecond
	// A spine (index Tors..Tors+Spines-1 in topo.LeafSpine's switch
	// order) dies for 2 ms; the control plane reroutes around it 300 µs
	// after detection, leaving a deterministic black-hole window.
	swfail := &chaos.Plan{Seed: 1, SwFails: []chaos.SwitchFail{{
		Switch:   12, // first spine of the default 12-ToR fabric
		At:       faultAt,
		Duration: 2 * sim.Millisecond,
		Reroute:  300 * sim.Microsecond,
	}}}
	// Host 0's NIC jams its ToR ingress with continuously refreshed
	// PAUSE frames for 1 ms.
	storm := &chaos.Plan{Seed: 1, Storms: []chaos.PauseStorm{{
		Host: 0, At: faultAt, Duration: sim.Millisecond,
	}}}

	scenarios := []struct {
		label string
		plan  *chaos.Plan
		// watchdog/pause-expiry mitigation is only armed for the storm
		// scenario: the switch-failure case exercises reroute + retry.
		watchdog bool
	}{
		{"swfail", swfail, false},
		{"storm", storm, true},
	}
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
		{Transport: "dcqcn", PFC: true},
		{Transport: "dcqcn", PFC: true, TLT: true},
		{Transport: "hpcc"},
	}
	for _, sc := range scenarios {
		for _, v := range variants {
			v := v
			// Retry exhaustion gives every flow a terminal state even if
			// the black-hole outlives its patience.
			v.MaxRetries = 8
			rc := RunConfig{
				Variant: v,
				Traffic: trafficFor(scale, 0.4, 0.05),
				Faults:  sc.plan,
			}
			if sc.watchdog {
				rc.WatchdogThreshold = 200 * sim.Microsecond
				rc.HostPauseTimeout = 100 * sim.Microsecond
			}
			label := sc.label
			sw.add(rc, scale.Seeds, func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					dip, rec := recoveryMetrics(r, faultAt)
					return []float64{
						r.FgP(0.99), r.TimeoutsPer1k(),
						float64(r.Aborted), float64(r.Incomplete),
						dip, rec.Seconds(),
						float64(r.Ctr.WatchdogFires),
						float64(r.Faults.PFCDeadlockCycles + r.Faults.PFCStormSuspects),
					}
				})
				rep.AddRow(label, v.Name(),
					meanStdDur(col(ms, 0)),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 1))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 2))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 3))),
					fmt.Sprintf("%.2f", stats.Mean(col(ms, 4))),
					meanStdDur(col(ms, 5)),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 6))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 7))))
			})
		}
	}
	sw.exec()
	rep.Note("goodput dip is the worst post-fault completion-rate bin over the pre-fault mean; " +
		"recovery is the time from fault injection until goodput regains 90%% of that mean")
	rep.Note("aborted flows hit the retry cap against a black-holed path; they are terminal " +
		"but never counted as completed (incomplete counts flows still spinning at the horizon)")
	return rep
}

// recoveryBin is the goodput histogram granularity for the recovery
// metrics.
const recoveryBin = 100 * sim.Microsecond

// recoveryMetrics derives (goodput dip fraction, time-to-recovery) from
// one run's completion records. Completed-flow bytes are binned by
// completion time; the pre-fault bins establish baseline goodput, the
// dip is the worst post-fault bin relative to it, and recovery is how
// long after the fault goodput first regains 90% of the baseline.
func recoveryMetrics(r *Result, faultAt sim.Time) (dip float64, recovery sim.Time) {
	if r.Rec == nil || r.Elapsed <= faultAt {
		return math.NaN(), 0
	}
	nbins := int(r.Elapsed/recoveryBin) + 1
	bins := make([]float64, nbins)
	for _, fr := range r.Rec.Flows {
		if !fr.Done {
			continue
		}
		b := int(fr.End / recoveryBin)
		if b >= 0 && b < nbins {
			bins[b] += float64(fr.Flow.Size)
		}
	}
	faultBin := int(faultAt / recoveryBin)
	if faultBin <= 0 || faultBin >= nbins {
		return math.NaN(), 0
	}
	var pre float64
	for _, b := range bins[:faultBin] {
		pre += b
	}
	pre /= float64(faultBin)
	if pre <= 0 {
		return math.NaN(), 0
	}
	// Scan the tail window after the fault: the paper's recovery story is
	// over within a few ms, so cap the window to keep the metric about
	// the fault, not end-of-run drain.
	endBin := faultBin + int(4*sim.Millisecond/recoveryBin)
	if endBin > nbins {
		endBin = nbins
	}
	worst := math.Inf(1)
	recovery = r.Elapsed - faultAt // pessimistic: never recovered
	recovered := false
	for b := faultBin; b < endBin; b++ {
		frac := bins[b] / pre
		if frac < worst {
			worst = frac
		}
		if !recovered && frac >= 0.9 {
			recovery = sim.Time(b)*recoveryBin - faultAt
			if recovery < 0 {
				recovery = 0
			}
			recovered = true
		}
	}
	if math.IsInf(worst, 1) {
		return math.NaN(), 0
	}
	return worst, recovery
}
