package experiments

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// Dumbbell reproduces §7.4 "Mixed traffic with PFC": a two-switch
// dumbbell where six senders burst 600 foreground flows of 32 kB while a
// seventh sender runs a long background flow across the same
// inter-switch link, with PFC enabled. The paper reports TLT cutting the
// PFC pause duration roughly in half (6.24 ms → 3.26 ms) and thereby
// recovering background goodput.
func Dumbbell(scale Scale) *Report {
	rep := &Report{
		ID:     "dumbbell",
		Title:  "Dumbbell mixed traffic with PFC (600 x 32kB fg + long bg flow)",
		Header: []string{"variant", "paused time", "bg goodput (burst)", "fg p99 FCT", "timeouts", "non-proactive drops"},
	}
	fgFlows := 600
	if scale.AppPoints > 0 {
		fgFlows = 120
	}
	sw := newSweep(rep)
	for _, tlt := range []bool{false, true} {
		v := Variant{Transport: "dctcp", TLT: tlt, PFC: true}
		rc := RunConfig{
			Label:   v.Name() + " dumbbell",
			Variant: v,
			// rc.Variant (not the captured v) carries the session -mmu/-fc
			// overrides folded in by RunGrid.
			Custom: func(rc RunConfig) *Result {
				return runDumbbell(rc.Variant, fgFlows, rc.Seed)
			},
		}
		sw.add0(rc, scale.Seeds, func(rs []*Result) {
			var paused, goodput, fgP99 []float64
			timeouts := 0
			var drops int64
			for _, res := range rs {
				if res == nil || res.Panicked {
					continue
				}
				r := res.App.(*dumbbellResult)
				paused = append(paused, r.pausedTime.Seconds())
				goodput = append(goodput, r.bgGoodputBps/1e9)
				fgP99 = append(fgP99, r.fgP99)
				timeouts += r.timeouts
				drops += r.drops
			}
			rep.AddRow(v.Name(),
				meanStdDur(paused),
				fmt.Sprintf("%.2fGbps", stats.Mean(goodput)),
				meanStdDur(fgP99),
				fmt.Sprintf("%d", timeouts),
				fmt.Sprintf("%d", drops))
		})
	}
	sw.exec()
	rep.Note("paper: TLT halves PFC pause duration (6.24ms -> 3.26ms) and lifts bg goodput; TLT's color drops are proactive by design, all other drops stay 0")
	return rep
}

type dumbbellResult struct {
	pausedTime   sim.Time
	bgGoodputBps float64
	fgP99        float64
	timeouts     int
	drops        int64
}

func runDumbbell(v Variant, fgFlows int, seed int64) *Result {
	tlt := v.TLT
	s := sim.New()
	swc := fabric.SwitchConfig{
		// Netberg Aurora 420 / Trident II: 12 MB shared buffer.
		BufferBytes: 12_000_000,
		Alpha:       1,
		ECN:         fabric.ECNStep,
		KEcn:        200_000,
		PFC:         true,
		MMU:         v.MMU,
		FC:          v.FC,
	}
	swc.XOff = swc.BufferBytes / 32
	swc.XOn = swc.XOff - 2096
	if tlt {
		swc.ColorThreshold = 270_000
	}
	// Aurora 420 testbed: hosts attach at 10 GbE, the inter-switch link
	// is 40 GbE. The foreground bottleneck is the receiver's access
	// port; the background flow shares only the cross link and the
	// senders' ingress ports — exactly the HoL-blocking setup.
	n := topo.Dumbbell(s, topo.DumbbellConfig{
		LeftHosts: 7, RightHosts: 2,
		LinkRateBps:  10e9,
		CrossRateBps: 40e9,
		LinkDelay:    2 * sim.Microsecond,
		Switch:       swc,
		SeedSalt:     seed,
	})
	rec := stats.NewRecorder()
	cfg := tcp.DCTCPConfig()
	cfg.TLT = core.Config{Enabled: tlt}

	// Background: host 6 (left) streams to host 8 (right) continuously.
	bgFlow := &transport.Flow{ID: 1, Src: 6, Dst: 8, Size: 1 << 40}
	bgRec := rec.NewFlowRecord(bgFlow)
	bg := tcp.NewConn(s, n.Hosts[6], n.Hosts[8], bgFlow, cfg, bgRec, rec)
	bg.Sender.Write(1 << 40) // effectively unbounded

	// Foreground: 600 flows of 32 kB from hosts 0-5 to host 7, arriving
	// in synchronized waves of 60 once the background flow is at line
	// rate (the testbed generates them over a few tens of ms).
	start := 2 * sim.Millisecond
	id := packet.FlowID(2)
	for i := 0; i < fgFlows; i++ {
		src := n.Hosts[i%6]
		wave := sim.Time(i/60) * 2 * sim.Millisecond
		f := &transport.Flow{
			ID: id, Src: src.ID(), Dst: 7,
			Size: 32 * 1024, Start: start + wave + sim.Time(seed*31+int64(i%6))*100*sim.Nanosecond,
			FG: true,
		}
		id++
		tcp.StartFlow(s, src, n.Hosts[7], f, cfg, rec, nil)
	}

	// Measure background goodput over the contention window only (from
	// the burst start until the bulk of the foreground drains), as the
	// paper observes the degradation during the burst.
	s.Run(start)
	bgBefore := bg.Receiver.Delivered()
	window := 20 * sim.Millisecond
	s.Run(start + window)
	bgDuring := bg.Receiver.Delivered() - bgBefore
	s.Run(40 * sim.Millisecond) // let the foreground finish
	n.FinishPausedClocks()

	var pausedTotal sim.Time
	for _, tx := range n.Txs {
		pausedTotal += tx.PausedTotal
	}
	ctr := n.Counters()
	return &Result{Rec: rec, EventsRun: s.Processed, Sched: s.Sched, App: &dumbbellResult{
		pausedTime:   pausedTotal,
		bgGoodputBps: float64(bgDuring) * 8 / window.Seconds(),
		fgP99:        stats.Percentile(rec.Select(true), 0.99),
		timeouts:     rec.TimeoutsAll(),
		drops:        ctr.TotalDrops() - ctr.DropRedColor, // non-proactive drops
	}}
}
