package experiments

import (
	"encoding/json"
	"strings"
)

// CSV renders the report as RFC-4180-ish comma-separated values with a
// header row. Cells containing commas or quotes are quoted.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Header)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// jsonReport is the stable JSON shape of a report.
type jsonReport struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	out, err := json.MarshalIndent(jsonReport{
		ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows, Notes: r.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
