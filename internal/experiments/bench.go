package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"time"
)

// BenchRecord is one bench-pipeline measurement: an experiment run at a
// known scale and worker limit, with wall-clock, event throughput, and
// allocation attribution per grid cell.
type BenchRecord struct {
	Experiment     string  `json:"experiment"`
	Procs          int     `json:"procs"`
	Cells          int     `json:"cells"`
	Rows           int     `json:"rows"`
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerCell  float64 `json:"allocs_per_cell"`
	AllocMBPerCell float64 `json:"alloc_mb_per_cell"`

	// SetupWallSeconds is the summed per-cell construction wall-clock
	// (topology build, flow registration) before event loops start —
	// the cost the fabric-blueprint cache attacks. Packets is total
	// switch enqueues, so events/packets gives a per-packet event cost.
	// Both absent (zero) in records from before the blueprint runner.
	SetupWallSeconds float64 `json:"setup_wall_seconds,omitempty"`
	Packets          uint64  `json:"packets,omitempty"`

	// HeapAllocBytes is the live heap right after the run; PeakHeapBytes
	// is the largest live heap a ~20ms sampler observed during it. Peak
	// is the number the bounded-memory experiments gate on: a streaming
	// run that accidentally retains per-flow state shows up here even
	// when the post-run live heap looks innocent. Absent (zero) in
	// records from before the scale runner.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
	PeakHeapBytes  uint64 `json:"peak_heap_bytes,omitempty"`

	// Shards is the per-run shard count the entry executed with, and
	// ShardEvents the per-shard event totals over the grid — a direct
	// read on partition balance. Repeats is how many times the entry
	// ran; the record keeps the run with the median events/s. Absent
	// (zero/omitted) in records from before the sharded runner.
	Shards      int      `json:"shards,omitempty"`
	Repeats     int      `json:"repeats,omitempty"`
	ShardEvents []uint64 `json:"shard_events,omitempty"`

	// MMU and FC record the session policy overrides (-mmu / -fc) the
	// entry ran under, so bench history distinguishes buffer-policy
	// regimes. Empty means each variant's own (default) policies.
	MMU string `json:"mmu,omitempty"`
	FC  string `json:"fc,omitempty"`

	// Scheduler-internal counters aggregated over the grid. DeadPops is
	// the key health metric: cancelled timers that still paid a heap pop
	// (queue pollution the dead-timer reclamation failed to absorb).
	DeadPops      uint64 `json:"dead_pops"`
	DeadReclaimed uint64 `json:"dead_reclaimed"`
	Cascades      uint64 `json:"cascades"`
	Compactions   uint64 `json:"compactions"`
	HeapMax       int    `json:"heap_max"`
}

// BenchFile is the on-disk artifact format (BENCH_<tag>.json): the host
// fingerprint needed to interpret the numbers plus one record per run.
type BenchFile struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Note       string        `json:"note,omitempty"`
	Records    []BenchRecord `json:"records"`
}

// MeasureEntry runs one experiment at the given scale under the current
// worker limit and returns its bench record alongside the report.
// Allocation figures are process-wide runtime.MemStats deltas divided by
// the grid cell count — approximate, so measure entries one at a time
// (cmd/tltsim runs entries sequentially whenever -bench-out is set).
func MeasureEntry(e Entry, scale Scale) (BenchRecord, *Report) {
	return MeasureEntryN(e, scale, 1)
}

// MeasureEntryN is MeasureEntry repeated: the entry runs repeats times
// and the record kept is the run with the median events/s, so one
// descheduled run doesn't skew a regression gate. The record's Repeats
// field says how many runs backed it.
func MeasureEntryN(e Entry, scale Scale, repeats int) (BenchRecord, *Report) {
	if repeats < 1 {
		repeats = 1
	}
	recs := make([]BenchRecord, 0, repeats)
	reps := make([]*Report, 0, repeats)
	for i := 0; i < repeats; i++ {
		rec, rep := measureOnce(e, scale)
		recs = append(recs, rec)
		reps = append(reps, rep)
	}
	// Median by events/s: order run indices, take the middle one.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return recs[order[a]].EventsPerSec < recs[order[b]].EventsPerSec
	})
	mid := order[len(order)/2]
	rec := recs[mid]
	rec.Repeats = repeats
	return rec, reps[mid]
}

func measureOnce(e Entry, scale Scale) (BenchRecord, *Report) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	peak := make(chan uint64, 1)
	stop := make(chan struct{})
	go func() {
		// Peak-heap sampler: cheap enough at 20ms to leave on for every
		// bench run, fine-grained enough to catch a transient balloon.
		var ms runtime.MemStats
		var max uint64
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peak <- max
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > max {
					max = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	rep := RunEntry(e, scale)
	wall := time.Since(start).Seconds()
	close(stop)
	peakHeap := <-peak
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peakHeap {
		peakHeap = after.HeapAlloc
	}

	cells, events := rep.GridStats()
	sched := rep.SchedStats()
	mmuName, fcName := Policies()
	rec := BenchRecord{
		Experiment:       e.ID,
		Procs:            Procs(),
		Shards:           Shards(),
		MMU:              mmuName,
		FC:               fcName,
		ShardEvents:      rep.ShardEvents(),
		Cells:            cells,
		Rows:             len(rep.Rows),
		WallSeconds:      wall,
		Events:           events,
		SetupWallSeconds: rep.SetupWall().Seconds(),
		Packets:          rep.Packets(),
		HeapAllocBytes:   after.HeapAlloc,
		PeakHeapBytes:    peakHeap,
		DeadPops:         sched.DeadPops,
		DeadReclaimed:    sched.DeadReclaimed,
		Cascades:         sched.Cascades,
		Compactions:      sched.Compactions,
		HeapMax:          sched.HeapMax,
	}
	if wall > 0 {
		rec.EventsPerSec = float64(events) / wall
	}
	if cells > 0 {
		rec.AllocsPerCell = float64(after.Mallocs-before.Mallocs) / float64(cells)
		rec.AllocMBPerCell = float64(after.TotalAlloc-before.TotalAlloc) / float64(cells) / 1e6
	}
	return rec, rep
}

// WriteBenchFile writes records plus the host fingerprint as indented
// JSON to path.
func WriteBenchFile(path, note string, recs []BenchRecord) error {
	f := BenchFile{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       note,
		Records:    recs,
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
