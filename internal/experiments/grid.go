package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"tlt/internal/stats"
)

// This file is the parallel run executor. Every figure is a grid of
// independent simulations (variant × seed × sweep point); each cell owns
// its sim, network, RNGs and recorder, so cells are embarrassingly
// parallel. RunGrid fans cells across a worker limit and returns results
// in input order, and the sweep builder below keeps all row formatting
// in deterministic registration-order folds — so a report rendered with
// 16 workers is byte-identical to a serial one.

// procsSem is the session-wide concurrency limit, shared by every
// RunGrid call with default options. Sharing one semaphore is what lets
// `-exp all` interleave cells from all experiments: small figures don't
// serialize behind big ones, they compete for the same worker slots.
var (
	procsMu  sync.Mutex
	procsSem chan struct{}
)

// SetProcs sets the shared worker limit for subsequent grids (n < 1 is
// clamped to 1). Call it before runs start — e.g. from the -procs flag
// or a test — not while a grid is in flight.
func SetProcs(n int) {
	if n < 1 {
		n = 1
	}
	procsMu.Lock()
	procsSem = make(chan struct{}, n)
	procsMu.Unlock()
}

// Procs returns the shared worker limit (default runtime.GOMAXPROCS).
func Procs() int {
	return cap(sharedSem())
}

// sessionShards is the default per-run shard count grids apply to cells
// that don't pin their own (the -shards flag). Guarded by procsMu with
// the semaphore since both are set at session start.
var sessionShards = 1

// SetShards sets the session default shard count for subsequent grids
// (n < 1 is clamped to 1). Like SetProcs, call before runs start.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	procsMu.Lock()
	sessionShards = n
	procsMu.Unlock()
}

// Shards returns the session default shard count.
func Shards() int {
	procsMu.Lock()
	defer procsMu.Unlock()
	return sessionShards
}

// AutoShards picks a shard count for this host: one event loop per CPU,
// capped at the default leaf-spine's 12 ToRs — the partitioner assigns
// whole switches, so shards beyond the leaf count sit idle. Degrades to
// 1 on a single-core host (sharding only costs mailbox traffic there).
func AutoShards() int {
	n := runtime.NumCPU()
	if n > 12 {
		n = 12
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sessionMMU/sessionFC are the session default switch MMU and
// flow-control policy names (the -mmu / -fc flags); "" keeps each
// variant's own setting. Guarded by procsMu like the other session
// defaults.
var sessionMMU, sessionFC string

// SetPolicies sets the session default buffer policy and flow control
// for subsequent grids. Either may be "" to leave variants untouched.
// Like SetProcs, call before runs start.
func SetPolicies(mmuName, fcName string) {
	procsMu.Lock()
	sessionMMU, sessionFC = mmuName, fcName
	procsMu.Unlock()
}

// Policies returns the session default MMU and flow-control names.
func Policies() (mmuName, fcName string) {
	procsMu.Lock()
	defer procsMu.Unlock()
	return sessionMMU, sessionFC
}

func sharedSem() chan struct{} {
	procsMu.Lock()
	defer procsMu.Unlock()
	if procsSem == nil {
		procsSem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	return procsSem
}

// GridOpts tunes one RunGrid call.
type GridOpts struct {
	// Procs, when positive, runs this grid on a private worker limit of
	// that size instead of the shared session limit.
	Procs int
}

// RunGrid executes every cell and returns the results in input order,
// regardless of completion order. Cells with no explicit fault plan or
// audit flag inherit the session harness settings (-chaos / -audit). A
// panicking cell yields a Result with Panicked set and a replay note
// instead of tearing down the grid.
func RunGrid(cells []RunConfig, opts GridOpts) []*Result {
	if len(cells) == 0 {
		return nil
	}
	sem := sharedSem()
	if opts.Procs > 0 {
		sem = make(chan struct{}, opts.Procs)
	}
	hp, ha := harnessSettings()
	smmu, sfc := Policies()
	results := make([]*Result, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		rc := cells[i]
		if rc.Faults == nil {
			rc.Faults = hp
		}
		if ha {
			rc.Audit = true
		}
		if rc.Shards == 0 {
			rc.Shards = Shards()
		}
		// Session policy overrides (-mmu / -fc) apply to cells whose
		// variant doesn't pin its own, mirroring the fault/audit fold.
		if rc.Variant.MMU == "" {
			rc.Variant.MMU = smmu
		}
		if rc.Variant.FC == "" {
			rc.Variant.FC = sfc
		}
		wg.Add(1)
		go func(i int, rc RunConfig) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Cells and shards share the one worker budget: a sharded
			// cell borrows extra slots if any are free right now (never
			// blocking — that could deadlock the grid) and runs its
			// shard group on 1 + borrowed workers.
			extra := 0
		borrow:
			for extra < rc.Shards-1 {
				select {
				case sem <- struct{}{}:
					extra++
				default:
					break borrow // no free slot; run narrower
				}
			}
			rc.Workers = 1 + extra
			results[i] = runCell(rc)
			for ; extra > 0; extra-- {
				<-sem
			}
		}(i, rc)
	}
	wg.Wait()
	return results
}

// runCell executes one cell, converting a panic (a bad config, an audit
// violation, a chaos-exposed bug) into a replayable note on an otherwise
// empty result so the remaining cells still produce a partial report.
func runCell(rc RunConfig) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			stack := strings.Split(string(debug.Stack()), "\n")
			if len(stack) > 16 {
				stack = stack[:16]
			}
			res = &Result{
				Rec:      stats.NewRecorder(),
				Panicked: true,
				Notes: []string{fmt.Sprintf(
					"seed %d (%s) PANICKED — replay with this variant and seed to debug; partial results reported without it\n%v\n%s",
					rc.Seed, rc.label(), r, strings.Join(stack, "\n"))},
			}
		}
	}()
	if rc.Custom != nil {
		return rc.Custom(rc)
	}
	return Run(rc)
}

// sweep accumulates a figure's whole grid before running any of it: the
// generator registers cells plus a fold per row group, exec() fans the
// cells out through RunGrid, and the folds then run serially in
// registration order over in-order results. Fold closures may therefore
// keep local accumulators without synchronization.
type sweep struct {
	rep   *Report
	cells []RunConfig
	folds []foldSpan
}

type foldSpan struct {
	start, n int
	fn       func([]*Result)
}

func newSweep(rep *Report) *sweep { return &sweep{rep: rep} }

// add registers seeds replicas of rc — rc.Seed = 1..seeds, the
// historical seedMetrics numbering — and a fold over their results.
func (sw *sweep) add(rc RunConfig, seeds int, fn func([]*Result)) {
	sw.span(seeds, func(i int) RunConfig {
		c := rc
		c.Seed = int64(i + 1)
		return c
	}, fn)
}

// add0 is add with 0-based seeds (the app figures' historical numbering).
func (sw *sweep) add0(rc RunConfig, seeds int, fn func([]*Result)) {
	sw.span(seeds, func(i int) RunConfig {
		c := rc
		c.Seed = int64(i)
		return c
	}, fn)
}

// cell registers a single cell with rc.Seed left as set. The fold is
// skipped when the cell panicked (its replay note still surfaces), so
// single-run figures degrade to a missing row, not a crash.
func (sw *sweep) cell(rc RunConfig, fn func(*Result)) {
	sw.span(1, func(int) RunConfig { return rc }, func(rs []*Result) {
		if rs[0] != nil && !rs[0].Panicked {
			fn(rs[0])
		}
	})
}

// span registers n cells built by mk and one fold over their results.
func (sw *sweep) span(n int, mk func(i int) RunConfig, fn func([]*Result)) {
	start := len(sw.cells)
	for i := 0; i < n; i++ {
		sw.cells = append(sw.cells, mk(i))
	}
	sw.folds = append(sw.folds, foldSpan{start: start, n: n, fn: fn})
}

// exec runs the registered grid and builds the report: folds replay in
// registration order, then per-cell notes (stall reports, incomplete
// warnings, panic captures) merge in cell order. Both orders depend only
// on registration, never on scheduling.
func (sw *sweep) exec() {
	results := RunGrid(sw.cells, GridOpts{})
	for _, f := range sw.folds {
		f.fn(results[f.start : f.start+f.n])
	}
	sw.rep.cells += len(sw.cells)
	for _, r := range results {
		if r == nil {
			continue
		}
		sw.rep.Notes = append(sw.rep.Notes, r.Notes...)
		sw.rep.events += r.EventsRun
		sw.rep.sched.Add(&r.Sched)
		sw.rep.setupWall += r.SetupWall
		sw.rep.packets += uint64(r.Ctr.EnqGreen + r.Ctr.EnqRed)
		for i, ev := range r.ShardEvents {
			if i < len(sw.rep.shardEvents) {
				sw.rep.shardEvents[i] += ev
			} else {
				sw.rep.shardEvents = append(sw.rep.shardEvents, ev)
			}
		}
	}
}

// metricsOf folds per-cell metric vectors into per-metric columns,
// skipping panicked cells and NaN samples (a cell with no foreground
// completions yields NaN percentiles). It replaces the serial
// seedMetrics loop: same matrix, computed from pre-run results.
func metricsOf(rs []*Result, metric func(*Result) []float64) [][]float64 {
	var out [][]float64
	for _, r := range rs {
		if r == nil || r.Panicked {
			continue
		}
		m := metric(r)
		for len(out) < len(m) {
			out = append(out, nil)
		}
		for i, x := range m {
			if !isNaN(x) {
				out[i] = append(out[i], x)
			}
		}
	}
	return out
}

// col returns column i of ms, or nil when every cell panicked and the
// matrix is short — folds then render "n/a" instead of panicking.
func col(ms [][]float64, i int) []float64 {
	if i < len(ms) {
		return ms[i]
	}
	return nil
}

func isNaN(x float64) bool { return x != x }
