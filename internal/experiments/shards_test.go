package experiments

import (
	"testing"
)

// withShards swaps the session shard count for the duration of a test.
func withShards(t *testing.T, n int) {
	t.Helper()
	old := Shards()
	SetShards(n)
	t.Cleanup(func() { SetShards(old) })
}

// renderSharded renders one experiment's report at a given worker limit
// and shard count.
func renderSharded(t *testing.T, id string, scale Scale, procs, shards int) string {
	t.Helper()
	withShards(t, shards)
	return renderAt(t, id, scale, procs)
}

// The contract the parallel-DES design hangs on: a report produced with
// the fabric sharded across four event loops must be byte-identical to
// the single-shard one, under both a serial grid and an oversubscribed
// parallel grid (cells and shard workers competing for the same slots).
// The experiments cover clean congestion (fig5), randomized link
// flaps and GE loss (chaos-recovery), switch kills with reroute plus
// pause storms (failure-recovery) — every cross-shard mutation path the
// chaos engine has — and the non-default MMU/flow-control strategies
// (ablation-buffer: bshare thresholds, tiny-buffer capacity, BFC
// pause targeting all run inside sharded fabrics) — plus the streaming
// fat-tree runner (scale-sweep: per-shard schedule walkers, merged
// stream aggregates).
func TestGridReportsDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	scale := Scale{BgFlows: 30, Seeds: 2, AppPoints: 2}
	for _, id := range []string{"fig5", "chaos-recovery", "failure-recovery", "ablation-buffer", "scale-sweep"} {
		base := renderSharded(t, id, scale, 1, 1)
		for _, cfg := range [][2]int{{1, 4}, {8, 1}, {8, 4}} {
			got := renderSharded(t, id, scale, cfg[0], cfg[1])
			if got != base {
				t.Fatalf("%s: report at procs=%d shards=%d differs from procs=1 shards=1\n--- base ---\n%s\n--- got ---\n%s",
					id, cfg[0], cfg[1], base, got)
			}
		}
	}
}

// A sharded run must agree with the single-shard run on the non-rendered
// aggregates too: event totals, scheduler counters, and the per-shard
// event breakdown must sum consistently.
func TestShardedRunAggregates(t *testing.T) {
	base := RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    3,
	}
	r1c := base
	r1c.Shards = 1
	r4c := base
	r4c.Shards = 4
	r1, r4 := Run(r1c), Run(r4c)
	if r1.EventsRun != r4.EventsRun {
		t.Fatalf("EventsRun %d (shards=1) != %d (shards=4)", r1.EventsRun, r4.EventsRun)
	}
	if r1.Elapsed != r4.Elapsed {
		t.Fatalf("Elapsed %v != %v", r1.Elapsed, r4.Elapsed)
	}
	if len(r4.ShardEvents) != 4 {
		t.Fatalf("ShardEvents has %d entries, want 4", len(r4.ShardEvents))
	}
	var sum uint64
	for _, ev := range r4.ShardEvents {
		if ev == 0 {
			t.Fatalf("a shard ran zero events: %v (partitioner left it empty)", r4.ShardEvents)
		}
		sum += ev
	}
	if sum != r4.EventsRun {
		t.Fatalf("ShardEvents sum %d != EventsRun %d", sum, r4.EventsRun)
	}
	s1, s4 := r1.Sched, r4.Sched
	if s1.DeadPops != s4.DeadPops || s1.DeadReclaimed != s4.DeadReclaimed {
		t.Fatalf("sched counters diverge: shards=1 %+v, shards=4 %+v", s1, s4)
	}
}

// Observer collectors read cross-shard state from event callbacks, so
// runs that attach them must clamp to one shard — and still succeed.
func TestObserverRunsClampToOneShard(t *testing.T) {
	rc := RunConfig{
		Variant:         Variant{Transport: "dctcp", TLT: true},
		Traffic:         trafficFor(tinyScale(), 0.4, 0.05),
		Seed:            1,
		Shards:          4,
		Audit:           true,
		CollectDelivery: true,
	}
	res := Run(rc)
	if res.Panicked {
		t.Fatalf("clamped run panicked: %v", res.Notes)
	}
	if len(res.ShardEvents) != 1 {
		t.Fatalf("audit run used %d shards, want clamp to 1", len(res.ShardEvents))
	}
	if res.AuditEvents == 0 {
		t.Fatal("auditor saw no events")
	}
}
