package experiments

import (
	"testing"

	"tlt/internal/chaos"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// TestPermanentBlackHoleEveryFlowTerminal: a spine dies forever with no
// reroute, so every flow hashed across it faces a permanent black hole.
// With retry exhaustion configured, every flow must still reach a
// terminal state — completed or aborted, never silently stuck.
func TestPermanentBlackHoleEveryFlowTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	plan := &chaos.Plan{Seed: 1, SwFails: []chaos.SwitchFail{{
		Switch: 12, // first spine: Duration 0 = permanent, Reroute 0 = never
		At:     100 * sim.Microsecond,
	}}}
	for _, v := range []Variant{
		{Transport: "dctcp", TLT: true},
		{Transport: "dcqcn", PFC: true},
		{Transport: "hpcc"},
	} {
		v := v
		v.MaxRetries = 6
		v.MaxBackoffShift = 4
		t.Run(v.Name(), func(t *testing.T) {
			res := Run(RunConfig{
				Variant: v,
				Traffic: trafficFor(tinyScale(), 0.4, 0.05),
				Seed:    1,
				Faults:  plan,
			})
			if res.Ctr.DropSwitchFail == 0 {
				t.Fatal("dead spine dropped nothing — fault did not land")
			}
			if res.Aborted == 0 {
				t.Fatal("no flow aborted against a permanent black hole")
			}
			done := 0
			for _, fr := range res.Rec.Flows {
				switch {
				case fr.Done:
					// A completed flow may also carry an abort mark when
					// the sender gave up while the final delivery was in
					// flight; it counts as done (see stats.FlowRecord).
					done++
				case fr.Aborted:
					if fr.AbortEnd == 0 {
						t.Fatalf("aborted flow %d has no abort stamp", fr.Flow.ID)
					}
				default:
					t.Fatalf("flow %d neither completed nor aborted", fr.Flow.ID)
				}
			}
			if res.Incomplete != 0 {
				t.Fatalf("Incomplete = %d with every flow terminal", res.Incomplete)
			}
			if done+res.Aborted != res.FlowCount {
				t.Fatalf("done %d + aborted %d != %d flows", done, res.Aborted, res.FlowCount)
			}
			// Aborted senders are torn down, so the stall report must not
			// name them as starved.
			for _, fs := range res.Stalls {
				t.Fatalf("stall report names flow %d after terminal teardown", fs.Flow)
			}
		})
	}
}

// TestRecoveryMetricsFold: the dip/recovery fold over a synthetic record —
// steady pre-fault goodput, one crushed bin, then restoration — must
// report the crushed bin's fraction and the first healthy bin's offset.
func TestRecoveryMetricsFold(t *testing.T) {
	rec := stats.NewRecorder()
	const faultAt = 200 * sim.Microsecond
	bin := recoveryBin
	add := func(end sim.Time, bytes int64) {
		fr := rec.NewFlowRecord(&transport.Flow{Size: bytes})
		rec.FlowDone(fr, end)
	}
	// Two pre-fault bins at 100 kB each establish the baseline.
	add(faultAt-bin-bin/2, 100_000)
	add(faultAt-bin/2, 100_000)
	// The fault bin collapses to 10 kB; every later bin in the 4 ms scan
	// window restores to baseline (the fold scans the full window, so an
	// empty tail bin would register as a deeper dip).
	add(faultAt+bin/2, 10_000)
	for b := sim.Time(1); b*bin < 4*sim.Millisecond; b++ {
		add(faultAt+b*bin+bin/2, 100_000)
	}
	res := &Result{Rec: rec, Elapsed: 10 * sim.Millisecond}
	res.FlowCount = len(rec.Flows)

	dip, recovery := recoveryMetrics(res, faultAt)
	if dip < 0.09 || dip > 0.11 {
		t.Fatalf("dip = %v, want ~0.1 (worst bin at 10kB of a 100kB baseline)", dip)
	}
	if recovery != bin {
		t.Fatalf("recovery = %v, want %v (second post-fault bin is healthy)", recovery, bin)
	}
}
