package experiments

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"tlt/internal/app"
	"tlt/internal/chaos"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
	"tlt/internal/workload"
)

// This file is the bounded-memory scale experiment: k-ary fat-trees up
// to thousands of hosts under open-loop service traffic with connection
// churn, aggregated entirely through streaming histograms so memory is
// O(live flows + histogram buckets), never O(flows issued).
//
// The execution model differs from the standard Run path on purpose.
// Instead of materializing the flow schedule and registering every
// endpoint up front, every shard constructs an identical deterministic
// arrival Source (same seeds) and walks the full schedule with one
// self-rescheduling event, spawning only the endpoint halves it owns.
// No arrival ever crosses a shard boundary, so the schedule — and with
// it the report — is byte-identical at any shard count. Retiring flows
// fold into per-shard stats.Stream aggregates (integer counters and
// log-bucketed histograms) that merge in shard order after the run.

// scaleFlowBase places scale-run flow IDs past the fabric's dense demux
// window (fabric.Host's maxDenseFlow = 1<<22), so endpoint lookup takes
// the map path: bounded by live flows and freed on Unregister, instead
// of an O(max flow ID) dense table per host. The dense path and its
// 0-alloc hot-path benchmarks are untouched.
const scaleFlowBase = 1 << 22

// scaleParams is one scale-sweep cell.
type scaleParams struct {
	K        int     // fat-tree arity
	Load     float64 // target utilization of the hottest server's uplink
	Requests int     // open-loop RPC request arrivals
	Fanout   int     // response flows per request
}

// scaleGrace is how long a completed receiver lingers before its demux
// slot is reaped, re-armed by any late packet. It must exceed the
// sender's retransmission gap so a lost final ACK still finds a
// receiver to re-ACK; 2×RTOmin covers one backoff round. Lingering
// receivers are the dominant reaped-state cost: arrival_rate × grace
// objects.
func scaleGrace(cfg tcp.Config) sim.Time { return 2 * cfg.RTO.Min }

// scaleService builds the cell's service model: a replicated server
// pool on the first quarter of hosts, Zipf-skewed keys, and the RPC
// response-size distribution.
func scaleService(p scaleParams, hosts int, seed int64) *app.Service {
	servers := hosts / 4
	return app.NewService(app.ServiceConfig{
		Hosts:    hosts,
		Servers:  servers,
		Keys:     4 * servers,
		Replicas: 3,
		Skew:     1.1,
		Requests: p.Requests,
		MeanGap:  0, // calibrated below, see scaleSource
		Fanout:   p.Fanout,
		Dist:     workload.RPC,
		Seed:     seed,
	})
}

// scaleSource returns the cell's full arrival stream: calibrated
// open-loop RPC fan-in plus a 5% background elephant stream between
// random hosts. Deterministic given (params, hosts, rate, seed) — every
// shard builds its own identical copy.
func scaleSource(p scaleParams, hosts int, rateBps int64, seed int64) workload.Source {
	sv := scaleService(p, hosts, seed)
	// Calibrate the request rate so the *hottest* server's egress
	// utilization — not the fabric average — hits the target load:
	// share_max · λ · Fanout · E[size] · 8 = load · rate.
	mean := workload.RPC.Mean()
	lam := p.Load * float64(rateBps) / (8 * sv.MaxServerShare() * float64(p.Fanout) * mean)
	gap := sim.Time(1e9 / lam)
	if gap < 1 {
		gap = 1
	}
	rpc := rebuildServiceWithGap(p, hosts, seed, gap)
	bg := workload.NewPoisson(workload.PoissonConfig{
		Flows:   p.Requests / 20,
		MeanGap: gap * 20,
		Hosts:   hosts,
		Dist:    workload.CacheFollower,
		Seed:    seed + 500_000,
	})
	return workload.MergeSources(rpc.Stream(), bg)
}

// rebuildServiceWithGap rebuilds the service with the calibrated gap
// (ServiceConfig is immutable once the Service is constructed).
func rebuildServiceWithGap(p scaleParams, hosts int, seed int64, gap sim.Time) *app.Service {
	servers := hosts / 4
	return app.NewService(app.ServiceConfig{
		Hosts:    hosts,
		Servers:  servers,
		Keys:     4 * servers,
		Replicas: 3,
		Skew:     1.1,
		Requests: p.Requests,
		MeanGap:  gap,
		Fanout:   p.Fanout,
		Dist:     workload.RPC,
		Seed:     seed,
	})
}

// rcvSlot wraps a streaming-run receiver for quiescence-based reaping:
// Handle timestamps every arriving packet, and the reap timer only
// retires the demux slot once the flow has been quiet for the grace
// period (a retransmit of a lost final ACK re-arms it).
//
// Once the flow has fully delivered, the heavyweight tcp.Receiver (cfg
// copy, range set, TLT window state, flow struct) is released and rcv
// set to nil; any data packet that arrives during the grace window —
// a retransmit of the final segment whose ACK was lost — gets its
// cumulative ACK synthesized from the few words kept here. Completion-
// rate × grace lingering slots are the dominant steady-state heap of a
// compressed million-flow run, so their size matters.
type rcvSlot struct {
	ssim   *sim.Sim
	host   *fabric.Host
	rcv    *tcp.Receiver // nil once fully delivered
	lastRx sim.Time
	peer   packet.NodeID // sender, the synthesized ACK's destination
	id     packet.FlowID
	size   int64
	tc     uint8
}

func (rs *rcvSlot) Handle(p *packet.Packet) {
	rs.lastRx = rs.ssim.Now()
	if rs.rcv != nil {
		rs.rcv.Handle(p)
		return
	}
	if p.Type != packet.Data {
		return
	}
	ack := rs.host.NewPacket()
	ack.Flow, ack.Dst = rs.id, rs.peer
	ack.Type = packet.Ack
	ack.TC = rs.tc
	ack.Ack = rs.size
	ack.ECE = p.CE
	rs.host.Send(ack)
}

// scaleWalker is one shard's view of a streaming run.
type scaleWalker struct {
	ssim   *sim.Sim
	g      *sim.Group
	net    *topo.Network
	shard  int
	src    workload.Source
	next   workload.Arrival
	ok     bool
	seq    int64 // global arrival index (identical on every shard)
	cfg    tcp.Config
	grace  sim.Time
	stream *stats.Stream
	rem    *atomic.Int64
	stepFn func()
	// record free list: O(peak live) FlowRecords per shard instead of
	// one per flow.
	free []*stats.FlowRecord
}

func (w *scaleWalker) getRecord(fl *transport.Flow) *stats.FlowRecord {
	if n := len(w.free); n > 0 {
		fr := w.free[n-1]
		w.free = w.free[:n-1]
		fr.Flow = fl
		return fr
	}
	return &stats.FlowRecord{Flow: fl}
}

func (w *scaleWalker) putRecord(fr *stats.FlowRecord) {
	fr.Reset()
	w.free = append(w.free, fr)
}

// step processes every arrival due now that this shard owns, then
// fast-forwards the iterator past foreign arrivals to the next owned
// one and schedules itself there. The iterator advance is where each
// shard replays the global schedule; spawning is the only part gated on
// ownership.
func (w *scaleWalker) step() {
	now := w.ssim.Now()
	for w.ok {
		a := w.next
		sShard := w.net.HostShard[a.Src]
		rShard := w.net.HostShard[a.Dst]
		mine := sShard == w.shard || rShard == w.shard
		if a.At > now {
			if mine {
				w.ssim.At(a.At, w.stepFn)
				return
			}
		} else if mine {
			id := packet.FlowID(scaleFlowBase + w.seq)
			// Receiver half first: it must exist before the first
			// data packet, which is at least two link delays away.
			if rShard == w.shard {
				w.spawnReceiver(a, id)
			}
			if sShard == w.shard {
				w.spawnSender(a, id)
			}
		}
		w.seq++
		w.next, w.ok = w.src.Next()
	}
}

func (w *scaleWalker) spawnSender(a workload.Arrival, id packet.FlowID) {
	fl := &transport.Flow{
		ID: id, Src: packet.NodeID(a.Src), Dst: packet.NodeID(a.Dst),
		Size: a.Size, Start: a.At, FG: a.FG,
	}
	host := w.net.Hosts[a.Src]
	fr := w.getRecord(fl)
	cs := w.stream.Class(a.FG)
	cs.Issued++
	w.stream.Epochs.AddIssued(a.At)
	var snd *tcp.Sender
	snd = tcp.NewSender(w.ssim, host, fl, w.cfg, fr, nil, func() {
		// Sender-side completion: everything ACKed, no more timers
		// will fire (rtoTick/tlpTick early-return once done). Fold
		// the sender-owned counters and recycle immediately.
		cs.FoldSender(fr)
		host.Unregister(id)
		w.putRecord(fr)
		_ = snd
	})
	host.Register(id, snd)
	snd.Write(fl.Size)
	snd.Close()
}

func (w *scaleWalker) spawnReceiver(a workload.Arrival, id packet.FlowID) {
	fl := &transport.Flow{
		ID: id, Src: packet.NodeID(a.Src), Dst: packet.NodeID(a.Dst),
		Size: a.Size, Start: a.At, FG: a.FG,
	}
	host := w.net.Hosts[a.Dst]
	slot := &rcvSlot{
		ssim: w.ssim, host: host, id: id,
		peer: fl.Src, size: fl.Size, tc: w.cfg.TrafficClass,
		rcv: tcp.NewReceiver(w.ssim, host, fl, w.cfg),
	}
	var reap func()
	reap = func() {
		if quiet := w.ssim.Now() - slot.lastRx; quiet >= w.grace {
			host.Unregister(id)
			return
		}
		w.ssim.At(slot.lastRx+w.grace, reap)
	}
	slot.rcv.OnDeliver = func(total int64) {
		if slot.rcv == nil || total < fl.Size {
			return
		}
		now := w.ssim.Now()
		cs := w.stream.Class(a.FG)
		cs.FoldDone(now-fl.Start, fl.Size)
		w.stream.Epochs.AddDone(now, fl.Size)
		// Drop the receiver: the lingering slot re-ACKs on its own.
		// OnDeliver cannot fire again after this (the receiver is the
		// only caller and it is being released from this frame).
		slot.rcv = nil
		w.ssim.At(now+w.grace, reap)
		if w.rem.Add(-1) == 0 {
			w.g.RequestStop()
		}
	}
	host.Register(id, slot)
}

// runScale executes one scale-sweep cell. It parallels Run but swaps
// the materialized schedule + Recorder for per-shard walkers + Streams.
func runScale(rc RunConfig, p scaleParams) *Result {
	setupStart := time.Now()
	v := rc.Variant
	if v.Transport != "tcp" && v.Transport != "dctcp" {
		panic("scale-sweep: only the TCP family is wired for streaming runs, got " + v.Transport)
	}
	if v.MaxRetries != 0 {
		// Completion accounting is a bare atomic decrement; the
		// abort/completion race dedup of the standard path would need
		// O(flows) state, so retry-forever is a precondition here.
		panic("scale-sweep: MaxRetries must be 0 (retry forever)")
	}
	shards := rc.Shards
	if shards < 1 {
		shards = 1
	}
	g := sim.NewGroup(shards, v.linkDelay())
	s := g.Shard(0)

	ftCfg := topo.FatTreeConfig{
		K:           p.K,
		LinkRateBps: 40e9,
		LinkDelay:   v.linkDelay(),
		Switch:      v.switchConfig(),
		SeedSalt:    rc.Seed,
		Group:       g,
	}
	net := topo.FatTree(s, ftCfg)
	hosts := len(net.Hosts)

	// Pre-walk the schedule once to learn the flow total and the last
	// arrival — both deterministic functions of the config.
	var total int64
	var last sim.Time
	{
		src := scaleSource(p, hosts, ftCfg.LinkRateBps, rc.Seed)
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			total++
			last = a.At
		}
	}
	horizon := rc.Horizon
	if horizon == 0 {
		horizon = last + 2*sim.Second
	}
	epochW := last / 128
	if epochW < 50*sim.Microsecond {
		epochW = 50 * sim.Microsecond
	}

	cfg := v.tcpConfig()
	var remaining atomic.Int64
	remaining.Store(total)

	streams := make([]*stats.Stream, shards)
	walkers := make([]*scaleWalker, shards)
	for sh := 0; sh < shards; sh++ {
		streams[sh] = stats.NewStream(epochW)
		w := &scaleWalker{
			ssim:   g.Shard(sh),
			g:      g,
			net:    net,
			shard:  sh,
			src:    scaleSource(p, hosts, ftCfg.LinkRateBps, rc.Seed),
			cfg:    cfg,
			grace:  scaleGrace(cfg),
			stream: streams[sh],
			rem:    &remaining,
		}
		w.stepFn = w.step
		w.next, w.ok = w.src.Next()
		walkers[sh] = w
		w.ssim.At(0, w.stepFn)
	}

	// Queue sampling: per-shard max-queue series (fixed 100 µs tick),
	// merged elementwise-max after the join and folded into the merged
	// stream's histogram — the same shard-invariance recipe as Run's
	// QSamples, with bounded post-run storage.
	shardQ := make([][]int64, shards)
	for sh := 0; sh < shards; sh++ {
		sh := sh
		ssim := g.Shard(sh)
		var mine []*fabric.Switch
		for i, sw := range net.Switches {
			if net.SwitchShard[i] == sh {
				mine = append(mine, sw)
			}
		}
		var sample func()
		sample = func() {
			maxQ := int64(0)
			for _, sw := range mine {
				for pt := 0; pt < sw.NumPorts(); pt++ {
					if q := sw.QueueBytes(pt); q > maxQ {
						maxQ = q
					}
				}
			}
			shardQ[sh] = append(shardQ[sh], maxQ)
			if !g.Stopping() {
				ssim.After(100*sim.Microsecond, sample)
			}
		}
		ssim.After(0, sample)
	}

	workers := rc.Workers
	if workers < 1 {
		workers = shards
	}
	g.SetWorkers(workers)
	setupWall := time.Since(setupStart)
	end := g.Run(horizon)
	net.FinishPausedClocks()

	// Merge per-shard aggregates in shard order. Every field is
	// integer-derived, so the result is independent of the partition.
	agg := stats.NewStream(epochW)
	for _, st := range streams {
		agg.Merge(st)
	}
	var qMax []int64
	for _, qs := range shardQ {
		for i, q := range qs {
			if i < len(qMax) {
				if q > qMax[i] {
					qMax[i] = q
				}
			} else {
				qMax = append(qMax, q)
			}
		}
	}
	for _, q := range qMax {
		agg.Queue.Record(q)
	}

	res := &Result{
		Rec:         stats.NewRecorder(),
		Ctr:         net.Counters(),
		PausedFrac:  net.PausedFraction(end),
		Elapsed:     end,
		FlowCount:   int(total),
		Incomplete:  int(remaining.Load()),
		TrafficLast: last,
		SetupWall:   setupWall,
		App:         agg,
	}
	res.ShardEvents = make([]uint64, shards)
	for i := 0; i < shards; i++ {
		ss := g.Shard(i)
		res.ShardEvents[i] = ss.Processed
		res.EventsRun += ss.Processed
		res.Sched.Add(&ss.Sched)
	}
	for _, sw := range net.Switches {
		for pt := 0; pt < sw.NumPorts(); pt++ {
			if q := sw.MaxQueueBytes(pt); q > res.MaxQ {
				res.MaxQ = q
			}
		}
	}
	if res.Incomplete > 0 {
		res.Notef("%s seed %d: incomplete=%d of %d flows at horizon %v",
			rc.label(), rc.Seed, res.Incomplete, total, end)
	}
	return res
}

// scaleAxes returns the sweep axes, trimmed by AppPoints. The k axis is
// ordered so `-points 1` selects the CI smoke fabric (k=8, 128 hosts)
// and `-points 2` adds the kilo-host one. At full tier (>= 100k
// requests, i.e. a million-flow run counting fan-out) the axis switches
// to the 10k-host fabric the tentpole targets — k=34, 9826 hosts — so
// the bounded-memory claim is exercised where it matters.
func scaleAxes(scale Scale) (ks []int, loads []float64) {
	ks = []int{8, 16, 4}
	if scale.BgFlows >= 100_000 {
		ks = []int{34}
	}
	loads = []float64{0.6, 0.9}
	if n := scale.AppPoints; n > 0 {
		if n < len(ks) {
			ks = ks[:n]
		}
		if n < len(loads) {
			loads = loads[:n]
		}
	}
	return ks, loads
}

// ScaleSweep is the bounded-memory scale study: fat-tree size × hot-
// server load × TLT on/off under open-loop RPC fan-in with churn.
// Reports stream-aggregated FCT quantiles, timeout rates, live-flow
// peaks and goodput dips — all derived from integer state, so rows are
// byte-identical at any -procs/-shards.
func ScaleSweep(scale Scale) *Report {
	rep := &Report{
		ID:    "scale-sweep",
		Title: "open-loop service scale: fat-tree size × load × TLT",
		Header: []string{
			"k", "hosts", "load", "variant", "flows", "done",
			"fg p50", "fg p99", "fg p99.9", "bg p99",
			"to/1k", "peak live", "gdip", "q p99",
		},
	}
	ks, loads := scaleAxes(scale)
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
	}
	// Bounded-memory mode: a compressed million-flow run allocates fast
	// enough that the default GOGC=100 lets the heap ride to 2× live
	// before a cycle, doubling peak RSS for no benefit. Trading a few
	// extra GC CPU for a 1.5× ceiling keeps the documented 256 MiB
	// budget honest. Restored on return so grids run elsewhere in the
	// process (other experiments, tests) see the default.
	defer debug.SetGCPercent(debug.SetGCPercent(50))
	sw := newSweep(rep)
	for _, k := range ks {
		for _, load := range loads {
			for _, v := range variants {
				k, load, v := k, load, v
				p := scaleParams{K: k, Load: load, Requests: scale.BgFlows, Fanout: 4}
				rc := RunConfig{
					Variant: v,
					Label:   fmt.Sprintf("scale k=%d load=%.1f %s", k, load, v.Name()),
					// The chaos/fault plan is not wired into the
					// streaming runner; pin an empty plan so the
					// session -chaos flag cannot alter this grid.
					Faults: &chaos.Plan{},
					Custom: func(rc RunConfig) *Result { return runScale(rc, p) },
				}
				sw.add(rc, scale.Seeds, func(rs []*Result) {
					foldScaleRow(rep, k, load, v, rs)
				})
			}
		}
	}
	sw.exec()
	return rep
}

// foldScaleRow renders one (k, load, variant) row from its seed cells.
// Histograms and counters pool across seeds; peak live flows is a max
// (merging epoch series across seeds would sum coincident peaks).
func foldScaleRow(rep *Report, k int, load float64, v Variant, rs []*Result) {
	pool := stats.NewStream(sim.Millisecond)
	var peak int64
	var gdipSum float64
	var gdipN int
	var flows int64
	ok := false
	for _, r := range rs {
		if r == nil || r.Panicked {
			continue
		}
		st, good := r.App.(*stats.Stream)
		if !good {
			continue
		}
		ok = true
		flows += int64(r.FlowCount)
		pool.FG.FCT.Merge(st.FG.FCT)
		pool.BG.FCT.Merge(st.BG.FCT)
		pool.Queue.Merge(st.Queue)
		pool.FG.Timeouts += st.FG.Timeouts
		pool.BG.Timeouts += st.BG.Timeouts
		pool.FG.Done += st.FG.Done
		pool.BG.Done += st.BG.Done
		if pl := st.Epochs.PeakLive(); pl > peak {
			peak = pl
		}
		if d, okd := goodputDip(st.Epochs); okd {
			gdipSum += d
			gdipN++
		}
	}
	if !ok {
		rep.AddRow(fmt.Sprint(k), fmt.Sprint(topo.FatTreeHosts(k)),
			fmt.Sprintf("%.1f", load), v.Name(), "n/a", "n/a",
			"n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
		return
	}
	done := pool.FG.Done + pool.BG.Done
	toPer1k := float64(pool.FG.Timeouts+pool.BG.Timeouts) / float64(flows) * 1000
	gdip := "n/a"
	if gdipN > 0 {
		gdip = fmt.Sprintf("%.2f", gdipSum/float64(gdipN))
	}
	q := func(h *stats.Hist, p float64) string {
		if h.Count() == 0 {
			return "n/a"
		}
		return stats.FmtDur(float64(h.Quantile(p)) / 1e9)
	}
	rep.AddRow(
		fmt.Sprint(k),
		fmt.Sprint(topo.FatTreeHosts(k)),
		fmt.Sprintf("%.1f", load),
		v.Name(),
		fmt.Sprint(flows),
		fmt.Sprint(done),
		q(pool.FG.FCT, 0.5),
		q(pool.FG.FCT, 0.99),
		q(pool.FG.FCT, 0.999),
		q(pool.BG.FCT, 0.99),
		fmt.Sprintf("%.2f", toPer1k),
		fmt.Sprint(peak),
		gdip,
		fmt.Sprintf("%.0fkB", float64(pool.Queue.Quantile(0.99))/1e3),
	)
}

// goodputDip returns min/mean of per-epoch completed bytes over the
// busy window (first to last epoch with completions). A dip near 1 is
// steady goodput; near 0 means completion stalls (timeout craters).
func goodputDip(e *stats.Epochs) (float64, bool) {
	lo, hi := -1, -1
	for i, d := range e.Done {
		if d > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 || hi == lo {
		return 0, false
	}
	minB := e.Bytes[lo]
	var sum int64
	for i := lo; i <= hi; i++ {
		if e.Bytes[i] < minB {
			minB = e.Bytes[i]
		}
		sum += e.Bytes[i]
	}
	mean := float64(sum) / float64(hi-lo+1)
	if mean == 0 {
		return 0, false
	}
	return float64(minB) / mean, true
}
