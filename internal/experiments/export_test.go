package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := &Report{ID: "x", Title: "demo", Header: []string{"variant", "fct"}}
	r.AddRow("dctcp", "1.2ms")
	r.AddRow(`odd,cell"q`, "3.4ms")
	r.Note("a note")
	return r
}

func TestCSVExport(t *testing.T) {
	out := sampleReport().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "variant,fct" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "dctcp,1.2ms" {
		t.Fatalf("row = %q", lines[1])
	}
	// Quoting of commas and embedded quotes.
	if lines[2] != `"odd,cell""q",3.4ms` {
		t.Fatalf("quoted row = %q", lines[2])
	}
}

func TestJSONExport(t *testing.T) {
	out, err := sampleReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded.ID != "x" || len(decoded.Rows) != 2 || decoded.Notes[0] != "a note" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Rows[1][0] != `odd,cell"q` {
		t.Fatalf("row round-trip = %q", decoded.Rows[1][0])
	}
}
