package experiments

import (
	"os"
	"testing"
)

// goldenScale is the scale the scheduler-swap goldens were captured at.
// It matches TestGridReportsDeterministicAcrossProcs so the two suites
// exercise the same grids.
func goldenScale() Scale { return Scale{BgFlows: 30, Seeds: 2, AppPoints: 2} }

var goldenIDs = []string{"fig5", "chaos-recovery", "failure-recovery", "ablation-buffer", "scale-sweep"}

// TestSchedulerSwapReportsByteIdentical pins fig5 and chaos-recovery
// reports to goldens captured with the seed flat-heap scheduler, at both
// serial and 8-way execution. Any scheduler change that reorders
// same-instant events — a wheel placement bug, an unstable cascade, a
// fused link event firing out of turn — shows up here as a byte diff.
//
// Regenerate (only when an intentional model change lands) with:
//
//	GEN_GOLDENS=1 go test -run TestSchedulerSwapReportsByteIdentical ./internal/experiments/
func TestSchedulerSwapReportsByteIdentical(t *testing.T) {
	if os.Getenv("GEN_GOLDENS") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for _, id := range goldenIDs {
			out := renderAt(t, id, goldenScale(), 1)
			if err := os.WriteFile("testdata/"+id+".golden", []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("goldens regenerated")
		return
	}
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range goldenIDs {
		want, err := os.ReadFile("testdata/" + id + ".golden")
		if err != nil {
			t.Fatalf("missing golden (run with GEN_GOLDENS=1 to create): %v", err)
		}
		for _, procs := range []int{1, 8} {
			got := renderAt(t, id, goldenScale(), procs)
			if got != string(want) {
				t.Errorf("%s at procs=%d diverged from the seed-scheduler golden\n--- got ---\n%s\n--- want ---\n%s",
					id, procs, got, want)
			}
		}
	}
}
