package experiments

// Entry is one runnable experiment.
type Entry struct {
	ID   string
	Desc string
	Run  func(Scale) *Report
}

// All lists every reproduced table and figure, in paper order.
var All = []Entry{
	{"fig1", "CDF of RTT and calculated RTO (motivation)", Fig1},
	{"fig2", "fixed 160us RTO vs baseline (motivation)", Fig2},
	{"fig5", "FCT for TCP and DCTCP with loss-recovery variants", Fig5},
	{"fig6", "FCT for HPCC and DCQCN variants", Fig6},
	{"fig7", "timeouts, PAUSE frames and paused time", Fig7},
	{"fig8", "FCT vs color-aware dropping threshold", Fig8},
	{"fig9", "FCT vs network load", Fig9},
	{"fig10", "important-packet fraction vs fg share", Fig10},
	{"fig11", "important fraction and queue length vs threshold", Fig11},
	{"fig12", "Redis SET burst: response time vs flows", Fig12},
	{"fig13", "mixed traffic: fg tail and bg goodput", Fig13},
	{"fig14", "testbed incast microbenchmark", Fig14},
	{"fig14c", "incast FCT distribution at 100 flows", Fig14CDF},
	{"fig15", "99.9% fg FCT across workloads and loads", Fig15},
	{"fig16", "segment delivery time CDF", Fig16},
	{"fig17", "adaptive important ACK-clocking ablation", Fig17},
	{"fig18", "FCT vs incast degree", Fig18},
	{"table1", "important packet loss rate", Table1},
	{"dumbbell", "mixed traffic with PFC on a dumbbell (§7.4)", Dumbbell},
	{"ablation-n", "periodic marking interval N (§5.2 footnote)", AblationPeriodN},
	{"ablation-alpha", "dynamic threshold alpha (§4.2)", AblationAlpha},
	{"ablation-buffer", "buffer policy × buffer size (pluggable MMU)", AblationBuffer},
	{"chaos-recovery", "FCT degradation under link flaps (graceful degradation)", ChaosRecovery},
	{"failure-recovery", "switch failure + pause storm: reroute, watchdog, abort", FailureRecovery},
	{"scale-sweep", "bounded-memory fat-tree scale: hosts × load × TLT (streaming stats)", ScaleSweep},
}

// ByID returns the entry with the given ID.
func ByID(id string) (Entry, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
