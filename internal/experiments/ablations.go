package experiments

import (
	"fmt"

	"tlt/internal/stats"
)

// AblationPeriodN probes the footnote of §5.2: rate-based TLT marks an
// important packet every N data packets as an aid for timely loss
// detection on long messages; the paper reports tail FCT differs by less
// than 3% between N=96 and N=384.
func AblationPeriodN(scale Scale) *Report {
	rep := &Report{
		ID:     "ablation-n",
		Title:  "Rate-based periodic marking interval N (DCQCN+SACK+TLT)",
		Header: []string{"N", "fg p99.9 FCT", "fg p99 FCT", "bg avg FCT", "imp frac", "timeouts/1k"},
	}
	ns := []int{48, 96, 192, 384}
	if scale.AppPoints > 0 && scale.AppPoints < len(ns) {
		ns = ns[:scale.AppPoints]
	}
	sw := newSweep(rep)
	for _, n := range ns {
		v := Variant{Transport: "dcqcn-sack", TLT: true, PeriodN: n}
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05)}, scale.Seeds,
			func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					return []float64{r.FgP(0.999), r.FgP(0.99), r.BgMean(),
						r.Rec.ImportantFraction(), r.TimeoutsPer1k()}
				})
				rep.AddRow(fmt.Sprintf("%d", n),
					meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)), meanStdDur(col(ms, 2)),
					fmt.Sprintf("%.2f%%", stats.Mean(col(ms, 3))*100),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 4))))
			})
	}
	sw.exec()
	rep.Note("paper §5.2 footnote: tail FCT differs <3%% between N=96 and N=384")
	return rep
}

// AblationAlpha probes §4.2's buffer-model parameter: the dynamic
// threshold alpha trades buffer utilization (large alpha) against
// short-term fairness between ports (small alpha). The paper uses
// alpha=1 to balance.
func AblationAlpha(scale Scale) *Report {
	rep := &Report{
		ID:     "ablation-alpha",
		Title:  "Dynamic-threshold alpha (DCTCP+TLT, no PFC)",
		Header: []string{"alpha", "fg p99.9 FCT", "bg avg FCT", "imp loss rate", "max queue"},
	}
	// Small alphas cap queues *below* the color threshold, breaking the
	// headroom reservation TLT depends on — the interesting regime.
	alphas := []float64{0.05, 0.1, 0.25, 1, 4}
	if scale.AppPoints > 0 && scale.AppPoints < len(alphas) {
		alphas = alphas[:scale.AppPoints]
	}
	sw := newSweep(rep)
	for _, a := range alphas {
		v := Variant{Transport: "dctcp", TLT: true}
		rc := RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05), AlphaOverride: a}
		sw.add(rc, scale.Seeds, func(rs []*Result) {
			var maxQ float64
			ms := metricsOf(rs, func(r *Result) []float64 {
				if q := float64(r.MaxQ); q > maxQ {
					maxQ = q
				}
				return []float64{r.FgP(0.999), r.BgMean(), r.ImpLossRate()}
			})
			rep.AddRow(fmt.Sprintf("%.2f", a),
				meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
				fmt.Sprintf("%.2e", stats.Mean(col(ms, 2))),
				fmt.Sprintf("%.0fkB", maxQ/1000))
		})
	}
	sw.exec()
	rep.Note("paper §4.2: alpha=1 balances buffer utilization against per-port fairness")
	return rep
}

// AblationBuffer compares the pluggable MMU strategies (§4.2's buffer
// model and its competitors) across shared-buffer sizes: the built-in
// Choudhury–Hahne + color default, queueing-delay-driven BShare, the
// tiny-buffer regime (effective buffer 10× smaller than physical), and
// C–H paired with per-hop backpressure flow control (BFC) instead of
// drops. Shrinking the buffer stresses the same protection guarantee
// the alpha ablation does from the parameter side: TLT must keep green
// losses near zero even when the headroom the color threshold reserves
// is a large fraction of the whole pool.
func AblationBuffer(scale Scale) *Report {
	rep := &Report{
		ID:     "ablation-buffer",
		Title:  "Buffer policy × shared-buffer size (DCTCP+TLT)",
		Header: []string{"policy", "buffer", "fg p99.9 FCT", "bg avg FCT", "imp loss rate", "timeouts/1k", "max queue"},
	}
	bufs := []int64{4_500_000, 1_500_000, 450_000}
	if scale.AppPoints > 0 && scale.AppPoints < len(bufs) {
		bufs = bufs[:scale.AppPoints]
	}
	pols := []struct{ label, mmu, fc string }{
		{"ch", "", ""},
		{"bshare", "bshare", ""},
		{"tiny", "tiny", ""},
		{"ch+bfc", "", "bfc"},
	}
	sw := newSweep(rep)
	for _, p := range pols {
		for _, b := range bufs {
			p, b := p, b
			v := Variant{Transport: "dctcp", TLT: true, MMU: p.mmu, FC: p.fc}
			rc := RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05), BufferOverride: b}
			sw.add(rc, scale.Seeds, func(rs []*Result) {
				var maxQ float64
				ms := metricsOf(rs, func(r *Result) []float64 {
					if q := float64(r.MaxQ); q > maxQ {
						maxQ = q
					}
					return []float64{r.FgP(0.999), r.BgMean(), r.ImpLossRate(), r.TimeoutsPer1k()}
				})
				rep.AddRow(p.label, fmt.Sprintf("%dkB", b/1000),
					meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
					fmt.Sprintf("%.2e", stats.Mean(col(ms, 2))),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 3))),
					fmt.Sprintf("%.0fkB", maxQ/1000))
			})
		}
	}
	sw.exec()
	rep.Note("tiny: admission capacity is buffer/10 (SwitchConfig.MMUDiv); bfc pauses only the ingress ports feeding the hot queue")
	return rep
}
