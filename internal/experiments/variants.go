package experiments

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/transport"
	"tlt/internal/transport/dcqcn"
	"tlt/internal/transport/tcp"
)

// Variant identifies one transport configuration from the paper's
// comparison matrix.
type Variant struct {
	Transport string // tcp | dctcp | dcqcn | dcqcn-sack | dcqcn-irn | hpcc

	RTOMin   sim.Time // TCP family: minimum RTO (0 → 4 ms baseline)
	FixedRTO sim.Time // TCP family: static RTO (Fig. 2)
	TLP      bool

	TLT       bool
	ClockMode core.ClockMode
	PeriodN   int // rate-based TLT periodic marking (0 → 96)

	PFC bool

	// ColorThreshold overrides the TLT color-aware dropping threshold
	// (0 → 400 kB for the TCP family, 200 kB for RoCE).
	ColorThreshold int64

	// MaxRetries caps consecutive timeouts before the sender aborts the
	// flow (0 = retry forever, the historical behavior). MaxBackoffShift
	// caps exponential RTO backoff; 0 keeps the transport's default
	// (TCP: 12, RoCE: no backoff). See transport.RTOConfig.
	MaxRetries      int
	MaxBackoffShift uint

	// MMU selects the switch buffer policy by registered name ("" → the
	// built-in Choudhury–Hahne + color default). FC selects flow control
	// ("" keeps the legacy PFC-flag meaning). See fabric.SwitchConfig.
	MMU string
	FC  string
}

// IsRoCE reports whether the variant uses the RoCE fabric (1 µs links).
func (v Variant) IsRoCE() bool {
	switch v.Transport {
	case "dcqcn", "dcqcn-sack", "dcqcn-irn", "hpcc":
		return true
	}
	return false
}

// Name renders a compact label such as "dctcp+tlt+pfc".
func (v Variant) Name() string {
	n := v.Transport
	switch {
	case v.FixedRTO > 0:
		n += fmt.Sprintf("+rto%v", v.FixedRTO)
	case v.RTOMin > 0 && v.RTOMin != 4*sim.Millisecond:
		n += fmt.Sprintf("+rtomin%v", v.RTOMin)
	}
	if v.TLP {
		n += "+tlp"
	}
	if v.TLT {
		n += "+tlt"
		switch v.ClockMode {
		case core.ClockOneByte:
			n += "(1B)"
		case core.ClockFullMTU:
			n += "(MTU)"
		}
	}
	if v.PFC {
		n += "+pfc"
	}
	if v.MaxRetries > 0 {
		n += fmt.Sprintf("+retry%d", v.MaxRetries)
	}
	if v.MMU != "" {
		n += "+mmu=" + v.MMU
	}
	if v.FC != "" {
		n += "+fc=" + v.FC
	}
	return n
}

// colorThreshold returns the effective TLT threshold.
func (v Variant) colorThreshold() int64 {
	if !v.TLT {
		return 0
	}
	if v.ColorThreshold > 0 {
		return v.ColorThreshold
	}
	if v.IsRoCE() {
		return 200_000
	}
	return 400_000
}

// linkDelay returns the per-link latency of the fabric for this family.
func (v Variant) linkDelay() sim.Time {
	if v.IsRoCE() {
		return sim.Microsecond
	}
	return 10 * sim.Microsecond
}

// switchConfig builds the fabric switch configuration (Ports and
// BufferBytes are filled by the topology builder).
func (v Variant) switchConfig() fabric.SwitchConfig {
	sc := fabric.SwitchConfig{
		BufferBytes:    4_500_000,
		Alpha:          1,
		ColorThreshold: v.colorThreshold(),
	}
	switch v.Transport {
	case "dctcp":
		sc.ECN = fabric.ECNStep
		sc.KEcn = 200_000
	case "dcqcn", "dcqcn-sack", "dcqcn-irn":
		// RED marking tuned so DCQCN's fixed-point queue sits well
		// below the 200 kB color threshold (§4.2: K must exceed the
		// steady-state queue, here Kmax).
		sc.ECN = fabric.ECNRed
		sc.KMin = 50_000
		sc.KMax = 200_000
		sc.PMax = 0.2
	case "hpcc":
		sc.INT = true
	}
	if v.PFC {
		sc.PFC = true
	}
	sc.MMU = v.MMU
	sc.FC = v.FC
	if v.PFC || v.FC == "pfc" {
		// Static per-ingress XOFF sized so all ports can hit XOFF and
		// in-flight headroom still fits the shared buffer.
		sc.XOff = sc.BufferBytes / (2 * 12)
		sc.XOn = sc.XOff - 2*int64(transport.MSS+48)
	}
	return sc
}

func (v Variant) tcpConfig() tcp.Config {
	var cfg tcp.Config
	if v.Transport == "dctcp" {
		cfg = tcp.DCTCPConfig()
	} else {
		cfg = tcp.DefaultConfig()
	}
	if v.RTOMin > 0 {
		cfg.RTO.Min = v.RTOMin
	}
	if v.FixedRTO > 0 {
		cfg.RTO.Fixed = v.FixedRTO
	}
	cfg.TLP = v.TLP
	cfg.RTO.MaxRetries = v.MaxRetries
	cfg.RTO.MaxBackoffShift = v.MaxBackoffShift
	cfg.TLT = core.Config{Enabled: v.TLT, Clock: v.ClockMode}
	return cfg
}

func (v Variant) dcqcnConfig() dcqcn.Config {
	var mode dcqcn.Mode
	switch v.Transport {
	case "dcqcn":
		mode = dcqcn.GBN
	case "dcqcn-sack":
		mode = dcqcn.SACK
	case "dcqcn-irn":
		mode = dcqcn.IRN
	}
	cfg := dcqcn.DefaultConfig(mode)
	n := v.PeriodN
	if n == 0 {
		n = 96
	}
	cfg.RTO.MaxRetries = v.MaxRetries
	cfg.RTO.MaxBackoffShift = v.MaxBackoffShift
	cfg.TLT = core.Config{Enabled: v.TLT, Clock: v.ClockMode, PeriodN: n}
	return cfg
}
