package experiments

import (
	"fmt"

	"tlt/internal/chaos"
	"tlt/internal/sim"
	"tlt/internal/stats"
)

// ChaosRecovery measures FCT degradation under periodic link flaps: a
// random link goes down for 50 µs at increasing frequency, losing every
// packet in flight on it. TLT's important-packet retransmission path
// should degrade gracefully (flows fall back to RTO recovery only when
// the flap eats the important packet itself), while plain DCTCP leans on
// timeouts for every flap-induced tail loss (§5).
func ChaosRecovery(scale Scale) *Report {
	rep := &Report{
		ID:     "chaos-recovery",
		Title:  "FCT degradation under link flaps (DCTCP vs DCTCP+TLT, 50us down)",
		Header: []string{"flap every", "variant", "fg p99 FCT", "bg avg FCT", "timeouts/1k", "flaps", "down-drops", "incomplete"},
	}
	sw := newSweep(rep)
	periods := []sim.Time{0, 10 * sim.Millisecond, 2 * sim.Millisecond, 500 * sim.Microsecond}
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
	}
	for _, period := range periods {
		var plan *chaos.Plan
		label := "none"
		if period > 0 {
			label = period.String()
			plan = &chaos.Plan{
				Seed: 1,
				Flaps: []chaos.LinkFlap{{
					Link:  chaos.RandomTarget,
					At:    200 * sim.Microsecond,
					Down:  50 * sim.Microsecond,
					Every: period,
				}},
			}
		}
		for _, v := range variants {
			rc := RunConfig{
				Variant: v,
				Traffic: trafficFor(scale, 0.4, 0.05),
				// The plan is shared by concurrent cells; that is safe
				// because Plan.Apply only reads it.
				Faults: plan,
			}
			sw.add(rc, scale.Seeds, func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					return []float64{
						r.FgP(0.99), r.BgMean(), r.TimeoutsPer1k(),
						float64(r.Faults.LinkFlaps), float64(r.Faults.DownDrops),
						float64(r.Incomplete),
					}
				})
				rep.AddRow(label, v.Name(),
					meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 2))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 3))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 4))),
					fmt.Sprintf("%.0f", stats.Mean(col(ms, 5))))
			})
		}
	}
	sw.exec()
	rep.Note("flap-induced wire loss forces loss recovery: TLT keeps retransmission " +
		"ACK-clocked so FCT degrades gracefully, while the baseline pays an RTO per flap-hit tail")
	return rep
}
