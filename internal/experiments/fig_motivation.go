package experiments

import (
	"fmt"

	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/workload"
)

func trafficFor(scale Scale, load, fgShare float64) workload.TrafficConfig {
	t := workload.DefaultTraffic(load, scale.BgFlows)
	t.FgShare = fgShare
	return t
}

// Fig1 reproduces Figure 1: the distribution of measured RTTs and the
// resulting estimated RTO for DCTCP with RTOmin = 200 µs, showing that
// bursty traffic inflates the estimator far beyond the RTT.
func Fig1(scale Scale) *Report {
	rep := &Report{
		ID:     "fig1",
		Title:  "CDF of RTT and calculated RTO (DCTCP, RTOmin=200us, load 40%, 5% fg)",
		Header: []string{"class", "metric", "p50", "p90", "p99", ">1.1ms"},
	}
	sw := newSweep(rep)
	rc := RunConfig{
		Variant:    Variant{Transport: "dctcp", RTOMin: 200 * sim.Microsecond},
		Traffic:    trafficFor(scale, 0.4, 0.05),
		CollectRTT: true,
		Seed:       1,
	}
	sw.cell(rc, func(res *Result) {
		add := func(class, metric string, r *stats.Reservoir) {
			xs := r.Samples()
			over := 0
			for _, x := range xs {
				if x > 1.1e-3 {
					over++
				}
			}
			frac := 0.0
			if len(xs) > 0 {
				frac = float64(over) / float64(len(xs))
			}
			sorted := stats.Sorted(xs)
			rep.AddRow(class, metric,
				stats.FmtDur(stats.PercentileSorted(sorted, 0.5)),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.9)),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.99)),
				fmt.Sprintf("%.1f%%", frac*100))
		}
		add("background", "RTT", res.Rec.RTTSamplesBG)
		add("background", "RTO", res.Rec.RTOSamplesBG)
		add("foreground", "RTT", res.Rec.RTTSamplesFG)
		add("foreground", "RTO", res.Rec.RTOSamplesFG)
	})
	sw.exec()
	rep.Note("paper: >10%% of foreground flows estimate RTO above 1.1 ms while p90 RTT is ~0.48 ms")
	return rep
}

// Fig2 reproduces Figure 2: a fixed 160 µs RTO improves foreground tail
// FCT but wrecks background flows through spurious timeouts.
func Fig2(scale Scale) *Report {
	rep := &Report{
		ID:     "fig2",
		Title:  "FCT with fixed 160us RTO vs 4ms RTOmin baseline (DCTCP, 15% fg)",
		Header: []string{"variant", "fg p99 FCT", "bg avg FCT", "timeouts/1k"},
	}
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", FixedRTO: 160 * sim.Microsecond},
	}
	type row struct{ fg, bg, to []float64 }
	rows := make([]row, len(variants))
	sw := newSweep(rep)
	for i, v := range variants {
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.15)}, scale.Seeds,
			func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					return []float64{r.FgP(0.99), r.BgMean(), r.TimeoutsPer1k()}
				})
				rows[i] = row{col(ms, 0), col(ms, 1), col(ms, 2)}
				rep.AddRow(v.Name(), meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 2))))
			})
	}
	sw.exec()
	base, fixed := rows[0], rows[1]
	if len(base.fg) > 0 && len(fixed.fg) > 0 {
		rep.Note("fg p99 change: %+.0f%%; bg avg change: %+.0f%%; timeout ratio: %.1fx (paper: -41%%, +113%%, 51x)",
			(stats.Mean(fixed.fg)/stats.Mean(base.fg)-1)*100,
			(stats.Mean(fixed.bg)/stats.Mean(base.bg)-1)*100,
			ratioOr(stats.Mean(fixed.to), stats.Mean(base.to)))
	}
	return rep
}

func ratioOr(a, b float64) float64 {
	if b == 0 {
		return a
	}
	return a / b
}
