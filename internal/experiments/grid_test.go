package experiments

import (
	"fmt"
	"strings"
	"testing"

	"tlt/internal/chaos"
	"tlt/internal/sim"
	"tlt/internal/stats"
)

// withProcs swaps the shared worker limit for the duration of a test.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := Procs()
	SetProcs(n)
	t.Cleanup(func() { SetProcs(old) })
}

func TestRunGridPreservesOrderAndRecoversPanics(t *testing.T) {
	cells := make([]RunConfig, 16)
	for i := range cells {
		cells[i] = RunConfig{
			Seed:  int64(i),
			Label: fmt.Sprintf("cell%d", i),
			Custom: func(rc RunConfig) *Result {
				if rc.Seed == 7 {
					panic("boom")
				}
				return &Result{Rec: stats.NewRecorder(), App: rc.Seed, EventsRun: 1}
			},
		}
	}
	rs := RunGrid(cells, GridOpts{Procs: 8})
	if len(rs) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(rs), len(cells))
	}
	for i, r := range rs {
		if i == 7 {
			if !r.Panicked {
				t.Fatal("panicking cell not marked Panicked")
			}
			note := strings.Join(r.Notes, "\n")
			if !strings.Contains(note, "cell7") || !strings.Contains(note, "boom") {
				t.Fatalf("panic note lacks replay info:\n%s", note)
			}
			continue
		}
		if r.Panicked {
			t.Fatalf("cell %d spuriously panicked: %v", i, r.Notes)
		}
		if got := r.App.(int64); got != int64(i) {
			t.Fatalf("results out of order: slot %d holds seed %d", i, got)
		}
	}
}

// RunGrid must apply the session harness (the -chaos / -audit flags) to
// cells that don't carry their own plan, and leave explicit plans alone.
func TestRunGridInheritsHarness(t *testing.T) {
	plan := &chaos.Plan{
		Seed: 7,
		Flaps: []chaos.LinkFlap{{
			Link: chaos.RandomTarget, At: 100 * sim.Microsecond,
			Down: 30 * sim.Microsecond, Every: sim.Millisecond, Count: 4,
		}},
	}
	SetHarness(plan, true)
	t.Cleanup(func() { SetHarness(nil, false) })

	rc := RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    1,
	}
	rs := RunGrid([]RunConfig{rc}, GridOpts{})
	if rs[0].Faults.LinkFlaps == 0 {
		t.Fatal("harness fault plan not applied to plan-less cell")
	}
	if rs[0].AuditEvents == 0 {
		t.Fatal("harness audit flag not applied")
	}

	// An explicit (empty) plan must override the session plan.
	rc.Faults = &chaos.Plan{}
	rs = RunGrid([]RunConfig{rc}, GridOpts{})
	if rs[0].Faults.LinkFlaps != 0 {
		t.Fatal("explicit empty plan overridden by harness plan")
	}
}

// renderAt renders one experiment's report with the shared limit set to
// procs. Only the table/notes text is compared; timing never leaks in.
func renderAt(t *testing.T, id string, scale Scale, procs int) string {
	t.Helper()
	withProcs(t, procs)
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	rep := RunEntry(e, scale)
	return rep.String()
}

// The regression the whole executor design hangs on: a report produced
// with 8 workers must be byte-identical to the serial one, and parallel
// runs must be identical to each other.
func TestGridReportsDeterministicAcrossProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	scale := Scale{BgFlows: 30, Seeds: 2, AppPoints: 2}
	for _, id := range []string{"fig5", "chaos-recovery", "failure-recovery", "ablation-buffer"} {
		serial := renderAt(t, id, scale, 1)
		par1 := renderAt(t, id, scale, 8)
		par2 := renderAt(t, id, scale, 8)
		if serial != par1 {
			t.Fatalf("%s: parallel report differs from serial\n--- serial ---\n%s\n--- procs=8 ---\n%s", id, serial, par1)
		}
		if par1 != par2 {
			t.Fatalf("%s: two parallel runs differ\n--- run1 ---\n%s\n--- run2 ---\n%s", id, par1, par2)
		}
	}
}

// sweep folds must replay in registration order even when cells finish
// out of order, so row order is a pure function of registration.
func TestSweepFoldOrder(t *testing.T) {
	rep := &Report{ID: "t", Header: []string{"i"}}
	sw := newSweep(rep)
	for i := 0; i < 12; i++ {
		sw.cell(RunConfig{
			Seed: int64(i),
			Custom: func(rc RunConfig) *Result {
				return &Result{Rec: stats.NewRecorder(), EventsRun: 10}
			},
		}, func(res *Result) {
			rep.AddRow(fmt.Sprintf("%d", i))
		})
	}
	withProcs(t, 8)
	sw.exec()
	for i, row := range rep.Rows {
		if row[0] != fmt.Sprintf("%d", i) {
			t.Fatalf("row %d = %q; fold order not registration order", i, row[0])
		}
	}
	cells, events := rep.GridStats()
	if cells != 12 || events != 120 {
		t.Fatalf("grid stats = %d cells, %d events; want 12, 120", cells, events)
	}
}
