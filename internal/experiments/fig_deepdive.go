package experiments

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/stats"
	"tlt/internal/workload"
)

// Fig8 reproduces Figure 8: foreground tail and background average FCT as
// the color-aware dropping threshold varies, without (a) and with (b) PFC.
func Fig8(scale Scale) *Report {
	rep := &Report{
		ID:     "fig8",
		Title:  "FCT vs color-aware dropping threshold (DCTCP+TLT)",
		Header: []string{"pfc", "K", "fg p99.9 FCT", "bg avg FCT", "imp loss rate", "pauses/1k"},
	}
	thresholds := []int64{200_000, 300_000, 400_000, 500_000, 700_000, 900_000, 1_100_000}
	if scale.AppPoints > 0 && scale.AppPoints < len(thresholds) {
		thresholds = thresholds[:scale.AppPoints]
	}
	sw := newSweep(rep)
	for _, pfc := range []bool{false, true} {
		for _, k := range thresholds {
			v := Variant{Transport: "dctcp", TLT: true, PFC: pfc, ColorThreshold: k}
			sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05)}, scale.Seeds,
				func(rs []*Result) {
					ms := metricsOf(rs, func(r *Result) []float64 {
						return []float64{r.FgP(0.999), r.BgMean(), r.ImpLossRate(), r.PausesPer1k()}
					})
					rep.AddRow(fmt.Sprintf("%v", pfc), fmt.Sprintf("%dkB", k/1000),
						meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
						fmt.Sprintf("%.2e", stats.Mean(col(ms, 2))),
						fmt.Sprintf("%.1f", stats.Mean(col(ms, 3))))
				})
		}
	}
	sw.exec()
	rep.Note("paper: larger K lowers bg FCT but raises fg tail; beyond ~700kB important drops appear (lossy)")
	return rep
}

// Fig9 reproduces Figure 9: sensitivity to network load for HPCC+PFC and
// DCTCP+PFC, with and without TLT.
func Fig9(scale Scale) *Report {
	rep := &Report{
		ID:     "fig9",
		Title:  "FCT vs load (PFC enabled)",
		Header: []string{"variant", "load", "fg p99 FCT", "bg avg FCT"},
	}
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	if scale.AppPoints > 0 && scale.AppPoints < len(loads) {
		loads = loads[:scale.AppPoints]
	}
	variants := []Variant{
		{Transport: "hpcc", PFC: true},
		{Transport: "hpcc", TLT: true, PFC: true},
		{Transport: "dctcp", PFC: true},
		{Transport: "dctcp", TLT: true, PFC: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		for _, load := range loads {
			sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, load, 0.05)}, scale.Seeds,
				func(rs []*Result) {
					ms := metricsOf(rs, func(r *Result) []float64 { return []float64{r.FgP(0.99), r.BgMean()} })
					rep.AddRow(v.Name(), fmt.Sprintf("%.0f%%", load*100), meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)))
				})
		}
	}
	sw.exec()
	rep.Note("paper: TLT helps HPCC at all loads; DCTCP+TLT helps below ~50%% load, hurts bg beyond")
	return rep
}

// Fig10 reproduces Figure 10: the fraction of traffic volume marked
// important as the foreground share grows.
func Fig10(scale Scale) *Report {
	rep := &Report{
		ID:     "fig10",
		Title:  "Fraction of important packets vs foreground share (DCTCP+TLT, K=400kB)",
		Header: []string{"fg share", "important fraction (bytes)"},
	}
	shares := []float64{0, 0.05, 0.10, 0.15, 0.20}
	if scale.AppPoints > 0 && scale.AppPoints < len(shares) {
		shares = shares[:scale.AppPoints]
	}
	sw := newSweep(rep)
	for _, share := range shares {
		v := Variant{Transport: "dctcp", TLT: true}
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, share)}, scale.Seeds,
			func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 { return []float64{r.Rec.ImportantFraction()} })
				rep.AddRow(fmt.Sprintf("%.0f%%", share*100), fmt.Sprintf("%.2f%%", stats.Mean(col(ms, 0))*100))
			})
	}
	sw.exec()
	rep.Note("paper: 3.29%% by volume without foreground traffic, growing with fg share")
	return rep
}

// Fig11 reproduces Figure 11: (a) important fraction vs the color
// threshold, (b) queue sizes with and without TLT.
func Fig11(scale Scale) *Report {
	rep := &Report{
		ID:     "fig11",
		Title:  "Important fraction and queue length vs color threshold (DCTCP, load 40%, 5% fg)",
		Header: []string{"variant", "K", "imp frac", "max queue", "max red queue", "median maxQ"},
	}
	thresholds := []int64{200_000, 400_000, 600_000, 800_000, 1_000_000}
	if scale.AppPoints > 0 && scale.AppPoints < len(thresholds) {
		thresholds = thresholds[:scale.AppPoints]
	}
	sw := newSweep(rep)
	run := func(v Variant, k string) {
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05), SampleQueues: true}, scale.Seeds,
			func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					return []float64{r.Rec.ImportantFraction(), float64(r.MaxQ), float64(r.MaxRedQ), median(r.QSamples)}
				})
				rep.AddRow(v.Name(), k,
					fmt.Sprintf("%.2f%%", stats.Mean(col(ms, 0))*100),
					fmt.Sprintf("%.0fkB", stats.Mean(col(ms, 1))/1000),
					fmt.Sprintf("%.0fkB", stats.Mean(col(ms, 2))/1000),
					fmt.Sprintf("%.0fkB", stats.Mean(col(ms, 3))/1000))
			})
	}
	run(Variant{Transport: "dctcp"}, "-")
	for _, k := range thresholds {
		run(Variant{Transport: "dctcp", TLT: true, ColorThreshold: k}, fmt.Sprintf("%dkB", k/1000))
	}
	sw.exec()
	rep.Note("paper: vanilla DCTCP max queue reaches 2.18MB under bursts; TLT keeps unimportant queue under K and total 23%% lower")
	return rep
}

// Fig16 reproduces Figure 16: the CDF of segment delivery time (first
// transmission to acknowledgment) for DCTCP with and without TLT.
func Fig16(scale Scale) *Report {
	rep := &Report{
		ID:     "fig16",
		Title:  "Segment delivery time (DCTCP, no PFC)",
		Header: []string{"variant", "p50", "p90", "p99", "p99.9"},
	}
	sw := newSweep(rep)
	for _, v := range []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLT: true},
	} {
		rc := RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05), CollectDelivery: true, Seed: 1}
		sw.cell(rc, func(res *Result) {
			sorted := stats.Sorted(res.Rec.DeliverySamples.Samples())
			rep.AddRow(v.Name(),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.5)),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.9)),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.99)),
				stats.FmtDur(stats.PercentileSorted(sorted, 0.999)))
		})
	}
	sw.exec()
	rep.Note("paper: TLT reduces p99 delivery by 22.8%% and p99.9 by 57.6%%")
	return rep
}

// Fig17 reproduces Figure 17: the adaptive important ACK-clocking
// ablation against always-1-byte and always-full-MTU payloads.
func Fig17(scale Scale) *Report {
	rep := &Report{
		ID:     "fig17",
		Title:  "Important ACK-clocking payload ablation (DCTCP+TLT+PFC)",
		Header: []string{"clock mode", "fg p99.9 FCT", "fg p99 FCT", "clock bytes", "pauses/1k"},
	}
	modes := []struct {
		name string
		m    core.ClockMode
	}{
		{"adaptive", core.ClockAdaptive},
		{"1-byte", core.ClockOneByte},
		{"full-MTU", core.ClockFullMTU},
	}
	sw := newSweep(rep)
	for _, md := range modes {
		v := Variant{Transport: "dctcp", TLT: true, PFC: true, ClockMode: md.m}
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05)}, scale.Seeds,
			func(rs []*Result) {
				var clockBytes int64
				ms := metricsOf(rs, func(r *Result) []float64 {
					for _, fr := range r.Rec.Flows {
						clockBytes += fr.ClockBytes
					}
					return []float64{r.FgP(0.999), r.FgP(0.99), r.PausesPer1k()}
				})
				rep.AddRow(md.name, meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)),
					fmt.Sprintf("%d", clockBytes/int64(scale.Seeds)),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 2))))
			})
	}
	sw.exec()
	rep.Note("paper: adaptive recovers ~as fast as full-MTU with 6.9x less clock bandwidth; 1-byte recovery is ~55x slower at p99")
	return rep
}

// Fig18 reproduces Figure 18: FCT as the incast degree (flows per
// foreground sender) varies.
func Fig18(scale Scale) *Report {
	rep := &Report{
		ID:     "fig18",
		Title:  "FCT vs incast degree (flows per sender)",
		Header: []string{"variant", "flows/sender", "fg p99 FCT", "bg avg FCT"},
	}
	degrees := []int{2, 4, 6, 8, 10}
	if scale.AppPoints > 0 && scale.AppPoints < len(degrees) {
		degrees = degrees[:scale.AppPoints]
	}
	variants := []Variant{
		{Transport: "tcp"},
		{Transport: "tcp", TLT: true},
		{Transport: "hpcc", PFC: true},
		{Transport: "hpcc", TLT: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		for _, d := range degrees {
			tr := trafficFor(scale, 0.4, 0.05)
			tr.FlowsPerSender = d
			sw.add(RunConfig{Variant: v, Traffic: tr}, scale.Seeds,
				func(rs []*Result) {
					ms := metricsOf(rs, func(r *Result) []float64 { return []float64{r.FgP(0.99), r.BgMean()} })
					rep.AddRow(v.Name(), fmt.Sprintf("%d", d), meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)))
				})
		}
	}
	sw.exec()
	rep.Note("paper: TLT's advantage grows with incast degree (up to 78.9%% for HPCC, 67%% for TCP)")
	return rep
}

// Table1 reproduces Table 1: the loss rate of important packets across
// color thresholds and foreground shares.
func Table1(scale Scale) *Report {
	rep := &Report{
		ID:     "table1",
		Title:  "Important packet loss rate vs threshold and fg share (no PFC)",
		Header: []string{"variant", "fg share", "K=400kB", "K=500kB", "K=600kB"},
	}
	// Each table row spans several cells (one per K). The row slice is
	// built up across that row's folds — safe because folds replay
	// serially in registration order — and emitted by the last fold.
	ks := []int64{400_000, 500_000, 600_000}
	sw := newSweep(rep)
	for _, base := range []string{"dctcp", "tcp"} {
		for _, share := range []float64{0.05, 0.10} {
			row := []string{base + "+tlt", fmt.Sprintf("%.0f%%", share*100)}
			for ki, k := range ks {
				v := Variant{Transport: base, TLT: true, ColorThreshold: k}
				last := ki == len(ks)-1
				sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.3, share)}, scale.Seeds,
					func(rs []*Result) {
						ms := metricsOf(rs, func(r *Result) []float64 { return []float64{r.ImpLossRate()} })
						row = append(row, fmt.Sprintf("%.2e", stats.Mean(col(ms, 0))))
						if last {
							rep.AddRow(row...)
						}
					})
			}
		}
	}
	sw.exec()
	rep.Note("paper: zero important drops at K=400kB; loss grows with K and churn (up to 3.5e-3)")
	return rep
}

// Fig15 reproduces Figure 15 (the appendix table): 99.9th percentile
// foreground FCT across three workloads, four loads, and all transports.
func Fig15(scale Scale) *Report {
	rep := &Report{
		ID:     "fig15",
		Title:  "99.9% fg FCT (ms) for various workloads (Appendix B)",
		Header: []string{"workload", "load", "dctcp", "+tlp", "+rto200", "+tlt", "tcp", "tcp+tlt", "dcqcn-sack+pfc", "dcqcn-sack+tlt", "irn", "irn+tlt", "hpcc+pfc", "hpcc+tlt"},
	}
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLP: true},
		{Transport: "dctcp", RTOMin: 200_000},
		{Transport: "dctcp", TLT: true},
		{Transport: "tcp"},
		{Transport: "tcp", TLT: true},
		{Transport: "dcqcn-sack", PFC: true},
		{Transport: "dcqcn-sack", TLT: true},
		{Transport: "dcqcn-irn"},
		{Transport: "dcqcn-irn", TLT: true},
		{Transport: "hpcc", PFC: true},
		{Transport: "hpcc", TLT: true},
	}
	workloads := []string{"websearch", "webserver", "cachefollower"}
	loads := []float64{0.2, 0.3, 0.4, 0.5}
	if scale.AppPoints > 0 {
		if scale.AppPoints < len(workloads) {
			workloads = workloads[:scale.AppPoints]
		}
		if scale.AppPoints < len(loads) {
			loads = loads[:scale.AppPoints]
		}
	}
	// Appendix B: 16 kB foreground flows, 4 per host, 30% default load.
	// As in Table1, each row accumulates across per-variant folds and the
	// last fold emits it.
	sw := newSweep(rep)
	for _, wl := range workloads {
		dist, _ := workload.ByName(wl)
		for _, load := range loads {
			row := []string{wl, fmt.Sprintf("%.1f", load)}
			for vi, v := range variants {
				tr := trafficFor(scale, load, 0.05)
				tr.Dist = dist
				tr.FgFlowSize = 16_000
				tr.FlowsPerSender = 4
				last := vi == len(variants)-1
				sw.add(RunConfig{Variant: v, Traffic: tr}, 1,
					func(rs []*Result) {
						ms := metricsOf(rs, func(r *Result) []float64 { return []float64{r.FgP(0.999)} })
						row = append(row, fmt.Sprintf("%.2f", stats.Mean(col(ms, 0))*1e3))
						if last {
							rep.AddRow(row...)
						}
					})
			}
		}
	}
	sw.exec()
	rep.Note("values in milliseconds; paper Figure 15 (single seed per cell)")
	return rep
}
