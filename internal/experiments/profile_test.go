package experiments

import (
	"testing"
)

func BenchmarkRunDCTCPBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(RunConfig{
			Variant: Variant{Transport: "dctcp"},
			Traffic: trafficFor(Scale{BgFlows: 100}, 0.4, 0.05),
			Seed:    1,
		})
		b.ReportMetric(float64(res.EventsRun), "events")
		b.ReportMetric(float64(res.FlowCount), "flows")
	}
}
