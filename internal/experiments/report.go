// Package experiments contains one runner per table and figure of the
// paper's evaluation (§2, §7, Appendix B). Each runner builds the
// topology, generates the workload, executes the simulation across seeds,
// and returns a Report with the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"tlt/internal/sim"
)

// Report is a rendered experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Grid accounting filled in by the executor, for the bench
	// pipeline; not part of the rendered report.
	cells  int
	events uint64
	sched  sim.SchedStats
	// setupWall sums each cell's pre-run construction wall-clock (zero
	// for custom cells that don't report it); packets sums switch
	// enqueues across the grid, the denominator of events-per-packet.
	setupWall time.Duration
	packets   uint64
	// shardEvents sums each cell's per-shard event counts elementwise,
	// so a bench record can show how evenly the partitioner spread the
	// load (length = the grid's largest shard count).
	shardEvents []uint64
}

// GridStats returns how many grid cells produced this report and the
// total simulation events they processed.
func (r *Report) GridStats() (cells int, events uint64) {
	return r.cells, r.events
}

// SchedStats returns the aggregated scheduler-internal counters of every
// grid cell behind this report (dead-timer pops/reclamations, cascades,
// overflow-heap pressure).
func (r *Report) SchedStats() sim.SchedStats { return r.sched }

// ShardEvents returns the per-shard event totals across the grid's cells
// (length = the largest shard count any cell ran with).
func (r *Report) ShardEvents() []uint64 { return r.shardEvents }

// SetupWall returns the total wall-clock the grid's cells spent in
// topology/flow construction before their event loops started.
func (r *Report) SetupWall() time.Duration { return r.setupWall }

// Packets returns the total switch enqueues (green + red) across the
// grid — the denominator for an events-per-packet cost figure.
func (r *Report) Packets() uint64 { return r.packets }

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a free-form footnote.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders an aligned plain-text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale controls experiment size. The paper's full scale (10k background
// flows, 5 seeds) is expensive; Quick preserves the shape at a fraction
// of the cost and Bench is for go test -bench smoke runs.
type Scale struct {
	BgFlows int
	Seeds   int
	// AppPoints trims sweep axes (request counts, fan-outs) for the
	// application/microbenchmark figures; 0 means full axis.
	AppPoints int
}

// QuickScale is the default for cmd/tltsim.
func QuickScale() Scale { return Scale{BgFlows: 400, Seeds: 2} }

// FullScale matches the paper's configuration.
func FullScale() Scale { return Scale{BgFlows: 10000, Seeds: 5} }

// BenchScale is a minimal smoke-scale for go test -bench.
func BenchScale() Scale { return Scale{BgFlows: 60, Seeds: 1, AppPoints: 2} }
