package experiments

import (
	"strings"
	"testing"

	"tlt/internal/chaos"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/topo"
	"tlt/internal/workload"
)

func tinyScale() Scale { return Scale{BgFlows: 40, Seeds: 1, AppPoints: 1} }

func TestVariantNames(t *testing.T) {
	cases := []struct {
		v    Variant
		want string
	}{
		{Variant{Transport: "dctcp"}, "dctcp"},
		{Variant{Transport: "dctcp", TLT: true, PFC: true}, "dctcp+tlt+pfc"},
		{Variant{Transport: "tcp", RTOMin: 200 * sim.Microsecond}, "tcp+rtomin200.000us"},
		{Variant{Transport: "dctcp", FixedRTO: 160 * sim.Microsecond}, "dctcp+rto160.000us"},
		{Variant{Transport: "tcp", TLP: true}, "tcp+tlp"},
	}
	for _, c := range cases {
		if got := c.v.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestVariantFamilies(t *testing.T) {
	if (Variant{Transport: "dctcp"}).IsRoCE() {
		t.Fatal("dctcp is not RoCE")
	}
	if !(Variant{Transport: "hpcc"}).IsRoCE() {
		t.Fatal("hpcc is RoCE")
	}
	if d := (Variant{Transport: "tcp"}).linkDelay(); d != 10*sim.Microsecond {
		t.Fatalf("tcp link delay = %v", d)
	}
	if d := (Variant{Transport: "dcqcn"}).linkDelay(); d != sim.Microsecond {
		t.Fatalf("roce link delay = %v", d)
	}
	if k := (Variant{Transport: "tcp", TLT: true}).colorThreshold(); k != 400_000 {
		t.Fatalf("tcp color threshold = %d", k)
	}
	if k := (Variant{Transport: "hpcc", TLT: true}).colorThreshold(); k != 200_000 {
		t.Fatalf("roce color threshold = %d", k)
	}
	if k := (Variant{Transport: "tcp"}).colorThreshold(); k != 0 {
		t.Fatal("non-TLT variant must disable color dropping")
	}
}

func TestSwitchConfigPerVariant(t *testing.T) {
	sc := Variant{Transport: "dctcp", PFC: true}.switchConfig()
	if sc.KEcn != 200_000 || !sc.PFC || sc.XOff == 0 {
		t.Fatalf("dctcp+pfc config = %+v", sc)
	}
	sc = Variant{Transport: "hpcc"}.switchConfig()
	if !sc.INT || sc.PFC {
		t.Fatalf("hpcc config = %+v", sc)
	}
	sc = Variant{Transport: "dcqcn"}.switchConfig()
	if sc.KMin == 0 || sc.KMax == 0 {
		t.Fatalf("dcqcn ECN config = %+v", sc)
	}
}

func TestRunProducesCompleteFlows(t *testing.T) {
	res := Run(RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    1,
	})
	if res.Incomplete != 0 {
		t.Fatalf("%d flows incomplete", res.Incomplete)
	}
	if res.FlowCount == 0 || res.Rec.TimeoutsAll() > res.FlowCount {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.FgP(0.99) <= 0 {
		t.Fatal("no foreground percentile")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig14c", "fig15",
		"fig16", "fig17", "fig18", "table1", "dumbbell", "ablation-n", "ablation-alpha",
		"ablation-buffer", "chaos-recovery", "failure-recovery", "scale-sweep"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Note("hello %d", 7)
	out := r.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Two runs of the same config and fault plan must be bit-identical: the
// chaos engine derives every random choice from the plan seed and run
// seed, never from wall-clock or global state.
func TestRunDeterministicWithFaults(t *testing.T) {
	rc := RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    3,
		Faults: &chaos.Plan{
			Seed: 7,
			Flaps: []chaos.LinkFlap{{
				Link: chaos.RandomTarget, At: 100 * sim.Microsecond,
				Down: 30 * sim.Microsecond, Every: sim.Millisecond, Count: 8,
			}},
		},
	}
	a, b := Run(rc), Run(rc)
	if a.Faults != b.Faults {
		t.Fatalf("fault counters diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if a.Faults.LinkFlaps == 0 {
		t.Fatal("plan injected no flaps")
	}
	if a.EventsRun != b.EventsRun || a.Incomplete != b.Incomplete || a.Elapsed != b.Elapsed {
		t.Fatalf("run diverged: events %d/%d incomplete %d/%d elapsed %v/%v",
			a.EventsRun, b.EventsRun, a.Incomplete, b.Incomplete, a.Elapsed, b.Elapsed)
	}
	if ap, bp := a.FgP(0.99), b.FgP(0.99); ap != bp {
		t.Fatalf("fg p99 diverged: %v vs %v", ap, bp)
	}
}

// The stall watchdog must name a starved flow and its transport state: we
// silently eat every data packet one flow ever sends and check the
// horizon report identifies it.
func TestStallWatchdogNamesStarvedFlow(t *testing.T) {
	tr := trafficFor(tinyScale(), 0.4, 0.05)
	tr.Seed = 1
	victim := workload.Generate(tr, 1)[0]

	res := Run(RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    1,
		Horizon: 100 * sim.Millisecond,
		Prepare: func(s *sim.Sim, net *topo.Network) {
			net.Hosts[victim.Src].NICTx().DropWhen(func(p *packet.Packet) bool {
				return p.Flow == victim.ID && p.Type == packet.Data
			})
		},
	})
	if res.Incomplete == 0 {
		t.Fatal("starved flow completed?")
	}
	found := false
	for _, fs := range res.Stalls {
		if fs.Flow == victim.ID {
			found = true
			if fs.Done {
				t.Fatalf("stalled flow reported done: %s", fs)
			}
			if fs.Transport != "tcp" || fs.State == "" {
				t.Fatalf("stall report missing transport state: %s", fs)
			}
			if fs.AckedBytes >= fs.TotalBytes {
				t.Fatalf("starved flow claims full delivery: %s", fs)
			}
		}
	}
	if !found {
		t.Fatalf("stall report does not name flow %d: %v", victim.ID, res.Stalls)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "incomplete=") || !strings.Contains(joined, "stall:") {
		t.Fatalf("harness notes missing stall report:\n%s", joined)
	}
}

// A clean run under the strict auditor must observe events and find no
// violations (the auditor panics on the first one, failing the test).
func TestAuditCleanRun(t *testing.T) {
	res := Run(RunConfig{
		Variant: Variant{Transport: "dctcp", TLT: true},
		Traffic: trafficFor(tinyScale(), 0.4, 0.05),
		Seed:    2,
		Audit:   true,
	})
	if res.AuditEvents == 0 {
		t.Fatal("auditor saw no events")
	}
	if res.Faults.AuditViolations != 0 {
		t.Fatalf("clean run produced %d violations", res.Faults.AuditViolations)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d flows incomplete under audit", res.Incomplete)
	}
}

// Smoke-run the light experiments end to end at tiny scale.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"fig12", "fig13", "fig14", "fig14c"} {
		e, _ := ByID(id)
		rep := e.Run(tinyScale())
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Header) {
				t.Fatalf("%s row width %d != header %d", id, len(row), len(rep.Header))
			}
		}
	}
}

func TestLeafSpineFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"fig2", "fig10", "fig16"} {
		e, _ := ByID(id)
		rep := e.Run(tinyScale())
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}
