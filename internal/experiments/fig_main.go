package experiments

import (
	"fmt"

	"tlt/internal/sim"
	"tlt/internal/stats"
)

// tcpFig5Variants is the Figure 5 comparison matrix for one base
// transport ("tcp" or "dctcp").
func tcpFig5Variants(base string) []Variant {
	return []Variant{
		{Transport: base},                                // baseline, 4ms RTOmin
		{Transport: base, TLP: true},                     // +TLP
		{Transport: base, RTOMin: 200 * sim.Microsecond}, // high-perf timer
		{Transport: base, TLT: true},                     // +TLT
		{Transport: base, PFC: true},                     // lossless baseline
		{Transport: base, TLT: true, PFC: true},          // TLT+PFC
	}
}

// roceFig6Variants is the Figure 6 comparison matrix.
func roceFig6Variants() []Variant {
	var out []Variant
	for _, tr := range []string{"hpcc", "dcqcn-irn", "dcqcn-sack", "dcqcn"} {
		if tr == "dcqcn-irn" {
			// IRN is evaluated lossy only (its whole point is removing PFC).
			out = append(out,
				Variant{Transport: tr},
				Variant{Transport: tr, TLT: true},
			)
			continue
		}
		out = append(out,
			Variant{Transport: tr, PFC: true},
			Variant{Transport: tr},
			Variant{Transport: tr, TLT: true},
			Variant{Transport: tr, TLT: true, PFC: true},
		)
	}
	return out
}

func fctTable(id, title string, variants []Variant, scale Scale, load, fgShare float64) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"variant", "fg p99.9 FCT", "fg p99 FCT", "bg avg FCT", "timeouts/1k", "incomplete"},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, load, fgShare)}, scale.Seeds,
			func(rs []*Result) {
				inc := 0
				ms := metricsOf(rs, func(r *Result) []float64 {
					inc += r.Incomplete
					return []float64{r.FgP(0.999), r.FgP(0.99), r.BgMean(), r.TimeoutsPer1k()}
				})
				rep.AddRow(v.Name(),
					meanStdDur(col(ms, 0)), meanStdDur(col(ms, 1)), meanStdDur(col(ms, 2)),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 3))),
					fmt.Sprintf("%d", inc))
			})
	}
	sw.exec()
	return rep
}

// Fig5 reproduces Figure 5: FCT for TCP and DCTCP with different loss
// recovery mechanisms, with and without PFC.
func Fig5(scale Scale) *Report {
	variants := append(tcpFig5Variants("dctcp"), tcpFig5Variants("tcp")...)
	rep := fctTable("fig5", "FCT for TCP and DCTCP (load 40%, 5% fg, K=400kB)", variants, scale, 0.4, 0.05)
	rep.Note("paper: TLT cuts DCTCP fg p99.9 by ~80.9%% vs baseline; PFC helps fg but inflates bg FCT")
	return rep
}

// Fig6 reproduces Figure 6: FCT for HPCC and the DCQCN variants.
func Fig6(scale Scale) *Report {
	rep := fctTable("fig6", "FCT for HPCC and DCQCN variants (load 40%, 5% fg, K=200kB)", roceFig6Variants(), scale, 0.4, 0.05)
	rep.Note("paper: TLT cuts HPCC fg p99.9 by 78.5%% (lossy) and IRN's by 55.6%%; vanilla DCQCN+PFC sees no gain")
	return rep
}

// Fig7 reproduces Figure 7: timeouts per 1k flows, PAUSE frames per 1k
// flows, and the fraction of link time spent paused.
func Fig7(scale Scale) *Report {
	rep := &Report{
		ID:     "fig7",
		Title:  "Timeouts/1k flows, PAUSE frames/1k flows, paused link-time (load 40%, 5% fg)",
		Header: []string{"variant", "timeouts/1k", "pauses/1k", "paused-time", "imp loss rate"},
	}
	variants := []Variant{
		{Transport: "dctcp"},
		{Transport: "dctcp", TLP: true},
		{Transport: "dctcp", RTOMin: 200 * sim.Microsecond},
		{Transport: "dctcp", TLT: true},
		{Transport: "dctcp", PFC: true},
		{Transport: "dctcp", TLT: true, PFC: true},
		{Transport: "tcp"},
		{Transport: "tcp", TLT: true},
		{Transport: "tcp", PFC: true},
		{Transport: "tcp", TLT: true, PFC: true},
		{Transport: "dcqcn-sack", PFC: true},
		{Transport: "dcqcn-sack", TLT: true, PFC: true},
	}
	sw := newSweep(rep)
	for _, v := range variants {
		sw.add(RunConfig{Variant: v, Traffic: trafficFor(scale, 0.4, 0.05)}, scale.Seeds,
			func(rs []*Result) {
				ms := metricsOf(rs, func(r *Result) []float64 {
					return []float64{r.TimeoutsPer1k(), r.PausesPer1k(), r.PausedFrac, r.ImpLossRate()}
				})
				rep.AddRow(v.Name(),
					fmt.Sprintf("%.2f", stats.Mean(col(ms, 0))),
					fmt.Sprintf("%.1f", stats.Mean(col(ms, 1))),
					fmt.Sprintf("%.3f%%", stats.Mean(col(ms, 2))*100),
					fmt.Sprintf("%.2e", stats.Mean(col(ms, 3))))
			})
	}
	sw.exec()
	rep.Note("paper: DCTCP+TLT nearly eliminates timeouts; TLT cuts PAUSE frames 27.7%% (DCTCP) / 93.2%% (TCP)")
	return rep
}
