package experiments

import (
	"fmt"
	"sync"

	"tlt/internal/chaos"
)

// The harness carries session-wide settings from the CLI (-chaos, -audit)
// into every run without threading them through each figure's RunConfig
// literals, plus the note stream the runner and stall watchdog emit
// (incomplete-flow warnings, stall reports, seed-panic captures) so they
// surface in whichever report is being built.
var (
	harnessMu    sync.Mutex
	harnessPlan  *chaos.Plan
	harnessAudit bool
	pendingNotes []string
)

// SetHarness installs a fault plan and/or audit mode applied to every
// subsequent run. Pass (nil, false) to clear.
func SetHarness(plan *chaos.Plan, audit bool) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	harnessPlan = plan
	harnessAudit = audit
}

func harnessSettings() (*chaos.Plan, bool) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	return harnessPlan, harnessAudit
}

// addNote queues a harness note for the report under construction.
func addNote(format string, args ...any) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	pendingNotes = append(pendingNotes, fmt.Sprintf(format, args...))
}

// drainNotes returns and clears the queued notes.
func drainNotes() []string {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	out := pendingNotes
	pendingNotes = nil
	return out
}

// RunEntry executes a registry entry and folds the harness notes
// accumulated during the run (stall reports, panic captures, incomplete
// warnings) into the returned report.
func RunEntry(e Entry, sc Scale) *Report {
	drainNotes() // start clean: notes from prior entries belong to them
	rep := e.Run(sc)
	rep.Notes = append(rep.Notes, drainNotes()...)
	return rep
}
