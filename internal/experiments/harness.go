package experiments

import (
	"sync"

	"tlt/internal/chaos"
)

// The harness carries session-wide settings from the CLI (-chaos,
// -audit) into every grid cell without threading them through each
// figure's RunConfig literals. RunGrid folds them into cells at submit
// time, so Run itself is a pure function of its RunConfig and all
// per-run state — notes, fault counters, panic captures — lives on the
// cell's Result. That per-run scoping is what keeps 16 concurrent sims
// race-free.
var (
	harnessMu    sync.Mutex
	harnessPlan  *chaos.Plan
	harnessAudit bool
)

// SetHarness installs a fault plan and/or audit mode applied to every
// subsequent grid cell that doesn't set its own. Pass (nil, false) to
// clear. Call it before runs start, not while a grid is in flight.
func SetHarness(plan *chaos.Plan, audit bool) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	harnessPlan = plan
	harnessAudit = audit
}

func harnessSettings() (*chaos.Plan, bool) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	return harnessPlan, harnessAudit
}

// RunEntry executes a registry entry. Harness notes accumulated during
// the run (stall reports, panic captures, incomplete warnings) are
// already per-cell and merged into the report by the grid executor.
func RunEntry(e Entry, sc Scale) *Report {
	return e.Run(sc)
}
