package experiments

import (
	"math"
	"sort"

	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/dcqcn"
	"tlt/internal/transport/hpcc"
	"tlt/internal/transport/tcp"
	"tlt/internal/workload"
)

// RunConfig describes one leaf-spine simulation run.
type RunConfig struct {
	Variant Variant
	Traffic workload.TrafficConfig
	Seed    int64
	Horizon sim.Time // 0 → last arrival + 3 s

	// AlphaOverride replaces the dynamic-threshold parameter (ablation).
	AlphaOverride float64

	CollectDelivery bool
	CollectRTT      bool
	SampleQueues    bool
}

// Result aggregates everything a figure needs from one run.
type Result struct {
	Rec         *stats.Recorder
	Ctr         fabric.Counters
	PausedFrac  float64
	Elapsed     sim.Time
	FlowCount   int
	Incomplete  int
	MaxQ        int64     // max egress queue across the fabric
	MaxRedQ     int64     // max red (unimportant) occupancy
	QSamples    []float64 // sampled max-queue time series (bytes)
	EventsRun   uint64
	TrafficLast sim.Time // last flow arrival
}

// FgP returns the p-quantile of foreground FCTs in seconds.
func (r *Result) FgP(p float64) float64 { return stats.Percentile(r.Rec.Select(true), p) }

// BgMean returns the mean background FCT in seconds.
func (r *Result) BgMean() float64 { return stats.Mean(r.Rec.Select(false)) }

// BgP returns the p-quantile of background FCTs in seconds.
func (r *Result) BgP(p float64) float64 { return stats.Percentile(r.Rec.Select(false), p) }

// TimeoutsPer1k returns RTO expirations per thousand flows.
func (r *Result) TimeoutsPer1k() float64 {
	if r.FlowCount == 0 {
		return 0
	}
	return float64(r.Rec.TimeoutsAll()) / float64(r.FlowCount) * 1000
}

// PausesPer1k returns PFC pause frames per thousand flows.
func (r *Result) PausesPer1k() float64 {
	if r.FlowCount == 0 {
		return 0
	}
	return float64(r.Ctr.PauseFrames) / float64(r.FlowCount) * 1000
}

// ImpLossRate returns the loss rate of important (green) packets.
func (r *Result) ImpLossRate() float64 {
	den := r.Ctr.EnqGreen + r.Ctr.DropGreen
	if den == 0 {
		return 0
	}
	return float64(r.Ctr.DropGreen) / float64(den)
}

// Run executes one leaf-spine simulation.
func Run(rc RunConfig) *Result {
	s := sim.New()
	v := rc.Variant

	lsCfg := topo.DefaultLeafSpine(v.linkDelay())
	lsCfg.Switch = v.switchConfig()
	if rc.AlphaOverride > 0 {
		lsCfg.Switch.Alpha = rc.AlphaOverride
	}
	lsCfg.SeedSalt = rc.Seed
	net := topo.LeafSpine(s, lsCfg)

	tr := rc.Traffic
	tr.Seed = rc.Seed
	flows := workload.Generate(tr, 1)

	rec := stats.NewRecorder()
	if rc.CollectDelivery {
		rec.DeliverySamples = stats.NewReservoir(200_000, rc.Seed)
	}
	if rc.CollectRTT {
		rec.RTTSamplesFG = stats.NewReservoir(100_000, rc.Seed)
		rec.RTOSamplesFG = stats.NewReservoir(100_000, rc.Seed+1)
		rec.RTTSamplesBG = stats.NewReservoir(100_000, rc.Seed+2)
		rec.RTOSamplesBG = stats.NewReservoir(100_000, rc.Seed+3)
	}

	remaining := len(flows)
	onDone := func(*stats.FlowRecord) {
		remaining--
		if remaining == 0 {
			s.Stop()
		}
	}
	startFlows(s, net, flows, v, rec, onDone)

	var qSamples []float64
	if rc.SampleQueues {
		var sample func()
		sample = func() {
			maxQ := int64(0)
			for _, sw := range net.Switches {
				for p := 0; p < sw.NumPorts(); p++ {
					if q := sw.QueueBytes(p); q > maxQ {
						maxQ = q
					}
				}
			}
			qSamples = append(qSamples, float64(maxQ))
			if remaining > 0 {
				s.After(20*sim.Microsecond, sample)
			}
		}
		s.After(0, sample)
	}

	last := sim.Time(0)
	if len(flows) > 0 {
		last = flows[len(flows)-1].Start
	}
	horizon := rc.Horizon
	if horizon == 0 {
		horizon = last + 3*sim.Second
	}
	end := s.Run(horizon)
	net.FinishPausedClocks()

	res := &Result{
		Rec:         rec,
		Ctr:         net.Counters(),
		PausedFrac:  net.PausedFraction(end),
		Elapsed:     end,
		FlowCount:   len(flows),
		Incomplete:  remaining,
		QSamples:    qSamples,
		EventsRun:   s.Processed,
		TrafficLast: last,
	}
	for _, sw := range net.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			if q := sw.MaxQueueBytes(p); q > res.MaxQ {
				res.MaxQ = q
			}
			if q := sw.MaxRedQueueBytes(p); q > res.MaxRedQ {
				res.MaxRedQ = q
			}
		}
	}
	return res
}

// startFlows instantiates the right transport for every flow.
func startFlows(s *sim.Sim, net *topo.Network, flows []*transport.Flow, v Variant,
	rec *stats.Recorder, onDone func(*stats.FlowRecord)) {
	switch v.Transport {
	case "tcp", "dctcp":
		cfg := v.tcpConfig()
		for _, f := range flows {
			tcp.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
		}
	case "dcqcn", "dcqcn-sack", "dcqcn-irn":
		cfg := v.dcqcnConfig()
		for _, f := range flows {
			dcqcn.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
		}
	case "hpcc":
		cfg := hpcc.DefaultConfig(net.BaseRTT + 2*sim.Microsecond)
		cfg.TLT = v.dcqcnConfig().TLT
		for _, f := range flows {
			hpcc.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
		}
	default:
		panic("experiments: unknown transport " + v.Transport)
	}
}

// seedMetrics runs rc across seeds and returns per-seed metric vectors.
func seedMetrics(rc RunConfig, seeds int, metric func(*Result) []float64) [][]float64 {
	var out [][]float64
	for seed := 0; seed < seeds; seed++ {
		rc.Seed = int64(seed + 1)
		res := Run(rc)
		m := metric(res)
		for len(out) < len(m) {
			out = append(out, nil)
		}
		for i, x := range m {
			if !math.IsNaN(x) {
				out[i] = append(out[i], x)
			}
		}
	}
	return out
}

// meanStd formats mean±std of xs as durations.
func meanStdDur(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	m := stats.Mean(xs)
	if len(xs) == 1 {
		return stats.FmtDur(m)
	}
	return stats.FmtDur(m) + "±" + stats.FmtDur(stats.Stddev(xs))
}

// median returns the middle value.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[len(c)/2]
}
