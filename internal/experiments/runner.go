package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"tlt/internal/audit"
	"tlt/internal/chaos"
	"tlt/internal/core"
	"tlt/internal/fabric"
	_ "tlt/internal/fabric/mmu" // register bshare/tiny/bfc policies
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
	"tlt/internal/transport/dcqcn"
	"tlt/internal/transport/hpcc"
	"tlt/internal/transport/tcp"
	"tlt/internal/workload"
)

// RunConfig describes one leaf-spine simulation run.
type RunConfig struct {
	Variant Variant
	Traffic workload.TrafficConfig
	Seed    int64
	Horizon sim.Time // 0 → last arrival + 3 s

	// Shards partitions the fabric across that many event loops
	// (conservative parallel DES with link-latency lookahead); 0 and 1
	// both mean a single shard. Reports are byte-identical across shard
	// counts. Runs that attach cross-shard observers (Audit,
	// CollectDelivery, CollectRTT) are clamped to one shard; the clamp
	// is silent because a harness note naming the shard count would
	// itself break cross-shard-count byte-identity.
	Shards int
	// Workers caps the goroutines driving the shard group (0 → one per
	// shard). The grid sets this from its run-slot budget.
	Workers int

	// AlphaOverride replaces the dynamic-threshold parameter (ablation).
	AlphaOverride float64
	// BufferOverride replaces the switch shared-buffer size in bytes
	// (buffer-policy ablation). PFC XOFF/XON thresholds are re-derived
	// from the new size when PFC is on.
	BufferOverride int64

	CollectDelivery bool
	CollectRTT      bool
	SampleQueues    bool

	// Faults, when non-nil, applies a deterministic chaos schedule to
	// the network (RunGrid fills in the session harness plan when nil).
	Faults *chaos.Plan

	// WatchdogThreshold, when non-zero, enables the commodity-style PFC
	// watchdog on every switch: a port paused continuously for this long
	// has its queue flushed and unpaused. WatchdogRestore is the
	// post-mitigation window during which further PAUSE frames on the
	// port are ignored (0 → fabric default).
	WatchdogThreshold sim.Time
	WatchdogRestore   sim.Time
	// HostPauseTimeout, when non-zero, bounds how long a host NIC honors
	// a PAUSE without refresh before self-resuming (NIC pause auto-expiry
	// — the end-host half of storm protection).
	HostPauseTimeout sim.Time
	// Audit attaches the strict runtime invariant auditor to every
	// switch and TLT sender (RunGrid or's in the session harness flag).
	Audit bool
	// Prepare, when set, runs after the network is built and flows are
	// registered but before the simulation starts — a hook for tests
	// that install deterministic drop filters or probes.
	Prepare func(s *sim.Sim, net *topo.Network)

	// Custom, when set, replaces the standard leaf-spine Run for this
	// cell: the app and testbed figures build their own topologies but
	// still execute on the shared grid. The function receives the fully
	// resolved config (seed, harness plan, audit flag).
	Custom func(rc RunConfig) *Result
	// Label names the cell in panic-replay notes when Variant alone is
	// not enough (custom cells, sweep points).
	Label string
}

// label names the cell for replay notes.
func (rc RunConfig) label() string {
	if rc.Label != "" {
		return rc.Label
	}
	return rc.Variant.Name()
}

// Result aggregates everything a figure needs from one run.
type Result struct {
	Rec        *stats.Recorder
	Ctr        fabric.Counters
	PausedFrac float64
	Elapsed    sim.Time
	FlowCount  int
	Incomplete int
	MaxQ       int64     // max egress queue across the fabric
	MaxRedQ    int64     // max red (unimportant) occupancy
	QSamples   []float64 // sampled max-queue time series (bytes)
	EventsRun  uint64
	// ShardEvents breaks EventsRun down by shard (length = shard count),
	// so bench records can show partition balance.
	ShardEvents []uint64
	// Sched carries the run's scheduler-internal counters (dead-timer
	// pops and reclamations, cascades, overflow-heap pressure).
	Sched       sim.SchedStats
	TrafficLast sim.Time // last flow arrival
	// SetupWall is the host wall-clock spent building the cell — topology,
	// flow registration, fault resolution — before its event loops start.
	// Filled by the standard and scale runners; custom figure cells that
	// build their own topologies leave it zero.
	SetupWall time.Duration

	// Faults aggregates injected-fault activity and audit findings.
	Faults stats.FaultCounters
	// AuditEvents counts events the invariant auditor checked (0 when
	// auditing is off).
	AuditEvents int64
	// Stalls holds the stall-watchdog snapshot of every incomplete
	// flow's sender at the horizon (empty when all flows finished).
	Stalls []transport.FlowStatus
	// Aborted counts flows whose senders gave up (retry exhaustion);
	// they are terminal but never counted as completed.
	Aborted int

	// Notes carries this run's harness messages (incomplete warnings,
	// stall reports, panic captures); the grid executor merges them
	// into the report in cell order.
	Notes []string
	// Panicked marks a cell that was recovered by the grid executor;
	// folds skip it.
	Panicked bool
	// App carries a custom run's payload (incast FCT vectors, dumbbell
	// counters, ...) for its figure's fold.
	App any

	// fgSorted/bgSorted cache the sorted FCT vectors so the repeated
	// quantile queries of one fold (p99.9, p99, mean) sort once.
	fgSorted, bgSorted []float64
}

// Notef appends a formatted harness note to the result.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// sortedFCTs returns the run's completed-flow FCTs for a class, sorted
// ascending, computing and caching them on first use. Results are read
// by a single fold goroutine, so the lazy fill needs no lock.
func (r *Result) sortedFCTs(fg bool) []float64 {
	c := &r.bgSorted
	if fg {
		c = &r.fgSorted
	}
	if *c == nil && r.Rec != nil {
		xs := r.Rec.Select(fg)
		sort.Float64s(xs)
		if xs == nil {
			xs = []float64{} // remember "computed, empty"
		}
		*c = xs
	}
	return *c
}

// FgP returns the p-quantile of foreground FCTs in seconds.
func (r *Result) FgP(p float64) float64 { return stats.PercentileSorted(r.sortedFCTs(true), p) }

// BgMean returns the mean background FCT in seconds.
func (r *Result) BgMean() float64 { return stats.Mean(r.sortedFCTs(false)) }

// BgP returns the p-quantile of background FCTs in seconds.
func (r *Result) BgP(p float64) float64 { return stats.PercentileSorted(r.sortedFCTs(false), p) }

// TimeoutsPer1k returns RTO expirations per thousand flows.
func (r *Result) TimeoutsPer1k() float64 {
	if r.FlowCount == 0 {
		return 0
	}
	return float64(r.Rec.TimeoutsAll()) / float64(r.FlowCount) * 1000
}

// PausesPer1k returns PFC pause frames per thousand flows.
func (r *Result) PausesPer1k() float64 {
	if r.FlowCount == 0 {
		return 0
	}
	return float64(r.Ctr.PauseFrames) / float64(r.FlowCount) * 1000
}

// ImpLossRate returns the loss rate of important (green) packets.
func (r *Result) ImpLossRate() float64 {
	den := r.Ctr.EnqGreen + r.Ctr.DropGreen
	if den == 0 {
		return 0
	}
	return float64(r.Ctr.DropGreen) / float64(den)
}

// Run executes one leaf-spine simulation.
func Run(rc RunConfig) *Result {
	setupStart := time.Now()
	v := rc.Variant

	shards := rc.Shards
	if shards < 1 {
		shards = 1
	}
	if rc.Audit || rc.CollectDelivery || rc.CollectRTT {
		// These observers read state across the whole fabric from event
		// callbacks; keep them on one shard. Silent by design (see the
		// Shards field comment).
		shards = 1
	}
	g := sim.NewGroup(shards, v.linkDelay())
	s := g.Shard(0)

	lsCfg := topo.DefaultLeafSpine(v.linkDelay())
	lsCfg.Group = g
	lsCfg.Switch = v.switchConfig()
	if rc.AlphaOverride > 0 {
		lsCfg.Switch.Alpha = rc.AlphaOverride
	}
	if rc.BufferOverride > 0 {
		lsCfg.Switch.BufferBytes = rc.BufferOverride
		if lsCfg.Switch.PFC {
			lsCfg.Switch.XOff = lsCfg.Switch.BufferBytes / (2 * 12)
			lsCfg.Switch.XOn = lsCfg.Switch.XOff - 2*int64(transport.MSS+48)
		}
	}
	if rc.WatchdogThreshold > 0 {
		lsCfg.Switch.PFCWatchdog = true
		lsCfg.Switch.WatchdogThreshold = rc.WatchdogThreshold
		lsCfg.Switch.WatchdogRestore = rc.WatchdogRestore
	}
	lsCfg.HostPauseTimeout = rc.HostPauseTimeout
	lsCfg.SeedSalt = rc.Seed
	net := topo.LeafSpine(s, lsCfg)

	tr := rc.Traffic
	tr.Seed = rc.Seed
	flows := workload.Generate(tr, 1)

	rec := stats.NewRecorder()
	rec.Reserve(len(flows))
	if rc.CollectDelivery {
		rec.DeliverySamples = stats.NewReservoir(200_000, rc.Seed)
	}
	if rc.CollectRTT {
		rec.RTTSamplesFG = stats.NewReservoir(100_000, rc.Seed)
		rec.RTOSamplesFG = stats.NewReservoir(100_000, rc.Seed+1)
		rec.RTTSamplesBG = stats.NewReservoir(100_000, rc.Seed+2)
		rec.RTOSamplesBG = stats.NewReservoir(100_000, rc.Seed+3)
	}

	var aud *audit.Auditor
	var coreAudit core.Audit // stays a nil interface unless auditing is on
	if rc.Audit {
		aud = audit.New(s)
		for _, sw := range net.Switches {
			aud.AttachSwitch(sw)
		}
		// Register inter-switch adjacency so the auditor can build the
		// pause wait-for graph (deadlock/storm detection).
		for _, l := range net.SwitchLinks {
			aud.SetPortPeer(l.A, l.APort, l.B.ID())
			aud.SetPortPeer(l.B, l.BPort, l.A.ID())
		}
		coreAudit = aud
	}

	// A flow can finalize from both sides in a sharded run (sender abort
	// racing a completion in flight), and the two closures run on
	// different shards, so completion accounting is a per-flow CAS plus
	// an atomic remaining count. rec.Flows is index-aligned with flows
	// (startFlows registers records in flow order) and the map is fully
	// built before the run starts, so the concurrent reads are safe.
	var remaining atomic.Int64
	remaining.Store(int64(len(flows)))
	doneSlots := make([]atomic.Bool, len(flows))
	flowIdx := make(map[*stats.FlowRecord]int, len(flows))
	onDone := func(fr *stats.FlowRecord) {
		i, ok := flowIdx[fr]
		if !ok || !doneSlots[i].CompareAndSwap(false, true) {
			return
		}
		if remaining.Add(-1) == 0 {
			g.RequestStop()
		}
	}
	reporters := startFlows(s, net, flows, v, rec, onDone, coreAudit)
	for i, fr := range rec.Flows {
		flowIdx[fr] = i
	}

	// The horizon is fixed before fault application: the resolved chaos
	// engine expands repeat chains statically up to it.
	last := sim.Time(0)
	if len(flows) > 0 {
		last = flows[len(flows)-1].Start
	}
	horizon := rc.Horizon
	if horizon == 0 {
		horizon = last + 3*sim.Second
	}

	var eng *chaos.Engine
	if !rc.Faults.Empty() {
		var err error
		eng, err = rc.Faults.ApplyResolved(net, rc.Seed, horizon)
		if err != nil {
			res := &Result{Rec: rec, FlowCount: len(flows), Panicked: true}
			res.Notef("%s seed %d: bad fault plan: %v", rc.label(), rc.Seed, err)
			return res
		}
	}
	if rc.Prepare != nil {
		rc.Prepare(s, net)
	}

	// Queue sampling runs one sampler per shard, each reading only its
	// own switches; the per-shard series merge elementwise-max after the
	// join. Samplers stop at the group's stop latch, which flips at a
	// window barrier and is therefore shard-count invariant.
	var shardSamples [][]float64
	if rc.SampleQueues {
		shardSamples = make([][]float64, shards)
		for sh := 0; sh < shards; sh++ {
			sh := sh
			ssim := g.Shard(sh)
			var mine []*fabric.Switch
			for i, sw := range net.Switches {
				if net.SwitchShard[i] == sh {
					mine = append(mine, sw)
				}
			}
			var sample func()
			sample = func() {
				maxQ := int64(0)
				for _, sw := range mine {
					for p := 0; p < sw.NumPorts(); p++ {
						if q := sw.QueueBytes(p); q > maxQ {
							maxQ = q
						}
					}
				}
				shardSamples[sh] = append(shardSamples[sh], float64(maxQ))
				if !g.Stopping() {
					ssim.After(20*sim.Microsecond, sample)
				}
			}
			ssim.After(0, sample)
		}
	}

	workers := rc.Workers
	if workers < 1 {
		workers = shards
	}
	g.SetWorkers(workers)
	setupWall := time.Since(setupStart)
	end := g.Run(horizon)
	net.FinishPausedClocks()

	var qSamples []float64
	for _, ss := range shardSamples {
		for i, v := range ss {
			if i < len(qSamples) {
				if v > qSamples[i] {
					qSamples[i] = v
				}
			} else {
				qSamples = append(qSamples, v)
			}
		}
	}

	res := &Result{
		Rec:         rec,
		Ctr:         net.Counters(),
		PausedFrac:  net.PausedFraction(end),
		Elapsed:     end,
		FlowCount:   len(flows),
		Incomplete:  int(remaining.Load()),
		QSamples:    qSamples,
		TrafficLast: last,
		SetupWall:   setupWall,
	}
	res.ShardEvents = make([]uint64, shards)
	for i := 0; i < shards; i++ {
		ss := g.Shard(i)
		res.ShardEvents[i] = ss.Processed
		res.EventsRun += ss.Processed
		res.Sched.Add(&ss.Sched)
	}
	for _, sw := range net.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			if q := sw.MaxQueueBytes(p); q > res.MaxQ {
				res.MaxQ = q
			}
			if q := sw.MaxRedQueueBytes(p); q > res.MaxRedQ {
				res.MaxRedQ = q
			}
		}
	}
	res.Aborted = rec.AbortedCount()
	if eng != nil {
		res.Faults = eng.Counters()
	}
	if aud != nil {
		aud.FinishPauses()
		res.Faults.AuditViolations = aud.Violations
		res.Faults.PFCDeadlockCycles = aud.DeadlockCycles
		res.Faults.PFCStormSuspects = aud.StormSuspects
		res.AuditEvents = aud.Events
	}
	if res.Incomplete > 0 {
		res.Stalls = stallReport(reporters)
		res.Notef("%s seed %d: incomplete=%d of %d flows at horizon %v",
			v.Name(), rc.Seed, res.Incomplete, len(flows), end)
		for i, fs := range res.Stalls {
			if i == 4 {
				res.Notef("stall: … %d more stalled flows", len(res.Stalls)-i)
				break
			}
			res.Notef("stall: %s", fs)
		}
	}
	return res
}

// stallReport is the stall watchdog: it interrogates every sender that
// had not completed when the horizon expired, so an Incomplete count
// always comes with per-flow transport state instead of a bare number.
func stallReport(reporters []transport.StatusReporter) []transport.FlowStatus {
	var out []transport.FlowStatus
	for _, r := range reporters {
		if r == nil {
			continue
		}
		if fs := r.FlowStatus(); !fs.Done {
			out = append(out, fs)
		}
	}
	return out
}

// startFlows instantiates the right transport for every flow and returns
// the senders' status reporters (index-aligned with flows) for the stall
// watchdog. tltAudit, when non-nil, hooks every TLT marking machine.
func startFlows(s *sim.Sim, net *topo.Network, flows []*transport.Flow, v Variant,
	rec *stats.Recorder, onDone func(*stats.FlowRecord), tltAudit core.Audit) []transport.StatusReporter {
	reporters := make([]transport.StatusReporter, 0, len(flows))
	switch v.Transport {
	case "tcp", "dctcp":
		cfg := v.tcpConfig()
		cfg.TLT.Audit = tltAudit
		for _, f := range flows {
			c := tcp.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
			reporters = append(reporters, c.Sender)
		}
	case "dcqcn", "dcqcn-sack", "dcqcn-irn":
		cfg := v.dcqcnConfig()
		cfg.TLT.Audit = tltAudit
		for _, f := range flows {
			c := dcqcn.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
			reporters = append(reporters, c.Sender)
		}
	case "hpcc":
		cfg := hpcc.DefaultConfig(net.BaseRTT + 2*sim.Microsecond)
		cfg.TLT = v.dcqcnConfig().TLT
		cfg.TLT.Audit = tltAudit
		cfg.RTO.MaxRetries = v.MaxRetries
		cfg.RTO.MaxBackoffShift = v.MaxBackoffShift
		for _, f := range flows {
			snd, _ := hpcc.StartFlow(s, net.Hosts[f.Src], net.Hosts[f.Dst], f, cfg, rec, onDone)
			reporters = append(reporters, snd)
		}
	default:
		panic("experiments: unknown transport " + v.Transport)
	}
	return reporters
}

// meanStd formats mean±std of xs as durations.
func meanStdDur(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	m := stats.Mean(xs)
	if len(xs) == 1 {
		return stats.FmtDur(m)
	}
	return stats.FmtDur(m) + "±" + stats.FmtDur(stats.Stddev(xs))
}

// median returns the middle value.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[len(c)/2]
}
