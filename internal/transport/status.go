package transport

import (
	"fmt"
	"strings"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// FlowStatus is a point-in-time snapshot of one sender's recovery state,
// rendered in stall reports when an experiment's horizon expires with
// incomplete flows. Every field is diagnostic; none feed back into the
// protocol.
type FlowStatus struct {
	Flow      packet.FlowID
	Transport string // "tcp", "dcqcn", "hpcc"
	State     string // transport-specific state summary

	Done             bool
	Aborted          bool // sender gave up: max retries exhausted
	AckedBytes       int64
	TotalBytes       int64
	OutstandingBytes int64 // sent and unacknowledged
	LostBytes        int64 // marked lost, awaiting retransmission

	// ImportantInFlight reports whether a TLT important packet is
	// outstanding — a stalled flow with one in flight is waiting on an
	// echo that will never come (the degradation mode chaos induces).
	ImportantInFlight bool

	RTOArmed    bool
	RTODeadline sim.Time
	Timers      []string // pending timer descriptions beyond the RTO
}

// StatusReporter is implemented by transport senders so the experiment
// runner's stall watchdog can interrogate incomplete flows.
type StatusReporter interface {
	FlowStatus() FlowStatus
}

// String renders the snapshot as one report line.
func (fs FlowStatus) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow %d [%s] state=%s acked=%d/%d outstanding=%d lost=%d",
		fs.Flow, fs.Transport, fs.State,
		fs.AckedBytes, fs.TotalBytes, fs.OutstandingBytes, fs.LostBytes)
	if fs.Aborted {
		b.WriteString(" aborted")
	}
	if fs.ImportantInFlight {
		b.WriteString(" important-in-flight")
	}
	if fs.RTOArmed {
		fmt.Fprintf(&b, " rto@%v", fs.RTODeadline)
	} else {
		b.WriteString(" rto=disarmed")
	}
	for _, t := range fs.Timers {
		b.WriteString(" ")
		b.WriteString(t)
	}
	return b.String()
}
