package dcqcn

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

func roceStar(hosts int, swc fabric.SwitchConfig) (*sim.Sim, *topo.Network) {
	s := sim.New()
	if swc.BufferBytes == 0 {
		swc.BufferBytes = 4_500_000
	}
	if swc.ECN == fabric.ECNOff {
		swc.ECN = fabric.ECNRed
		swc.KMin = 50_000
		swc.KMax = 200_000
		swc.PMax = 0.01
	}
	n := topo.Star(s, topo.StarConfig{
		Hosts:       hosts,
		LinkRateBps: 40e9,
		LinkDelay:   sim.Microsecond,
		Switch:      swc,
	})
	return s, n
}

func TestGBNSingleFlow(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(GBN), rec, nil)
	s.Run(sim.Second)
	if got := c.Receiver.Delivered(); got != 1000 {
		t.Fatalf("delivered %d packets, want 1000", got)
	}
	if !rec.Flows[0].Done {
		t.Fatal("flow not done")
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatalf("timeouts: %d", rec.Flows[0].Timeouts)
	}
}

func TestModesRecoverFromCongestionLoss(t *testing.T) {
	for _, mode := range []Mode{GBN, SACK, IRN} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			swc := fabric.SwitchConfig{BufferBytes: 400_000, ECN: fabric.ECNRed, KMin: 50_000, KMax: 200_000, PMax: 0.01}
			s, n := roceStar(17, swc)
			rec := stats.NewRecorder()
			for i := 0; i < 16; i++ {
				f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 64_000, FG: true}
				StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, DefaultConfig(mode), rec, nil)
			}
			s.Run(2 * sim.Second)
			if d, tot := rec.CompletedCount(true); d != tot {
				t.Fatalf("%d/%d flows completed", d, tot)
			}
			ctr := n.Counters()
			if ctr.TotalDrops() == 0 {
				t.Fatal("expected congestion drops in this scenario")
			}
		})
	}
}

func TestCNPThrottlesRate(t *testing.T) {
	// Two senders into one port with RED marking: rates must fall below
	// line rate after CNPs arrive.
	s, n := roceStar(3, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	var snds []*Sender
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 10_000_000}
		c := StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, DefaultConfig(GBN), rec, nil)
		snds = append(snds, c.Sender)
	}
	s.Run(500 * sim.Microsecond)
	slowed := false
	for _, snd := range snds {
		if snd.Rate() < 40e9*0.95 {
			slowed = true
		}
	}
	if !slowed {
		t.Fatal("no sender throttled despite shared bottleneck with ECN")
	}
	s.Run(2 * sim.Second)
	if d, tot := rec.CompletedCount(false); d != tot {
		t.Fatalf("%d/%d flows completed", d, tot)
	}
}

func TestTLTRateMarkingLastAndRetx(t *testing.T) {
	// With TLT, the last packet of the message must be green so the
	// receiver can always detect preceding losses.
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(SACK)
	cfg.TLT = core.Config{Enabled: true, PeriodN: 96}
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 500_000}
	StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(sim.Second)
	fr := rec.Flows[0]
	if !fr.Done {
		t.Fatal("flow not done")
	}
	if fr.ImpPackets == 0 {
		t.Fatal("no important packets marked")
	}
	// 500 packets with N=96 periodic marking plus the last packet plus
	// per-packet important ACKs: data importants should be ~6.
	if fr.ImpPackets > int(fr.SentPackets)/2+600 {
		t.Fatalf("too many important packets: %d of %d", fr.ImpPackets, fr.SentPackets)
	}
}

func TestIRNWindowLimitsInflight(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(IRN)
	cfg.BDPPkts = 10
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	// Sample inflight during the run.
	maxIn := int64(0)
	var poll func()
	poll = func() {
		if in := c.Sender.board.InFlight(); in > maxIn {
			maxIn = in
		}
		if !c.Sender.Done() {
			s.After(10*sim.Microsecond, poll)
		}
	}
	s.After(0, poll)
	s.Run(sim.Second)
	if !rec.Flows[0].Done {
		t.Fatal("flow not done")
	}
	if maxIn > 10 {
		t.Fatalf("IRN inflight %d exceeded BDP window 10", maxIn)
	}
}
