package dcqcn

import (
	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Receiver is the responder side of a queue pair: it generates ACKs (and
// NACKs for go-back-N), echoes congestion via CNPs, and detects message
// completion.
type Receiver struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config
	rec  *stats.FlowRecord

	n        int64
	expected int64              // GBN in-order pointer
	rcv      transport.RangeSet // SACK/IRN out-of-order state
	cum      int64

	lastNackFor int64
	lastCnp     sim.Time
	cnpPrimed   bool

	tltWin *core.WindowReceiver // IRN

	// OnComplete fires once when the full message has arrived.
	OnComplete func()
	completed  bool
}

// NewReceiver constructs the responder for flow.
func NewReceiver(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config, rec *stats.FlowRecord) *Receiver {
	n := (flow.Size + int64(cfg.MSS) - 1) / int64(cfg.MSS)
	if n == 0 {
		n = 1
	}
	r := &Receiver{
		s: host.Sim(), host: host, flow: flow, cfg: cfg, rec: rec,
		n: n, lastNackFor: -1,
	}
	if cfg.Mode == IRN && cfg.TLT.Enabled {
		r.tltWin = core.NewWindowReceiver(cfg.TLT)
	}
	return r
}

// Delivered returns the packets delivered in order so far.
func (r *Receiver) Delivered() int64 {
	if r.cfg.Mode == GBN {
		return r.expected
	}
	return r.cum
}

// Handle implements fabric.PacketHandler for the data path.
func (r *Receiver) Handle(pkt *packet.Packet) {
	if pkt.Type != packet.Data {
		return
	}
	if pkt.CE {
		r.maybeCnp()
	}
	if r.cfg.Mode == GBN {
		r.handleGBN(pkt)
	} else {
		r.handleSelective(pkt)
	}
}

func (r *Receiver) controlMark() packet.Mark {
	return core.ControlMark(r.cfg.TLT.Enabled)
}

func (r *Receiver) maybeCnp() {
	now := r.s.Now()
	if r.cnpPrimed && now-r.lastCnp < r.cfg.CnpInterval {
		return
	}
	r.cnpPrimed = true
	r.lastCnp = now
	cnp := r.host.NewPacket()
	cnp.Flow, cnp.Dst = r.flow.ID, r.flow.Src
	cnp.Type = packet.Cnp
	cnp.Mark = r.controlMark()
	r.send(cnp)
}

func (r *Receiver) handleGBN(pkt *packet.Packet) {
	switch {
	case pkt.Seq == r.expected:
		r.expected++
		if r.lastNackFor < r.expected {
			r.lastNackFor = -1
		}
		r.sendAck(r.expected, nil, packet.Mark(0))
		if r.expected >= r.n {
			r.finish()
		}
	case pkt.Seq > r.expected:
		// Out of order: drop payload, NACK once per expected PSN.
		if r.lastNackFor != r.expected {
			r.lastNackFor = r.expected
			nack := r.host.NewPacket()
			nack.Flow, nack.Dst = r.flow.ID, r.flow.Src
			nack.Type = packet.Nack
			nack.Ack = r.expected
			nack.Mark = r.controlMark()
			r.send(nack)
		}
	default:
		// Duplicate of already-delivered data: re-ACK.
		r.sendAck(r.expected, nil, packet.Mark(0))
	}
}

func (r *Receiver) handleSelective(pkt *packet.Packet) {
	if r.tltWin != nil {
		r.tltWin.OnData(pkt.Mark)
	}
	if pkt.Seq >= r.cum {
		r.rcv.Add(pkt.Seq, pkt.Seq+1)
		r.cum = r.rcv.NextUncovered(r.cum)
		r.rcv.TrimBelow(r.cum)
	}
	mark := packet.Mark(0)
	if r.tltWin != nil {
		mark = r.tltWin.TakeAckMark()
	}
	ack := r.buildAck(r.cum, r.rcv.Blocks(8), mark)
	// Echo the data packet's send time: the sender uses it for
	// RACK-style invalidation of retransmissions that were themselves
	// lost (the per-OOO-arrival NACK behaviour of commercial RoCE NICs).
	ack.EchoTS = pkt.SentAt
	r.send(ack)
	if r.cum >= r.n {
		r.finish()
	}
}

func (r *Receiver) sendAck(cum int64, blocks []packet.SackBlock, mark packet.Mark) {
	r.send(r.buildAck(cum, blocks, mark))
}

func (r *Receiver) buildAck(cum int64, blocks []packet.SackBlock, mark packet.Mark) *packet.Packet {
	if mark == packet.Mark(0) {
		mark = r.controlMark()
	}
	ack := r.host.NewPacket()
	ack.Flow, ack.Dst = r.flow.ID, r.flow.Src
	ack.Type = packet.Ack
	ack.Ack = cum
	ack.Sack = blocks
	ack.Mark = mark
	return ack
}

func (r *Receiver) send(pkt *packet.Packet) {
	if r.rec != nil {
		// Receiver-owned counters: the sender may live on another shard.
		size := int64(pkt.WireSize())
		r.rec.RxTotalBytes += size
		if pkt.Important() {
			r.rec.RxImpPackets++
			r.rec.RxImpBytes += size
		}
	}
	r.host.Send(pkt)
}

func (r *Receiver) finish() {
	if r.completed {
		return
	}
	r.completed = true
	if r.OnComplete != nil {
		r.OnComplete()
	}
}
