// Package dcqcn implements the RoCE-family rate-based transports of the
// paper's evaluation: vanilla DCQCN with go-back-N recovery, DCQCN with
// SACK (selective retransmission, no window), and DCQCN with IRN (BDP
// window, selective retransmission, RTO_high/RTO_low). TLT augments the
// first two with the rate-based marking policy (§5.2) and IRN with the
// window-based policy (§5.1).
package dcqcn

import (
	"tlt/internal/core"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

// Mode selects the loss-recovery variant.
type Mode uint8

// Recovery variants.
const (
	GBN  Mode = iota // vanilla RoCE go-back-N
	SACK             // selective retransmission, unlimited window
	IRN              // selective retransmission + BDP window + RTO_low
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case GBN:
		return "gbn"
	case SACK:
		return "sack"
	case IRN:
		return "irn"
	}
	return "?"
}

// Config parametrizes a DCQCN queue pair.
type Config struct {
	Mode Mode
	MSS  int

	LineRateBps int64
	MinRateBps  int64

	// DCQCN congestion parameters.
	G                 float64  // alpha gain (1/256)
	AIBps             float64  // additive increase
	HAIBps            float64  // hyper increase
	FastRecoverySteps int      // stages of R=(Rt+R)/2 after a cut
	HyperAfterSteps   int      // stages after which HAI applies
	RPTimer           sim.Time // rate-increase timer period
	AlphaTimer        sim.Time // alpha decay period
	ByteCounter       int64    // rate-increase byte counter
	CnpInterval       sim.Time // min gap between CNPs at the receiver

	RTO transport.RTOConfig // static RTO (4 ms for GBN/SACK)

	// IRN parameters (Mittal et al., recommended values in §7.1).
	RTOLow  sim.Time
	NLow    int64
	BDPPkts int64

	TLT core.Config
}

// DefaultConfig returns the paper's RoCE settings for a 40 Gbps fabric:
// static 4 ms RTO, DCQCN parameters from Zhu et al., and for IRN a BDP
// window with RTO_high=1930 µs / RTO_low=100 µs.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Mode:              mode,
		MSS:               transport.MSS,
		LineRateBps:       40e9,
		MinRateBps:        100e6,
		G:                 1.0 / 256.0,
		AIBps:             40e6,
		HAIBps:            1e9,
		FastRecoverySteps: 5,
		HyperAfterSteps:   8,
		RPTimer:           55 * sim.Microsecond,
		AlphaTimer:        55 * sim.Microsecond,
		ByteCounter:       10_000_000,
		CnpInterval:       50 * sim.Microsecond,
		RTO:               transport.RTOConfig{Fixed: 4 * sim.Millisecond},
	}
	if mode == IRN {
		cfg.RTO = transport.RTOConfig{Fixed: 1930 * sim.Microsecond}
		// RTO_low must exceed the worst-case RTT under TLT's bounded
		// queues (~200 kB of queueing is ~40 µs per congested hop) or
		// it fires spuriously during incast.
		cfg.RTOLow = 320 * sim.Microsecond
		cfg.NLow = 3
		// BDP at 1 µs links: 8 hops round trip ≈ 10 µs → 50 kB ≈ 50 pkts.
		cfg.BDPPkts = 50
	}
	return cfg
}
