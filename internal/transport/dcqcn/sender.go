package dcqcn

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Typed event kinds: the pacing tick (the hottest event in every DCQCN
// run), the DCQCN rate-increase/alpha timers and the lazy RTO tick all
// fire through static handlers on preallocated per-sender events, so
// re-arming never boxes a method-value closure.
var kindSendOne, kindRPTick, kindAlphaTick, kindRTOTick sim.EventKind

func init() {
	kindSendOne = sim.NewKind(func(_, arg any) { arg.(*Sender).sendOne() })
	kindRPTick = sim.NewKind(func(_, arg any) { arg.(*Sender).rpTick() })
	kindAlphaTick = sim.NewKind(func(_, arg any) { arg.(*Sender).alphaTick() })
	kindRTOTick = sim.NewKind(func(_, arg any) { arg.(*Sender).rtoTick() })
}

// Sender is a DCQCN queue pair transmitting one message (flow) at a
// paced rate, with the configured recovery variant.
type Sender struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config

	rec      *stats.FlowRecord
	recorder *stats.Recorder
	onDone   func()

	n       int64 // packets in the message
	lastLen int   // payload of the final packet
	board   *transport.PktBoard
	maxSent int64 // highest PSN ever sent + 1 (go-back-N rewinds board.Nxt)

	// Rate control state.
	rate, target float64 // bps
	alpha        float64
	stage        int
	bytesCtr     int64
	rpTimer      sim.Timer
	alphaTimer   sim.Timer
	rpEv         *sim.Event // preallocated tick events (lazily created)
	alphaEv      *sim.Event

	// Pacing.
	nextFree  sim.Time
	sendTimer sim.Timer
	sendEv    *sim.Event

	rtoDeadline sim.Time // lazy RTO: 0 = disarmed
	rtoPending  bool
	rtoEv       *sim.Event
	rtoIsLow    bool // armed with IRN's RTO_low
	backoff     uint // exponential backoff shift (only if RTO.MaxBackoffShift > 0)
	retries     int  // consecutive full-RTO rounds without forward progress

	// TLT marking: rate machine for GBN/SACK, window machine for IRN.
	tltRate    *core.RateSender
	tltWin     *core.WindowSender
	roundStart bool // next retransmission starts a round

	done    bool
	aborted bool

	// OnAbort fires once when the QP exhausts RTO.MaxRetries consecutive
	// timeouts without progress (IB retry-count exceeded). May be nil.
	OnAbort func()
}

// NewSender constructs a queue pair sender. The message is flow.Size
// bytes, segmented into MSS packets.
func NewSender(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config,
	rec *stats.FlowRecord, recorder *stats.Recorder, onDone func()) *Sender {
	n := (flow.Size + int64(cfg.MSS) - 1) / int64(cfg.MSS)
	if n == 0 {
		n = 1
	}
	lastLen := int(flow.Size - (n-1)*int64(cfg.MSS))
	cfg.TLT.Flow = flow.ID
	snd := &Sender{
		s: host.Sim(), host: host, flow: flow, cfg: cfg,
		rec: rec, recorder: recorder, onDone: onDone,
		n: n, lastLen: lastLen,
		board:  transport.NewPktBoard(n),
		rate:   float64(cfg.LineRateBps),
		target: float64(cfg.LineRateBps),
	}
	if cfg.TLT.Enabled {
		if cfg.Mode == IRN {
			snd.tltWin = core.NewWindowSender(cfg.TLT)
		} else {
			snd.tltRate = core.NewRateSender(cfg.TLT)
		}
	}
	return snd
}

// Start begins transmission.
func (s *Sender) Start() {
	s.schedule()
	s.armRTO()
}

// FlowStatus implements transport.StatusReporter for stall reports.
func (s *Sender) FlowStatus() transport.FlowStatus {
	state := "open"
	switch {
	case s.aborted:
		state = "aborted"
	case s.done:
		state = "done"
	case s.board.HasLoss():
		state = "loss-recovery"
	case s.roundStart:
		state = "retx-round"
	}
	mss := int64(s.cfg.MSS)
	fs := transport.FlowStatus{
		Flow:              s.flow.ID,
		Transport:         "dcqcn",
		State:             fmt.Sprintf("%s(rate=%.1fGbps)", state, s.rate/1e9),
		Done:              s.done,
		Aborted:           s.aborted,
		AckedBytes:        min64(s.board.Una*mss, s.flow.Size),
		TotalBytes:        s.flow.Size,
		OutstandingBytes:  s.board.InFlight() * mss,
		LostBytes:         s.board.PendingRetx() * mss,
		ImportantInFlight: s.tltWin != nil && s.tltWin.InFlight(),
		RTOArmed:          s.rtoDeadline > 0,
		RTODeadline:       s.rtoDeadline,
	}
	if s.sendTimer.Pending() {
		fs.Timers = append(fs.Timers, "pacing-pending")
	}
	return fs
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Done reports sender-side completion.
func (s *Sender) Done() bool { return s.done }

// Rate returns the current sending rate in bps (for tests).
func (s *Sender) Rate() float64 { return s.rate }

// Handle implements fabric.PacketHandler for ACK/NACK/CNP.
func (s *Sender) Handle(pkt *packet.Packet) {
	if s.done {
		return
	}
	switch pkt.Type {
	case packet.Ack:
		s.onAck(pkt)
	case packet.Nack:
		s.onNack(pkt)
	case packet.Cnp:
		s.onCnp()
	}
}

func (s *Sender) windowOK() bool {
	if s.cfg.Mode != IRN || s.cfg.BDPPkts <= 0 {
		return true
	}
	return s.board.InFlight() < s.cfg.BDPPkts
}

// pickPSN chooses the next PSN to transmit: retransmissions first, then
// fresh data subject to the IRN window. A go-back-N rewind makes PSNs
// below maxSent come out of the "fresh" path; they are retransmissions
// all the same (Fig. 4: the first of them must be marked important).
func (s *Sender) pickPSN() (psn int64, isRetx, ok bool) {
	if p := s.board.NextRetx(); p >= 0 {
		return p, true, true
	}
	if s.board.Nxt < s.n && s.windowOK() {
		return s.board.Nxt, s.board.Nxt < s.maxSent, true
	}
	return 0, false, false
}

func (s *Sender) schedule() {
	if s.done || s.sendTimer.Pending() {
		return
	}
	if _, _, ok := s.pickPSN(); !ok {
		return
	}
	at := s.s.Now()
	if s.nextFree > at {
		at = s.nextFree
	}
	if s.sendEv == nil {
		s.sendEv = s.s.NewKindEvent(kindSendOne, 0, s)
	}
	s.sendTimer = s.s.ScheduleTimer(s.sendEv, at)
}

func (s *Sender) sendOne() {
	if s.done {
		return
	}
	psn, isRetx, ok := s.pickPSN()
	if !ok {
		return
	}
	s.transmit(psn, isRetx, packet.Mark(0xff))
	s.schedule()
}

// transmit puts PSN on the wire. markOverride of 0xff means "derive from
// the TLT machines"; any other value forces the mark (clock injections).
func (s *Sender) transmit(psn int64, isRetx bool, markOverride packet.Mark) {
	now := s.s.Now()
	length := s.cfg.MSS
	last := psn == s.n-1
	if last {
		length = s.lastLen
	}

	mark := packet.Unimportant
	switch {
	case markOverride != packet.Mark(0xff):
		mark = markOverride
	case s.tltRate != nil:
		// §5.2: mark the first and the last packet of a retransmission
		// round, and the last packet of the message. For go-back-N the
		// round's last packet is the end of the rewound window; for
		// selective modes it is the final pending retransmission.
		roundEnd := s.cfg.Mode != GBN && s.board.PendingRetx() <= 1
		roundEdge := isRetx && (s.roundStart || roundEnd)
		mark = s.tltRate.TakeMark(last, roundEdge)
		if isRetx {
			s.roundStart = false
		}
	case s.tltWin != nil:
		more := s.moreAfter(psn, isRetx)
		mark = s.tltWin.TakeMark(!more, now)
	}

	// Field-by-field fill on the zeroed pooled packet (a composite
	// literal would copy the whole INT-array-bearing struct).
	pkt := s.host.NewPacket()
	pkt.Flow, pkt.Dst = s.flow.ID, s.flow.Dst
	pkt.Type = packet.Data
	pkt.Seq, pkt.Len = psn, length
	pkt.Mark = mark
	pkt.ECT = true
	pkt.SentAt = now
	pkt.IsRetx = isRetx
	pkt.LastPkt = last
	s.board.OnSent(psn, isRetx, now)
	if psn >= s.maxSent {
		s.maxSent = psn + 1
	}
	if isRetx {
		s.rec.RetxPackets++
	}
	s.account(pkt)
	s.host.Send(pkt)

	// Pacing + rate-increase byte counter.
	wire := int64(pkt.WireSize())
	s.nextFree = now + sim.Time(float64(wire*8)*1e9/s.rate)
	s.bytesCtr += wire
	if s.cfg.ByteCounter > 0 && s.bytesCtr >= s.cfg.ByteCounter {
		s.bytesCtr = 0
		s.increase()
	}
}

func (s *Sender) moreAfter(psn int64, isRetx bool) bool {
	// Whether another transmission could immediately follow.
	if isRetx {
		for p := psn + 1; p < s.board.Nxt; p++ {
			st := s.board.State(p)
			if st.Lost && !st.Retx {
				return true
			}
		}
	}
	if psn+1 < s.n && psn+1 >= s.board.Nxt {
		// Fresh send: more fresh data exists if window allows one more.
		if s.cfg.Mode != IRN || s.board.InFlight()+1 < s.cfg.BDPPkts {
			return true
		}
	}
	return false
}

func (s *Sender) account(pkt *packet.Packet) {
	s.rec.SentPackets++
	size := int64(pkt.WireSize())
	s.rec.TotalBytes += size
	if pkt.Important() {
		s.rec.ImpPackets++
		s.rec.ImpBytes += size
	}
}

func (s *Sender) onAck(pkt *packet.Packet) {
	// TLT window echo (IRN).
	var impSentAt sim.Time
	rackOK := false
	if s.tltWin != nil {
		switch pkt.Mark {
		case packet.ImportantEcho, packet.ImportantClockEcho:
			impSentAt, rackOK = s.tltWin.OnEcho()
		}
	}

	progressed := s.board.Ack(pkt.Ack)
	if s.cfg.Mode != GBN {
		hadLoss := s.board.HasLoss()
		s.board.Sack(pkt.Sack)
		if rackOK {
			s.board.RackMark(impSentAt)
		}
		// Every ACK proves its data packet round-tripped: anything sent
		// strictly earlier and still unacknowledged — including stale
		// retransmissions — is lost (commercial RoCE NACK semantics).
		if pkt.EchoTS > 0 {
			s.board.RackMark(pkt.EchoTS)
		}
		s.board.ApplyLostEdge()
		if !hadLoss && s.board.HasLoss() {
			s.roundStart = true
			s.rec.FastRecov++
		}
	}

	if s.board.Complete() {
		s.complete()
		return
	}
	if progressed {
		s.backoff = 0
		s.retries = 0 // Karn: forward progress resets the give-up counter
		s.armRTO()
	}
	s.schedule()

	// IRN + TLT important clocking: keep one important packet in flight
	// when the window is closed.
	if s.tltWin != nil && s.tltWin.Armed() {
		if _, _, ok := s.pickPSN(); !ok || s.nextFree > s.s.Now() {
			s.importantClock()
		}
	}
}

// importantClock (IRN): retransmit the first unsacked packet immediately,
// marked ImportantClockData, bypassing window and pacing.
func (s *Sender) importantClock() {
	psn := s.board.NextRetx()
	isRetx := true
	if psn < 0 {
		psn = s.board.FirstUnsacked()
		isRetx = false
		if psn < 0 {
			return
		}
	}
	s.rec.ClockSends++
	length := int64(s.cfg.MSS)
	if psn == s.n-1 {
		length = int64(s.lastLen)
	}
	s.rec.ClockBytes += length
	if !isRetx {
		s.rec.RetxPackets++ // redundant duplicate of an outstanding PSN
	}
	s.transmit(psn, isRetx, s.tltWin.TakeClockMark(s.s.Now()))
}

func (s *Sender) onNack(pkt *packet.Packet) {
	// Go-back-N: the receiver expects pkt.Ack; everything below it was
	// delivered in order.
	if s.board.Ack(pkt.Ack) {
		s.backoff = 0
		s.retries = 0
	}
	if s.board.Complete() {
		s.complete()
		return
	}
	s.board.Rewind(pkt.Ack)
	s.roundStart = true
	s.rec.FastRecov++
	s.armRTO()
	s.schedule()
}

func (s *Sender) onCnp() {
	s.target = s.rate
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.rate *= 1 - s.alpha/2
	if s.rate < float64(s.cfg.MinRateBps) {
		s.rate = float64(s.cfg.MinRateBps)
	}
	s.stage = 0
	s.bytesCtr = 0
	s.startRateTimers()
}

func (s *Sender) startRateTimers() {
	if !s.rpTimer.Pending() {
		if s.rpEv == nil {
			s.rpEv = s.s.NewKindEvent(kindRPTick, 0, s)
		}
		s.rpTimer = s.s.ScheduleTimer(s.rpEv, s.s.Now()+s.cfg.RPTimer)
	}
	if !s.alphaTimer.Pending() {
		if s.alphaEv == nil {
			s.alphaEv = s.s.NewKindEvent(kindAlphaTick, 0, s)
		}
		s.alphaTimer = s.s.ScheduleTimer(s.alphaEv, s.s.Now()+s.cfg.AlphaTimer)
	}
}

func (s *Sender) rpTick() {
	if s.done {
		return
	}
	s.increase()
	if s.rate < float64(s.cfg.LineRateBps)*0.999 {
		s.rpTimer = s.s.ScheduleTimer(s.rpEv, s.s.Now()+s.cfg.RPTimer)
	}
}

func (s *Sender) alphaTick() {
	if s.done {
		return
	}
	s.alpha *= 1 - s.cfg.G
	if s.alpha > 1e-4 {
		s.alphaTimer = s.s.ScheduleTimer(s.alphaEv, s.s.Now()+s.cfg.AlphaTimer)
	}
}

// increase performs one DCQCN rate-increase event: fast recovery toward
// the target, then additive, then hyper increase.
func (s *Sender) increase() {
	s.stage++
	line := float64(s.cfg.LineRateBps)
	switch {
	case s.stage <= s.cfg.FastRecoverySteps:
		// fast recovery: converge to target
	case s.stage <= s.cfg.HyperAfterSteps:
		s.target += s.cfg.AIBps
	default:
		s.target += s.cfg.HAIBps
	}
	if s.target > line {
		s.target = line
	}
	s.rate = (s.target + s.rate) / 2
	if s.rate > line {
		s.rate = line
	}
}

func (s *Sender) armRTO() {
	if s.done {
		s.rtoDeadline = 0
		return
	}
	rto := s.cfg.RTO.Fixed << s.backoff
	s.rtoIsLow = false
	if s.cfg.Mode == IRN && s.cfg.RTOLow > 0 && s.board.InFlight() < s.cfg.NLow {
		// RTO_low is a designed recovery path, never backed off.
		rto = s.cfg.RTOLow
		s.rtoIsLow = true
	}
	s.rtoDeadline = s.s.Now() + rto
	if !s.rtoPending {
		s.rtoPending = true
		if s.rtoEv == nil {
			s.rtoEv = s.s.NewKindEvent(kindRTOTick, 0, s)
		}
		s.s.Schedule(s.rtoEv, s.rtoDeadline)
	}
}

func (s *Sender) rtoTick() {
	s.rtoPending = false
	if s.done || s.rtoDeadline == 0 {
		return
	}
	if now := s.s.Now(); now < s.rtoDeadline {
		s.rtoPending = true
		s.s.Schedule(s.rtoEv, s.rtoDeadline)
		return
	}
	s.onRTO()
}

func (s *Sender) onRTO() {
	if s.done {
		return
	}
	if s.board.Una >= s.board.Nxt && s.board.Nxt >= s.n {
		return
	}
	if s.rtoIsLow {
		// IRN's low timeout is a designed recovery path for tiny
		// outstanding windows (Mittal et al.), not a stall.
		s.rec.RTOLowFires++
	} else {
		s.rec.Timeouts++
		s.retries++
		if s.cfg.RTO.MaxRetries > 0 && s.retries >= s.cfg.RTO.MaxRetries {
			s.abort()
			return
		}
		// RoCE static timers do not back off by default (IB verbs);
		// MaxBackoffShift opts a QP into exponential backoff.
		if s.backoff < s.cfg.RTO.MaxBackoffShift {
			s.backoff++
		}
	}
	if s.cfg.Mode == GBN {
		s.board.Rewind(s.board.Una)
		s.roundStart = true
	} else {
		s.board.MarkAllLost()
		if s.tltWin != nil {
			s.tltWin.Reset()
		}
		s.roundStart = true
	}
	s.armRTO()
	s.schedule()
}

func (s *Sender) complete() {
	if s.done {
		return
	}
	s.done = true
	s.rtoDeadline = 0
	for _, t := range []sim.Timer{s.sendTimer, s.rpTimer, s.alphaTimer} {
		t.Stop()
	}
	if s.onDone != nil {
		s.onDone()
	}
}

// abort tears the QP down after RTO.MaxRetries consecutive timeouts with
// no progress: IB retry-count exhaustion surfaces as a completion error
// rather than retrying into a black hole forever.
func (s *Sender) abort() {
	if s.done {
		return
	}
	s.done = true
	s.aborted = true
	s.rtoDeadline = 0
	for _, t := range []sim.Timer{s.sendTimer, s.rpTimer, s.alphaTimer} {
		t.Stop()
	}
	if s.tltWin != nil {
		s.tltWin.Reset()
	}
	if s.OnAbort != nil {
		s.OnAbort()
	}
}

// Aborted reports whether the QP gave up (for tests).
func (s *Sender) Aborted() bool { return s.aborted }
