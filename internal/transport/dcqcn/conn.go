package dcqcn

import (
	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Conn bundles the two ends of a queue pair.
type Conn struct {
	Sender   *Sender
	Receiver *Receiver
}

// StartFlow creates a queue pair carrying flow.Size bytes from src to dst
// starting at flow.Start; the FCT is stamped when the receiver has the
// whole message.
func StartFlow(s *sim.Sim, src, dst *fabric.Host, flow *transport.Flow, cfg Config,
	recorder *stats.Recorder, onDone func(*stats.FlowRecord)) *Conn {
	rec := recorder.NewFlowRecord(flow)
	snd := NewSender(s, src, flow, cfg, rec, recorder, nil)
	rcv := NewReceiver(s, dst, flow, cfg, rec)
	src.Register(flow.ID, snd)
	dst.Register(flow.ID, rcv)
	// Completion runs on the receiver's shard, abort on the sender's;
	// each closure touches only its own side of the record (see
	// stats.FlowRecord). onDone callers that must fire once per flow
	// deduplicate themselves.
	rcv.OnComplete = func() {
		if !rec.Done {
			recorder.FlowDone(rec, dst.Sim().Now())
			if onDone != nil {
				onDone(rec)
			}
		}
	}
	snd.OnAbort = func() {
		if rec.Aborted {
			return
		}
		recorder.FlowAborted(rec, src.Sim().Now())
		if onDone != nil {
			onDone(rec)
		}
	}
	src.Sim().At(flow.Start, snd.Start)
	return &Conn{Sender: snd, Receiver: rcv}
}
