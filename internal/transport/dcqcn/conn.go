package dcqcn

import (
	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Conn bundles the two ends of a queue pair.
type Conn struct {
	Sender   *Sender
	Receiver *Receiver
}

// StartFlow creates a queue pair carrying flow.Size bytes from src to dst
// starting at flow.Start; the FCT is stamped when the receiver has the
// whole message.
func StartFlow(s *sim.Sim, src, dst *fabric.Host, flow *transport.Flow, cfg Config,
	recorder *stats.Recorder, onDone func(*stats.FlowRecord)) *Conn {
	rec := recorder.NewFlowRecord(flow)
	snd := NewSender(s, src, flow, cfg, rec, recorder, nil)
	rcv := NewReceiver(s, dst, flow, cfg, rec)
	src.Register(flow.ID, snd)
	dst.Register(flow.ID, rcv)
	rcv.OnComplete = func() {
		if !rec.Done {
			recorder.FlowDone(rec, s.Now())
			if onDone != nil {
				onDone(rec)
			}
		}
	}
	snd.OnAbort = func() {
		if rec.Done || rec.Aborted {
			return
		}
		recorder.FlowAborted(rec, s.Now())
		if onDone != nil {
			onDone(rec)
		}
	}
	s.At(flow.Start, snd.Start)
	return &Conn{Sender: snd, Receiver: rcv}
}
