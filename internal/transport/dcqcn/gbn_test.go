package dcqcn

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// TestGBNRewindMarksRoundStart reproduces the paper's Figure 4 scenario:
// the first packet of every retransmission round must travel green, or a
// second loss of the retransmission leaves the sender stalled until RTO.
func TestGBNRewindMarksRoundStart(t *testing.T) {
	// Star with severe color-aware dropping so the initial burst loses
	// its middle and rewind rounds themselves face drops.
	s, n := roceStar(96, fabric.SwitchConfig{
		BufferBytes:    4_500_000,
		ColorThreshold: 200_000,
		ECN:            fabric.ECNRed,
		KMin:           50_000, KMax: 200_000, PMax: 0.2,
	})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(GBN)
	cfg.TLT = core.Config{Enabled: true, PeriodN: 96}
	id := packet.FlowID(1)
	for h := 1; h < 96; h++ {
		for k := 0; k < 8; k++ {
			f := &transport.Flow{ID: id, Src: packet.NodeID(h), Dst: 0, Size: 8_000, FG: true}
			id++
			StartFlow(s, n.Hosts[h], n.Hosts[0], f, cfg, rec, nil)
		}
	}
	s.Run(5 * sim.Second)
	done, total := rec.CompletedCount(true)
	if done != total {
		t.Fatalf("%d/%d flows completed", done, total)
	}
	if got := rec.TimeoutsAll(); got != 0 {
		t.Fatalf("GBN+TLT incast hit %d timeouts; round-start marking broken", got)
	}
	ctr := n.Counters()
	if ctr.DropRedColor == 0 {
		t.Fatal("scenario should exercise color-aware dropping")
	}
	if ctr.DropGreen != 0 {
		t.Fatalf("%d important packets dropped", ctr.DropGreen)
	}
	fcts := rec.Select(true)
	if worst := stats.Percentile(fcts, 1); worst > 0.02 {
		t.Fatalf("worst FCT %v: recovery is stalling", sim.Time(worst*1e9))
	}
}

// TestGBNWithoutTLTTimesOutUnderSameStress is the control for the above.
func TestGBNWithoutTLTTimesOutUnderSameStress(t *testing.T) {
	s, n := roceStar(96, fabric.SwitchConfig{
		BufferBytes: 500_000, // tighter: baseline has no color threshold
		ECN:         fabric.ECNRed,
		KMin:        50_000, KMax: 200_000, PMax: 0.2,
	})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(GBN)
	id := packet.FlowID(1)
	for h := 1; h < 96; h++ {
		for k := 0; k < 8; k++ {
			f := &transport.Flow{ID: id, Src: packet.NodeID(h), Dst: 0, Size: 8_000, FG: true}
			id++
			StartFlow(s, n.Hosts[h], n.Hosts[0], f, cfg, rec, nil)
		}
	}
	s.Run(10 * sim.Second)
	if done, total := rec.CompletedCount(true); done != total {
		t.Fatalf("%d/%d flows completed", done, total)
	}
	if rec.TimeoutsAll() == 0 {
		t.Fatal("baseline GBN under overload should hit timeouts")
	}
}

func TestNackImpliesCumulativeAck(t *testing.T) {
	// A NACK for PSN e acknowledges everything below e.
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(GBN), rec, nil)
	// Hold back the ACK path so the cumulative state is still fresh
	// when the synthetic NACK arrives.
	n.Switches[0].Tx(0).Pause()
	s.Run(10 * sim.Microsecond)
	c.Sender.Handle(&packet.Packet{Flow: 1, Type: packet.Nack, Ack: 5})
	if c.Sender.board.Una != 5 {
		t.Fatalf("una = %d after NACK(5)", c.Sender.board.Una)
	}
	if c.Sender.board.Nxt != 5 {
		t.Fatalf("nxt = %d, want rewind to 5", c.Sender.board.Nxt)
	}
	n.Switches[0].Tx(0).Resume()
	s.Run(5 * sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete after rewind")
	}
}

func TestIRNRTOLowNotCountedAsTimeout(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(IRN)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 2_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	// Force an RTO_low fire by suppressing delivery: pause the host
	// uplink so the two packets sit in the NIC.
	n.Hosts[0].NICTx().Pause()
	s.Run(cfg.RTOLow + 50*sim.Microsecond)
	if rec.Flows[0].RTOLowFires == 0 {
		t.Fatal("RTO_low should have fired")
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatal("RTO_low fires must not count as timeouts")
	}
	n.Hosts[0].NICTx().Resume()
	s.Run(10 * sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
}

// blackhole retains packets past Handle, so it must copy: the host
// recycles the delivered packet once Handle returns.
type blackhole struct {
	got []packet.Packet
}

func (b *blackhole) Handle(p *packet.Packet) { b.got = append(b.got, *p) }

func (b *blackhole) sentAt(psn int64, nth int) sim.Time {
	seen := 0
	for _, p := range b.got {
		if p.Seq == psn {
			seen++
			if seen == nth {
				return p.SentAt
			}
		}
	}
	return 0
}

func (b *blackhole) count(psn int64) int {
	n := 0
	for _, p := range b.got {
		if p.Seq == psn {
			n++
		}
	}
	return n
}

// TestSackRecoversLostRetransmission drives the sender with crafted ACKs:
// a retransmission that is itself lost must be invalidated by the echoed
// send-time of a later-sent packet (commercial RoCE NACK semantics) and
// retransmitted again, with no 4ms RTO involved.
func TestSackRecoversLostRetransmission(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(SACK)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	// Swallow all data at the receiver host; we play the receiver.
	bh := &blackhole{}
	n.Hosts[1].Register(1, bh)

	s.Run(50 * sim.Microsecond) // initial 10 packets sent
	if len(bh.got) != 10 {
		t.Fatalf("initial sends = %d", len(bh.got))
	}
	// "PSN 9 arrived, 0..8 lost": SACK 9 with its echoed send time.
	c.Sender.Handle(&packet.Packet{
		Flow: 1, Type: packet.Ack, Ack: 0,
		Sack:   []packet.SackBlock{{Start: 9, End: 10}},
		EchoTS: bh.sentAt(9, 1),
	})
	s.Run(s.Now() + 50*sim.Microsecond) // retransmissions of 0..8 go out
	if got := bh.count(0); got != 2 {
		t.Fatalf("PSN0 transmissions = %d, want original + retransmission", got)
	}
	// "The retransmission of 8 arrived but 0..7's retransmissions were
	// lost": the echo of retx-8 proves everything sent before it is gone.
	c.Sender.Handle(&packet.Packet{
		Flow: 1, Type: packet.Ack, Ack: 0,
		Sack:   []packet.SackBlock{{Start: 8, End: 10}},
		EchoTS: bh.sentAt(8, 2),
	})
	s.Run(s.Now() + 50*sim.Microsecond)
	if got := bh.count(0); got != 3 {
		t.Fatalf("PSN0 transmissions = %d, want a second retransmission", got)
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatalf("recovery used %d timeouts", rec.Flows[0].Timeouts)
	}
	if s.Now() >= 4*sim.Millisecond {
		t.Fatal("test ran past the static RTO; recovery was not timeout-less")
	}
	_ = c
}
