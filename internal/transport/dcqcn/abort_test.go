package dcqcn

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// blackholeQP builds a sender whose every packet vanishes on the wire.
func blackholeQP(t *testing.T, cfg Config, size int64) (*sim.Sim, *Sender, *stats.FlowRecord) {
	t.Helper()
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	atx.DropWhen(func(*packet.Packet) bool { return true })
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	rec := stats.NewRecorder()
	fr := rec.NewFlowRecord(flow)
	snd := NewSender(s, src, flow, cfg, fr, rec, nil)
	src.Register(1, snd)
	s.At(0, snd.Start)
	return s, snd, fr
}

// TestQPAbortAfterMaxRetries: retry-count exhaustion against a black
// hole tears the QP down after exactly MaxRetries static timeouts.
func TestQPAbortAfterMaxRetries(t *testing.T) {
	cfg := DefaultConfig(GBN)
	cfg.RTO.Fixed = sim.Millisecond
	cfg.RTO.MaxRetries = 4
	s, snd, fr := blackholeQP(t, cfg, 8_000)
	aborts := 0
	snd.OnAbort = func() { aborts++ }
	s.RunAll()
	if !snd.Aborted() || aborts != 1 {
		t.Fatalf("aborted=%v fires=%d, want abort exactly once", snd.Aborted(), aborts)
	}
	if fr.Timeouts != 4 {
		t.Fatalf("Timeouts = %d, want exactly MaxRetries=4", fr.Timeouts)
	}
	fs := snd.FlowStatus()
	if !fs.Aborted || fs.RTOArmed {
		t.Fatalf("FlowStatus = %+v, want aborted with disarmed RTO", fs)
	}
	// Static timer, no backoff: the 4th timeout lands at 4*Fixed.
	if s.Now() > 5*sim.Millisecond {
		t.Fatalf("abort at %v, want ~4ms (static cadence)", s.Now())
	}
}

// TestQPNoBackoffByDefault: RoCE static timers fire at a fixed cadence
// unless MaxBackoffShift opts into exponential backoff.
func TestQPNoBackoffByDefault(t *testing.T) {
	cfg := DefaultConfig(GBN)
	cfg.RTO.Fixed = sim.Millisecond
	s, _, fr := blackholeQP(t, cfg, 8_000)
	s.Run(10 * sim.Millisecond)
	if fr.Timeouts < 9 {
		t.Fatalf("Timeouts = %d at 10ms, want ~10 (fixed 1ms cadence)", fr.Timeouts)
	}

	cfg.RTO.MaxBackoffShift = 2
	s2, snd2, fr2 := blackholeQP(t, cfg, 8_000)
	// Backed off: 1, 3, 7, 11, 15... → far fewer fires in the window.
	s2.Run(10 * sim.Millisecond)
	if fr2.Timeouts > 4 {
		t.Fatalf("Timeouts = %d at 10ms with shift cap 2, want ≤4", fr2.Timeouts)
	}
	if snd2.backoff != 2 {
		t.Fatalf("backoff = %d, want capped at 2", snd2.backoff)
	}
}

// TestQPRetriesResetOnProgress (Karn): forward progress during a lossy
// episode resets the give-up counter, so a flow limping through a
// partial outage is not misclassified as black-holed.
func TestQPRetriesResetOnProgress(t *testing.T) {
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	window := true
	atx.DropWhen(func(p *packet.Packet) bool { return window && p.Type == packet.Data })

	cfg := DefaultConfig(GBN)
	cfg.RTO.Fixed = sim.Millisecond
	cfg.RTO.MaxRetries = 5
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 100_000}
	rec := stats.NewRecorder()
	c := StartFlow(s, src, dst, flow, cfg, rec, nil)

	// Black-hole for 3 timeouts' worth, then open the path: the retry
	// counter (at 3 of 5) must reset once ACKs flow again.
	s.At(3500*sim.Microsecond, func() { window = false })
	s.Run(30 * sim.Millisecond)
	if c.Sender.Aborted() {
		t.Fatalf("QP aborted despite recovering (timeouts=%d)", rec.Flows[0].Timeouts)
	}
	if !c.Sender.Done() {
		t.Fatal("flow incomplete after the outage lifted")
	}
	if c.Sender.retries != 0 {
		t.Fatalf("retries = %d after completion, want reset to 0", c.Sender.retries)
	}
}
