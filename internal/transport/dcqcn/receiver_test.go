package dcqcn

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

type ctrlCatcher struct {
	acks  []*packet.Packet
	nacks []*packet.Packet
	cnps  int
}

func (c *ctrlCatcher) Handle(p *packet.Packet) {
	switch p.Type {
	case packet.Ack:
		c.acks = append(c.acks, p)
	case packet.Nack:
		c.nacks = append(c.nacks, p)
	case packet.Cnp:
		c.cnps++
	}
}

func rxHarness(t *testing.T, mode Mode) (*sim.Sim, *Receiver, *ctrlCatcher) {
	t.Helper()
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000}
	rec := stats.NewRecorder().NewFlowRecord(flow)
	r := NewReceiver(s, dst, flow, DefaultConfig(mode), rec)
	dst.Register(1, r)
	cat := &ctrlCatcher{}
	src.Register(1, cat)
	return s, r, cat
}

func psn(seq int64, ce bool) *packet.Packet {
	return &packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Seq: seq, Len: 1000, CE: ce, SentAt: 1}
}

func TestGBNReceiverNacksOncePerHole(t *testing.T) {
	s, r, cat := rxHarness(t, GBN)
	r.Handle(psn(0, false))
	r.Handle(psn(2, false)) // out of order: NACK(1)
	r.Handle(psn(3, false)) // still expecting 1: suppressed
	r.Handle(psn(4, false)) // suppressed
	s.RunAll()
	if len(cat.nacks) != 1 || cat.nacks[0].Ack != 1 {
		t.Fatalf("nacks = %v", cat.nacks)
	}
	if r.Delivered() != 1 {
		t.Fatalf("delivered = %d (GBN discards OOO)", r.Delivered())
	}
	// The retransmission of 1 arrives: in-order progress resumes and a
	// NEW hole may be nacked again.
	r.Handle(psn(1, false))
	r.Handle(psn(3, false)) // hole at 2 now
	s.RunAll()
	if len(cat.nacks) != 2 || cat.nacks[1].Ack != 2 {
		t.Fatalf("nacks after recovery = %v", cat.nacks)
	}
}

func TestGBNReceiverAcksInOrder(t *testing.T) {
	s, r, cat := rxHarness(t, GBN)
	for i := int64(0); i < 5; i++ {
		r.Handle(psn(i, false))
	}
	s.RunAll()
	if len(cat.acks) != 5 {
		t.Fatalf("acks = %d", len(cat.acks))
	}
	if cat.acks[4].Ack != 5 {
		t.Fatalf("final cum = %d", cat.acks[4].Ack)
	}
	_ = r
}

func TestSelectiveReceiverSackBlocks(t *testing.T) {
	s, r, cat := rxHarness(t, SACK)
	r.Handle(psn(0, false))
	r.Handle(psn(3, false))
	r.Handle(psn(5, false))
	s.RunAll()
	last := cat.acks[len(cat.acks)-1]
	if last.Ack != 1 {
		t.Fatalf("cum = %d", last.Ack)
	}
	if len(last.Sack) != 2 {
		t.Fatalf("sack = %v", last.Sack)
	}
	if r.Delivered() != 1 {
		t.Fatalf("delivered = %d", r.Delivered())
	}
	// Out-of-order data is retained (unlike GBN): filling the holes
	// advances cumulative past everything.
	r.Handle(psn(1, false))
	r.Handle(psn(2, false))
	r.Handle(psn(4, false))
	s.RunAll()
	if got := cat.acks[len(cat.acks)-1].Ack; got != 6 {
		t.Fatalf("cum after fill = %d", got)
	}
}

func TestCnpRateLimited(t *testing.T) {
	s, r, cat := rxHarness(t, GBN)
	// 10 CE-marked packets back-to-back: only one CNP within the 50us
	// window.
	for i := int64(0); i < 10; i++ {
		r.Handle(psn(i, true))
	}
	s.RunAll()
	if cat.cnps != 1 {
		t.Fatalf("cnps = %d, want 1 (interval suppression)", cat.cnps)
	}
	// After the interval, another CE elicits a fresh CNP.
	s2 := s.Now() + 60*sim.Microsecond
	s.At(s2, func() { r.Handle(psn(10, true)) })
	s.RunAll()
	if cat.cnps != 2 {
		t.Fatalf("cnps = %d after interval, want 2", cat.cnps)
	}
}

func TestReceiverCompletionFiresOnce(t *testing.T) {
	s, r, _ := rxHarness(t, SACK)
	fired := 0
	r.OnComplete = func() { fired++ }
	for i := int64(0); i < 10; i++ {
		r.Handle(psn(i, false))
	}
	r.Handle(psn(9, false)) // duplicate after completion
	s.RunAll()
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times", fired)
	}
}
