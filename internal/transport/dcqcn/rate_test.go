package dcqcn

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

func TestCnpCutsRateAndRaisesAlpha(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(GBN)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(10 * sim.Microsecond)
	snd := c.Sender

	before := snd.Rate()
	snd.onCnp()
	after1 := snd.Rate()
	if after1 >= before {
		t.Fatalf("rate did not drop: %v -> %v", before, after1)
	}
	// alpha after first CNP is g; cut factor is (1 - g/2).
	wantCut := before * (1 - cfg.G/2)
	if diff := after1 - wantCut; diff > 1 || diff < -1 {
		t.Fatalf("first cut = %v, want %v", after1, wantCut)
	}
	// Repeated CNPs drive alpha up and the rate down multiplicatively,
	// clamped at the minimum.
	for i := 0; i < 500; i++ {
		snd.onCnp()
	}
	if snd.Rate() < float64(cfg.MinRateBps) {
		t.Fatalf("rate %v below floor", snd.Rate())
	}
	if snd.alpha <= cfg.G || snd.alpha > 1 {
		t.Fatalf("alpha = %v after many CNPs", snd.alpha)
	}
}

func TestRateIncreaseStages(t *testing.T) {
	s, n := roceStar(2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(GBN)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(10 * sim.Microsecond)
	snd := c.Sender

	snd.onCnp()
	cutRate := snd.Rate()
	target := snd.target

	// Fast recovery: each event halves the gap to the target without
	// raising the target.
	for i := 0; i < cfg.FastRecoverySteps; i++ {
		snd.increase()
	}
	if snd.target != target {
		t.Fatalf("fast recovery moved the target: %v -> %v", target, snd.target)
	}
	if snd.Rate() <= cutRate || snd.Rate() > target {
		t.Fatalf("fast recovery rate = %v, want in (%v, %v]", snd.Rate(), cutRate, target)
	}
	// Additive stage raises the target by AI per event.
	snd.increase()
	if want := target + cfg.AIBps; snd.target != want && snd.target != float64(cfg.LineRateBps) {
		t.Fatalf("additive target = %v, want %v", snd.target, want)
	}
	// Hyper stage accelerates.
	for i := 0; i < cfg.HyperAfterSteps; i++ {
		snd.increase()
	}
	tBefore := snd.target
	snd.increase()
	if snd.target != tBefore+cfg.HAIBps && snd.target != float64(cfg.LineRateBps) {
		t.Fatalf("hyper increase did not apply: %v -> %v", tBefore, snd.target)
	}
	// Rate never exceeds line rate.
	for i := 0; i < 1000; i++ {
		snd.increase()
	}
	if snd.Rate() > float64(cfg.LineRateBps) {
		t.Fatalf("rate %v above line rate", snd.Rate())
	}
}

func TestPacingRespectsRate(t *testing.T) {
	// At a throttled rate the flow takes proportionally longer.
	run := func(cut bool) sim.Time {
		s, n := roceStar(2, fabric.SwitchConfig{})
		rec := stats.NewRecorder()
		cfg := DefaultConfig(GBN)
		// Disable increase timers so the throttled rate stays put.
		cfg.RPTimer = sim.Second
		cfg.AlphaTimer = sim.Second
		cfg.ByteCounter = 1 << 40
		f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}
		c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
		if cut {
			s.At(0, func() {
				// alpha grows by g per CNP, so a sustained CNP storm is
				// needed to collapse the rate to the floor.
				for i := 0; i < 200; i++ {
					c.Sender.onCnp()
				}
			})
		}
		s.Run(20 * sim.Second)
		if !rec.Flows[0].Done {
			t.Fatal("flow incomplete")
		}
		return rec.Flows[0].FCT()
	}
	full := run(false)
	throttled := run(true)
	if throttled < 4*full {
		t.Fatalf("throttled FCT %v vs line-rate %v: pacing ineffective", throttled, full)
	}
}

func TestCnpGenerationInterval(t *testing.T) {
	// The receiver must emit at most one CNP per CnpInterval per flow.
	s, n := roceStar(3, fabric.SwitchConfig{
		BufferBytes: 4_500_000,
		ECN:         fabric.ECNRed,
		KMin:        10_000, KMax: 50_000, PMax: 1.0,
	})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(GBN)
	var cnps int
	// Count CNPs arriving at host 0's sender.
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 4_000_000}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	_ = cnps
	s.Run(2 * sim.Second)
	// Both flows complete despite heavy marking.
	if d, tot := rec.CompletedCount(false); d != tot {
		t.Fatalf("%d/%d complete", d, tot)
	}
}
