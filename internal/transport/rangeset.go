// Package transport holds machinery shared by every transport protocol in
// the repository: interval bookkeeping for SACK scoreboards and receive
// buffers, the Linux-style RTO estimator, and flow metadata.
package transport

import "tlt/internal/packet"

// RangeSet maintains a sorted set of disjoint half-open int64 intervals
// [start, end). It backs both receiver reassembly state (received byte or
// PSN ranges) and sender SACK scoreboards.
//
// The zero value is an empty set.
type RangeSet struct {
	r []packet.SackBlock
}

// Len returns the number of disjoint intervals.
func (s *RangeSet) Len() int { return len(s.r) }

// Empty reports whether the set covers nothing.
func (s *RangeSet) Empty() bool { return len(s.r) == 0 }

// Reset removes all intervals.
func (s *RangeSet) Reset() { s.r = s.r[:0] }

// Blocks returns up to max intervals, highest first (the order SACK
// options report most-recent data). max <= 0 returns all, lowest first.
func (s *RangeSet) Blocks(max int) []packet.SackBlock {
	if max <= 0 || max >= len(s.r) {
		out := make([]packet.SackBlock, len(s.r))
		copy(out, s.r)
		if max > 0 {
			// reverse for highest-first
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
		}
		return out
	}
	out := make([]packet.SackBlock, 0, max)
	for i := len(s.r) - 1; i >= 0 && len(out) < max; i-- {
		out = append(out, s.r[i])
	}
	return out
}

// Add inserts [start, end) and returns the number of newly covered units.
func (s *RangeSet) Add(start, end int64) int64 {
	if start >= end {
		return 0
	}
	// Find insertion window: all blocks overlapping or adjacent.
	i := 0
	for i < len(s.r) && s.r[i].End < start {
		i++
	}
	j := i
	newStart, newEnd := start, end
	var overlap int64
	for j < len(s.r) && s.r[j].Start <= end {
		b := s.r[j]
		if b.Start < newStart {
			newStart = b.Start
		}
		if b.End > newEnd {
			newEnd = b.End
		}
		lo, hi := max64(b.Start, start), min64(b.End, end)
		if hi > lo {
			overlap += hi - lo
		}
		j++
	}
	merged := packet.SackBlock{Start: newStart, End: newEnd}
	if j == i {
		s.r = append(s.r, packet.SackBlock{})
		copy(s.r[i+1:], s.r[i:])
		s.r[i] = merged
	} else {
		s.r[i] = merged
		s.r = append(s.r[:i+1], s.r[j:]...)
	}
	return (end - start) - overlap
}

// Contains reports whether x is covered.
func (s *RangeSet) Contains(x int64) bool {
	for _, b := range s.r {
		if x < b.Start {
			return false
		}
		if x < b.End {
			return true
		}
	}
	return false
}

// CoveredWithin returns how many units of [start, end) are covered.
func (s *RangeSet) CoveredWithin(start, end int64) int64 {
	var n int64
	for _, b := range s.r {
		if b.Start >= end {
			break
		}
		lo, hi := max64(b.Start, start), min64(b.End, end)
		if hi > lo {
			n += hi - lo
		}
	}
	return n
}

// NextUncovered returns the smallest y >= x that is not covered.
func (s *RangeSet) NextUncovered(x int64) int64 {
	for _, b := range s.r {
		if x < b.Start {
			return x
		}
		if x < b.End {
			x = b.End
		}
	}
	return x
}

// NextCoveredAtOrAfter returns the smallest covered y >= x, or end if none
// before end.
func (s *RangeSet) NextCoveredAtOrAfter(x, end int64) int64 {
	for _, b := range s.r {
		if b.End <= x {
			continue
		}
		if b.Start >= end {
			break
		}
		if b.Start > x {
			return min64(b.Start, end)
		}
		return x
	}
	return end
}

// Max returns the highest covered point + 1 would exceed; i.e. the End of
// the last interval, or 0 if empty.
func (s *RangeSet) Max() int64 {
	if len(s.r) == 0 {
		return 0
	}
	return s.r[len(s.r)-1].End
}

// TrimBelow removes coverage below x. Fully-trimmed blocks are shifted
// out in place rather than resliced forward: reslicing strands the
// leading capacity, so a long-lived set (a receiver trimming for the
// whole flow) would force Add to reallocate over and over.
func (s *RangeSet) TrimBelow(x int64) {
	i := 0
	for i < len(s.r) && s.r[i].End <= x {
		i++
	}
	if i > 0 {
		n := copy(s.r, s.r[i:])
		s.r = s.r[:n]
	}
	if len(s.r) > 0 && s.r[0].Start < x {
		s.r[0].Start = x
	}
}

// Total returns the total covered units.
func (s *RangeSet) Total() int64 {
	var n int64
	for _, b := range s.r {
		n += b.End - b.Start
	}
	return n
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
