package hpcc

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

// TestHPCCTLTClockRescuesStalledWindow: collapse HPCC's window via
// hostile INT feedback after losing the tail; the important ACK-clock
// must keep the flow alive without the 4ms static RTO.
func TestHPCCTLTClockRescuesStalledWindow(t *testing.T) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 4 << 20, INT: true, ColorThreshold: 200_000},
	})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(n.BaseRTT + 4*sim.Microsecond)
	cfg.TLT = core.Config{Enabled: true}
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 40_000}
	snd, _ := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)

	// Drop a mid-flow span of unimportant packets twice.
	drops := map[int64]int{}
	n.Hosts[0].NICTx().DropWhen(func(p *packet.Packet) bool {
		if p.Type == packet.Data && p.Seq >= 10 && p.Seq < 20 &&
			p.Mark == packet.Unimportant && drops[p.Seq] < 2 {
			drops[p.Seq]++
			return true
		}
		return false
	})
	s.Run(3 * sim.Millisecond) // less than the 4ms RTO
	if !snd.Done() {
		t.Fatal("flow incomplete before the static RTO: clocking failed to rescue")
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatalf("timeouts = %d", rec.Flows[0].Timeouts)
	}
	if rec.Flows[0].RetxPackets < 10 {
		t.Fatalf("retransmissions = %d, want the dropped span recovered", rec.Flows[0].RetxPackets)
	}
}

// TestHPCCTLTMarksBurstTail: the last packet of the initial window burst
// carries ImportantData so its echo covers the burst.
func TestHPCCTLTMarksBurstTail(t *testing.T) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 4 << 20, INT: true},
	})
	rec := stats.NewRecorder()
	cfg := DefaultConfig(n.BaseRTT + 4*sim.Microsecond)
	cfg.TLT = core.Config{Enabled: true}
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 200_000}
	var seen []packet.Mark
	n.Hosts[0].Trace = func(now sim.Time, dir string, p *packet.Packet) {
		if dir == "tx" && p.Type == packet.Data {
			seen = append(seen, p.Mark)
		}
	}
	snd, _ := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(sim.Second)
	if !snd.Done() {
		t.Fatal("flow incomplete")
	}
	imp := 0
	for _, m := range seen {
		if m == packet.ImportantData || m == packet.ImportantClockData {
			imp++
		}
	}
	if imp == 0 {
		t.Fatal("no important data packets on the wire")
	}
	// One important per RTT, not per packet: far fewer than total.
	if imp*3 > len(seen) {
		t.Fatalf("%d of %d packets important: marking too aggressive", imp, len(seen))
	}
}
