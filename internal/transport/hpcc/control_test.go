package hpcc

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

func isolated(t *testing.T) (*sim.Sim, *Sender) {
	t.Helper()
	s, n := hpccStar(2, 4_500_000)
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000_000}
	snd, _ := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(10*sim.Microsecond), rec, nil)
	s.Run(5 * sim.Microsecond) // let the first window go out
	return s, snd
}

func intAck(cum int64, q int64, txBytes int64, at sim.Time) *packet.Packet {
	pkt := &packet.Packet{Flow: 1, Type: packet.Ack, Ack: cum}
	pkt.AppendINT(packet.INTHop{
		QueueBytes: q, TxBytes: txBytes, Timestamp: at, RateBps: 40e9,
	})
	return pkt
}

func TestHPCCWindowShrinksOnHighUtilization(t *testing.T) {
	_, snd := isolated(t)
	w0 := snd.Window()
	// Two ACKs with a large standing queue and near-line tx rate: the
	// measured utilization exceeds eta and the window must multiply down.
	snd.Handle(intAck(1, 200_000, 1_000_000, 10*sim.Microsecond))
	snd.Handle(intAck(2, 200_000, 1_050_000, 20*sim.Microsecond))
	if snd.Window() >= w0 {
		t.Fatalf("window %v did not shrink from %v under congestion", snd.Window(), w0)
	}
}

func TestHPCCWindowRecoversWhenIdle(t *testing.T) {
	_, snd := isolated(t)
	// Congest first.
	snd.Handle(intAck(1, 300_000, 1_000_000, 10*sim.Microsecond))
	snd.Handle(intAck(2, 300_000, 1_050_000, 20*sim.Microsecond))
	low := snd.Window()
	// Now empty queue, low tx rate: utilization far below eta;
	// additive increase (and MIMD toward wc) must grow the window.
	ts := 30 * sim.Microsecond
	tx := int64(1_100_000)
	for i := int64(3); i < 40; i++ {
		snd.Handle(intAck(i, 0, tx, ts))
		ts += 10 * sim.Microsecond
		tx += 1000 // trickle: ~0.8% utilization
	}
	if snd.Window() <= low {
		t.Fatalf("window %v did not recover from %v", snd.Window(), low)
	}
}

func TestHPCCWindowClamps(t *testing.T) {
	_, snd := isolated(t)
	// Absurd congestion cannot push the window below one MSS.
	for i := int64(1); i < 50; i++ {
		snd.Handle(intAck(i, 10_000_000, 1_000_000+i*1000, sim.Time(i*10)*sim.Microsecond))
	}
	if snd.Window() < float64(snd.cfg.MSS) {
		t.Fatalf("window %v below 1 MSS", snd.Window())
	}
	// And never above the initial (line-rate) window.
	if snd.Window() > snd.winit {
		t.Fatalf("window %v above winit %v", snd.Window(), snd.winit)
	}
}

func TestHPCCFirstRTTBurstLoss(t *testing.T) {
	// The paper's observation: HPCC cannot protect the first-RTT burst.
	// A 32-to-1 incast with a small buffer must drop packets even
	// though HPCC converges to near-zero queues afterwards.
	s, n := hpccStar(33, 400_000)
	rec := stats.NewRecorder()
	cfg := DefaultConfig(n.BaseRTT + 10*sim.Microsecond)
	for i := 0; i < 32; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 64_000, FG: true}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(10 * sim.Second)
	if d, tot := rec.CompletedCount(true); d != tot {
		t.Fatalf("%d/%d complete", d, tot)
	}
	if n.Switches[0].Ctr.TotalDrops() == 0 {
		t.Fatal("expected first-RTT burst drops")
	}
}
