package hpcc

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// blackholeFlow starts an HPCC flow whose every packet vanishes on the
// wire, returning the sender and its record.
func blackholeFlow(t *testing.T, cfg Config, size int64) (*sim.Sim, *Sender, *stats.Recorder) {
	t.Helper()
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	atx.DropWhen(func(*packet.Packet) bool { return true })
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	rec := stats.NewRecorder()
	snd, _ := StartFlow(s, src, dst, flow, cfg, rec, nil)
	return s, snd, rec
}

// TestHPCCAbortAfterMaxRetries: retry exhaustion against a black hole
// aborts the flow, stamps the record, and disarms the lazy RTO.
func TestHPCCAbortAfterMaxRetries(t *testing.T) {
	cfg := DefaultConfig(8 * sim.Microsecond)
	cfg.RTO.Fixed = sim.Millisecond
	cfg.RTO.MaxRetries = 3
	s, snd, rec := blackholeFlow(t, cfg, 8_000)
	s.RunAll()
	if !snd.Aborted() {
		t.Fatal("sender not aborted after retry exhaustion")
	}
	fr := rec.Flows[0]
	if !fr.Aborted || fr.Done {
		t.Fatalf("record Aborted=%v Done=%v, want aborted and not done", fr.Aborted, fr.Done)
	}
	if fr.Timeouts != 3 {
		t.Fatalf("Timeouts = %d, want exactly MaxRetries=3", fr.Timeouts)
	}
	fs := snd.FlowStatus()
	if !fs.Aborted || fs.RTOArmed {
		t.Fatalf("FlowStatus = %+v, want aborted with disarmed RTO", fs)
	}
}

// TestHPCCBackoffShiftsFixedRTO: MaxBackoffShift stretches the static
// timer cadence — 1, 3, 7ms against the unshifted 1, 2, 3ms.
func TestHPCCBackoffShiftsFixedRTO(t *testing.T) {
	cfg := DefaultConfig(8 * sim.Microsecond)
	cfg.RTO.Fixed = sim.Millisecond
	s, _, rec := blackholeFlow(t, cfg, 8_000)
	s.Run(6 * sim.Millisecond)
	if got := rec.Flows[0].Timeouts; got < 5 {
		t.Fatalf("Timeouts = %d at 6ms without backoff, want ≥5", got)
	}

	cfg.RTO.MaxBackoffShift = 4
	s2, snd2, rec2 := blackholeFlow(t, cfg, 8_000)
	s2.Run(6 * sim.Millisecond)
	// Backed off: fires at 1, 3ms; the 7ms fire is past the window.
	if got := rec2.Flows[0].Timeouts; got != 2 {
		t.Fatalf("Timeouts = %d at 6ms with backoff, want 2 (cadence 1,3,7ms)", got)
	}
	if snd2.backoff != 2 {
		t.Fatalf("backoff = %d after 2 timeouts, want 2", snd2.backoff)
	}
}
