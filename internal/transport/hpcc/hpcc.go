// Package hpcc implements HPCC (Li et al., SIGCOMM'19) as evaluated by
// the paper: a window-based RoCE transport driven by per-ACK in-band
// network telemetry (INT), with SACK loss recovery ("HPCC+SACK") and an
// optional TLT window-based extension.
package hpcc

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// kindRTOTick drives the lazy RTO tick through a static handler on a
// preallocated per-sender event (no closure boxing per arm).
var kindRTOTick sim.EventKind

func init() {
	kindRTOTick = sim.NewKind(func(_, arg any) { arg.(*Sender).rtoTick() })
}

// Config parametrizes an HPCC sender.
type Config struct {
	MSS         int
	LineRateBps int64
	BaseRTT     sim.Time // T in the HPCC control law
	Eta         float64  // target utilization (0.95)
	MaxStage    int      // additive-increase stages per MIMD reset (5)
	WAIBytes    float64  // additive increase per update
	RTO         transport.RTOConfig
	TLT         core.Config
}

// DefaultConfig returns HPCC's recommended settings scaled to the 40 Gbps
// RoCE fabric (1 µs links).
func DefaultConfig(baseRTT sim.Time) Config {
	winit := float64(40e9/8) * baseRTT.Seconds()
	return Config{
		MSS:         transport.MSS,
		LineRateBps: 40e9,
		BaseRTT:     baseRTT,
		Eta:         0.95,
		MaxStage:    5,
		WAIBytes:    winit * 0.05 / 10,
		RTO:         transport.RTOConfig{Fixed: 4 * sim.Millisecond},
	}
}

// Sender is an HPCC flow sender.
type Sender struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config

	rec    *stats.FlowRecord
	onDone func()

	n       int64
	lastLen int
	board   *transport.PktBoard

	winit    float64
	w, wc    float64
	u        float64
	incStage int
	lastSeq  int64 // lastUpdateSeq: next Wc assignment boundary
	lastINT  []packet.INTHop

	rtoDeadline sim.Time // lazy RTO: 0 = disarmed
	rtoPending  bool
	rtoEv       *sim.Event // preallocated tick event (lazily created)
	backoff     uint       // exponential backoff shift (only if RTO.MaxBackoffShift > 0)
	retries     int        // consecutive RTO rounds without forward progress
	tlt         *core.WindowSender
	done        bool
	aborted     bool

	// OnAbort fires once when the sender exhausts RTO.MaxRetries
	// consecutive timeouts without progress. May be nil.
	OnAbort func()
}

// NewSender constructs an HPCC sender for flow.
func NewSender(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config,
	rec *stats.FlowRecord, onDone func()) *Sender {
	n := (flow.Size + int64(cfg.MSS) - 1) / int64(cfg.MSS)
	if n == 0 {
		n = 1
	}
	winit := float64(cfg.LineRateBps/8) * cfg.BaseRTT.Seconds()
	cfg.TLT.Flow = flow.ID
	return &Sender{
		s: host.Sim(), host: host, flow: flow, cfg: cfg,
		rec: rec, onDone: onDone,
		n: n, lastLen: int(flow.Size - (n-1)*int64(cfg.MSS)),
		board: transport.NewPktBoard(n),
		winit: winit, w: winit, wc: winit,
		tlt: core.NewWindowSender(cfg.TLT),
	}
}

// Start begins transmission.
func (s *Sender) Start() {
	s.output()
	s.armRTO()
}

// Done reports sender completion.
func (s *Sender) Done() bool { return s.done }

// FlowStatus implements transport.StatusReporter for stall reports.
func (s *Sender) FlowStatus() transport.FlowStatus {
	state := "open"
	switch {
	case s.aborted:
		state = "aborted"
	case s.done:
		state = "done"
	case s.board.HasLoss():
		state = "loss-recovery"
	}
	mss := int64(s.cfg.MSS)
	acked := s.board.Una * mss
	if acked > s.flow.Size {
		acked = s.flow.Size
	}
	return transport.FlowStatus{
		Flow:              s.flow.ID,
		Transport:         "hpcc",
		State:             fmt.Sprintf("%s(w=%.0fB)", state, s.w),
		Done:              s.done,
		Aborted:           s.aborted,
		AckedBytes:        acked,
		TotalBytes:        s.flow.Size,
		OutstandingBytes:  s.board.InFlight() * mss,
		LostBytes:         s.board.PendingRetx() * mss,
		ImportantInFlight: s.tlt.InFlight(),
		RTOArmed:          s.rtoDeadline > 0,
		RTODeadline:       s.rtoDeadline,
	}
}

// Window returns the current window in bytes (for tests).
func (s *Sender) Window() float64 { return s.w }

// Handle implements fabric.PacketHandler.
func (s *Sender) Handle(pkt *packet.Packet) {
	if s.done || pkt.Type != packet.Ack {
		return
	}
	s.onAck(pkt)
}

func (s *Sender) inflightBytes() float64 {
	return float64(s.board.InFlight()) * float64(s.cfg.MSS)
}

func (s *Sender) onAck(pkt *packet.Packet) {
	var impSentAt sim.Time
	rackOK := false
	if s.tlt.Enabled() {
		switch pkt.Mark {
		case packet.ImportantEcho, packet.ImportantClockEcho:
			impSentAt, rackOK = s.tlt.OnEcho()
		}
	}

	progressed := s.board.Ack(pkt.Ack)
	s.board.Sack(pkt.Sack)
	if rackOK {
		s.board.RackMark(impSentAt)
	}
	if pkt.EchoTS > 0 {
		s.board.RackMark(pkt.EchoTS)
	}
	s.board.ApplyLostEdge()

	if pkt.NumINT() > 0 {
		s.react(pkt)
	}

	if s.board.Complete() {
		s.complete()
		return
	}
	if progressed {
		s.backoff = 0
		s.retries = 0 // Karn: forward progress resets the give-up counter
		s.armRTO()
	}
	s.output()

	if s.tlt.Armed() && s.board.FirstUnsacked() >= 0 {
		s.importantClock()
	}
}

// react runs HPCC's per-ACK control law (Algorithm 1 of the HPCC paper).
func (s *Sender) react(pkt *packet.Packet) {
	updateWc := pkt.Ack > s.lastSeq
	u := s.measureInflight(pkt.INTHops())
	s.computeWind(u, updateWc)
	if updateWc {
		s.lastSeq = s.board.Nxt
	}
}

func (s *Sender) measureInflight(hops []packet.INTHop) float64 {
	tSec := s.cfg.BaseRTT.Seconds()
	u := 0.0
	tau := tSec
	if len(s.lastINT) == len(hops) {
		for i, h := range hops {
			prev := s.lastINT[i]
			dt := (h.Timestamp - prev.Timestamp).Seconds()
			if dt <= 0 {
				continue
			}
			txRate := float64(h.TxBytes-prev.TxBytes) * 8 / dt
			qlen := h.QueueBytes
			if prev.QueueBytes < qlen {
				qlen = prev.QueueBytes
			}
			b := float64(h.RateBps)
			uPrime := float64(qlen)*8/(b*tSec) + txRate/b
			if uPrime > u {
				u = uPrime
				tau = dt
			}
		}
	}
	// First ACK (or hop-count change): no rate delta is computable; the
	// EWMA simply keeps its prior value via tau=T and u=0 above.
	if tau > tSec {
		tau = tSec
	}
	s.u = s.u*(1-tau/tSec) + u*(tau/tSec)
	s.lastINT = append(s.lastINT[:0], hops...)
	return s.u
}

func (s *Sender) computeWind(u float64, updateWc bool) {
	if u >= s.cfg.Eta || s.incStage >= s.cfg.MaxStage {
		s.w = s.wc/(u/s.cfg.Eta) + s.cfg.WAIBytes
		if updateWc {
			s.incStage = 0
			s.wc = s.w
		}
	} else {
		s.w = s.wc + s.cfg.WAIBytes
		if updateWc {
			s.incStage++
			s.wc = s.w
		}
	}
	if s.w < float64(s.cfg.MSS) {
		s.w = float64(s.cfg.MSS)
	}
	if s.w > s.winit {
		s.w = s.winit
	}
}

func (s *Sender) output() {
	if s.done {
		return
	}
	for s.inflightBytes() < s.w {
		psn := s.board.NextRetx()
		isRetx := psn >= 0
		if !isRetx {
			if s.board.Nxt >= s.n {
				return
			}
			psn = s.board.Nxt
		}
		more := s.moreAfter(psn, isRetx)
		s.transmit(psn, isRetx, s.tlt.TakeMark(!more, s.s.Now()))
	}
}

func (s *Sender) moreAfter(psn int64, isRetx bool) bool {
	if s.inflightBytes()+float64(s.cfg.MSS) >= s.w {
		return false
	}
	if isRetx {
		for p := psn + 1; p < s.board.Nxt; p++ {
			st := s.board.State(p)
			if st.Lost && !st.Retx {
				return true
			}
		}
	}
	next := psn + 1
	if !isRetx && next < s.n && next >= s.board.Nxt {
		return true
	}
	return false
}

func (s *Sender) transmit(psn int64, isRetx bool, mark packet.Mark) {
	now := s.s.Now()
	length := s.cfg.MSS
	last := psn == s.n-1
	if last {
		length = s.lastLen
	}
	// Field-by-field fill: NewPacket returns a zeroed struct, and a
	// composite-literal assignment would copy the whole INT-array-bearing
	// packet through a stack temporary on every send.
	pkt := s.host.NewPacket()
	pkt.Flow, pkt.Dst = s.flow.ID, s.flow.Dst
	pkt.Type = packet.Data
	pkt.Seq, pkt.Len = psn, length
	pkt.Mark = mark
	pkt.ECT = true
	pkt.SentAt = now
	pkt.IsRetx = isRetx
	pkt.LastPkt = last
	s.board.OnSent(psn, isRetx, now)
	if isRetx {
		s.rec.RetxPackets++
	}
	s.rec.SentPackets++
	size := int64(pkt.WireSize())
	s.rec.TotalBytes += size
	if pkt.Important() {
		s.rec.ImpPackets++
		s.rec.ImpBytes += size
	}
	s.host.Send(pkt)
}

func (s *Sender) importantClock() {
	psn := s.board.NextRetx()
	isRetx := true
	if psn < 0 {
		psn = s.board.FirstUnsacked()
		isRetx = false
		if psn < 0 {
			return
		}
	}
	s.rec.ClockSends++
	s.rec.ClockBytes += int64(s.cfg.MSS)
	if !isRetx {
		s.rec.RetxPackets++
	}
	s.transmit(psn, isRetx, s.tlt.TakeClockMark(s.s.Now()))
}

func (s *Sender) armRTO() {
	if s.done {
		s.rtoDeadline = 0
		return
	}
	s.rtoDeadline = s.s.Now() + s.cfg.RTO.Fixed<<s.backoff
	if !s.rtoPending {
		s.rtoPending = true
		if s.rtoEv == nil {
			s.rtoEv = s.s.NewKindEvent(kindRTOTick, 0, s)
		}
		s.s.Schedule(s.rtoEv, s.rtoDeadline)
	}
}

func (s *Sender) rtoTick() {
	s.rtoPending = false
	if s.done || s.rtoDeadline == 0 {
		return
	}
	if now := s.s.Now(); now < s.rtoDeadline {
		s.rtoPending = true
		s.s.Schedule(s.rtoEv, s.rtoDeadline)
		return
	}
	s.onRTO()
}

func (s *Sender) onRTO() {
	if s.done || s.board.Complete() {
		return
	}
	s.rec.Timeouts++
	s.retries++
	if s.cfg.RTO.MaxRetries > 0 && s.retries >= s.cfg.RTO.MaxRetries {
		s.abort()
		return
	}
	// Static RoCE timers do not back off by default; MaxBackoffShift
	// opts the flow into exponential backoff.
	if s.backoff < s.cfg.RTO.MaxBackoffShift {
		s.backoff++
	}
	s.board.MarkAllLost()
	s.tlt.Reset()
	s.output()
	s.armRTO()
}

// abort terminates the flow after RTO.MaxRetries consecutive timeouts
// without progress (retry exhaustion against a black-holed path).
func (s *Sender) abort() {
	if s.done {
		return
	}
	s.done = true
	s.aborted = true
	s.rtoDeadline = 0
	s.tlt.Reset()
	if s.OnAbort != nil {
		s.OnAbort()
	}
}

// Aborted reports whether the sender gave up (for tests).
func (s *Sender) Aborted() bool { return s.aborted }

func (s *Sender) complete() {
	if s.done {
		return
	}
	s.done = true
	s.rtoDeadline = 0
	if s.onDone != nil {
		s.onDone()
	}
}
