package hpcc

import (
	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Receiver acknowledges every data packet, echoing the INT telemetry the
// packet accumulated so the sender can run the HPCC control law.
type Receiver struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config
	rec  *stats.FlowRecord

	n   int64
	rcv transport.RangeSet
	cum int64

	tlt *core.WindowReceiver

	// OnComplete fires once when the full message has arrived.
	OnComplete func()
	completed  bool
}

// NewReceiver constructs the receiver for flow.
func NewReceiver(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config, rec *stats.FlowRecord) *Receiver {
	n := (flow.Size + int64(cfg.MSS) - 1) / int64(cfg.MSS)
	if n == 0 {
		n = 1
	}
	return &Receiver{
		s: host.Sim(), host: host, flow: flow, cfg: cfg, rec: rec, n: n,
		tlt: core.NewWindowReceiver(cfg.TLT),
	}
}

// Delivered returns in-order packets received.
func (r *Receiver) Delivered() int64 { return r.cum }

// Handle implements fabric.PacketHandler.
func (r *Receiver) Handle(pkt *packet.Packet) {
	if pkt.Type != packet.Data {
		return
	}
	r.tlt.OnData(pkt.Mark)
	if pkt.Seq >= r.cum {
		r.rcv.Add(pkt.Seq, pkt.Seq+1)
		r.cum = r.rcv.NextUncovered(r.cum)
		r.rcv.TrimBelow(r.cum)
	}
	mark := r.tlt.TakeAckMark()
	if !r.cfg.TLT.Enabled {
		mark = packet.Unimportant
	}
	ack := r.host.NewPacket()
	ack.Flow, ack.Dst = r.flow.ID, r.flow.Src
	ack.Type = packet.Ack
	ack.Ack = r.cum
	ack.Sack = r.rcv.Blocks(8)
	ack.Mark = mark
	// Echo the send time so the sender can invalidate
	// retransmissions that were themselves lost (RACK-style).
	ack.EchoTS = pkt.SentAt
	// Echo the INT stack by value: the ACK must not alias storage inside
	// pkt, which goes back on the free list when Handle returns.
	ack.CopyINTFrom(pkt)
	if r.rec != nil {
		// Receiver-owned counters: the sender may live on another shard.
		size := int64(ack.WireSize())
		r.rec.RxTotalBytes += size
		if ack.Important() {
			r.rec.RxImpPackets++
			r.rec.RxImpBytes += size
		}
	}
	r.host.Send(ack)
	if r.cum >= r.n {
		r.finish()
	}
}

func (r *Receiver) finish() {
	if r.completed {
		return
	}
	r.completed = true
	if r.OnComplete != nil {
		r.OnComplete()
	}
}

// StartFlow creates an HPCC flow from src to dst.
func StartFlow(s *sim.Sim, src, dst *fabric.Host, flow *transport.Flow, cfg Config,
	recorder *stats.Recorder, onDone func(*stats.FlowRecord)) (*Sender, *Receiver) {
	rec := recorder.NewFlowRecord(flow)
	snd := NewSender(s, src, flow, cfg, rec, nil)
	rcv := NewReceiver(s, dst, flow, cfg, rec)
	src.Register(flow.ID, snd)
	dst.Register(flow.ID, rcv)
	// Completion runs on the receiver's shard, abort on the sender's;
	// each closure touches only its own side of the record (see
	// stats.FlowRecord). onDone callers that must fire once per flow
	// deduplicate themselves.
	rcv.OnComplete = func() {
		if !rec.Done {
			recorder.FlowDone(rec, dst.Sim().Now())
			if onDone != nil {
				onDone(rec)
			}
		}
	}
	snd.OnAbort = func() {
		if rec.Aborted {
			return
		}
		recorder.FlowAborted(rec, src.Sim().Now())
		if onDone != nil {
			onDone(rec)
		}
	}
	src.Sim().At(flow.Start, snd.Start)
	return snd, rcv
}
