package hpcc

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

func hpccStar(hosts int, buf int64) (*sim.Sim, *topo.Network) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       hosts,
		LinkRateBps: 40e9,
		LinkDelay:   sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes: buf,
			INT:         true,
		},
	})
	return s, n
}

func TestHPCCSingleFlow(t *testing.T) {
	s, n := hpccStar(2, 4_500_000)
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}
	_, rcv := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(n.BaseRTT+10*sim.Microsecond), rec, nil)
	s.Run(sim.Second)
	if got := rcv.Delivered(); got != 1000 {
		t.Fatalf("delivered %d packets, want 1000", got)
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatalf("timeouts: %d", rec.Flows[0].Timeouts)
	}
}

func TestHPCCKeepsQueueLow(t *testing.T) {
	// Two long flows share a port: HPCC should converge to near-zero
	// standing queue (far below a DCTCP-like threshold).
	s, n := hpccStar(3, 4_500_000)
	rec := stats.NewRecorder()
	cfg := DefaultConfig(n.BaseRTT + 10*sim.Microsecond)
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 10_000_000}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)
	if d, tot := rec.CompletedCount(false); d != tot {
		t.Fatalf("%d/%d flows completed", d, tot)
	}
	// Queue spikes during the first RTT burst, then drains; the
	// high-water mark must stay well under 2x initial window.
	if q := n.Switches[0].MaxQueueBytes(0); q > 250_000 {
		t.Fatalf("HPCC max queue %d, want < 250kB", q)
	}
}

func TestHPCCIncastRecoversWithTLT(t *testing.T) {
	s, n := hpccStar(33, 600_000)
	rec := stats.NewRecorder()
	cfg := DefaultConfig(n.BaseRTT + 10*sim.Microsecond)
	cfg.TLT = core.Config{Enabled: true}
	for i := 0; i < 32; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 16_000, FG: true}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(2 * sim.Second)
	if d, tot := rec.CompletedCount(true); d != tot {
		t.Fatalf("%d/%d flows completed", d, tot)
	}
}
