package transport

import (
	"testing"

	"tlt/internal/sim"
)

func TestRTOFirstSample(t *testing.T) {
	e := NewRTOEstimator(RTOConfig{Min: sim.Millisecond, Max: time60(), Granularity: 10 * sim.Microsecond})
	if e.SRTT() != 0 {
		t.Fatal("SRTT should start at zero")
	}
	e.Sample(100 * sim.Microsecond)
	if e.SRTT() != 100*sim.Microsecond {
		t.Fatalf("SRTT = %v", e.SRTT())
	}
	// srtt + 4*rttvar = 100 + 200 = 300us, clamped up to 1ms.
	if got := e.RTO(); got != sim.Millisecond {
		t.Fatalf("RTO = %v, want RTOmin clamp 1ms", got)
	}
}

func time60() sim.Time { return 60 * sim.Second }

func TestRTOTracksVariance(t *testing.T) {
	e := NewRTOEstimator(RTOConfig{Min: 100 * sim.Microsecond, Granularity: sim.Microsecond})
	// Stable RTT: variance decays, RTO approaches SRTT.
	for i := 0; i < 100; i++ {
		e.Sample(200 * sim.Microsecond)
	}
	stable := e.RTO()
	if stable > 250*sim.Microsecond {
		t.Fatalf("stable RTO = %v, want close to 200us", stable)
	}
	// A burst of variance inflates the RTO well beyond the RTT, the
	// effect Figure 1 documents.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			e.Sample(2 * sim.Millisecond)
		} else {
			e.Sample(100 * sim.Microsecond)
		}
	}
	if e.RTO() < 2*sim.Millisecond {
		t.Fatalf("volatile RTO = %v, want inflated above max RTT", e.RTO())
	}
}

func TestRTOFixed(t *testing.T) {
	e := NewRTOEstimator(RTOConfig{Fixed: 160 * sim.Microsecond, Min: 4 * sim.Millisecond})
	e.Sample(5 * sim.Millisecond)
	if got := e.RTO(); got != 160*sim.Microsecond {
		t.Fatalf("fixed RTO = %v", got)
	}
}

func TestRTOClampMax(t *testing.T) {
	e := NewRTOEstimator(RTOConfig{Min: sim.Microsecond, Max: 10 * sim.Millisecond})
	e.Sample(sim.Second)
	if got := e.RTO(); got != 10*sim.Millisecond {
		t.Fatalf("RTO = %v, want clamped to 10ms", got)
	}
}

func TestRTOIgnoresNonPositiveSamples(t *testing.T) {
	e := NewRTOEstimator(RTOConfig{Min: sim.Millisecond})
	e.Sample(0)
	e.Sample(-5)
	if e.SRTT() != 0 {
		t.Fatal("non-positive samples must be ignored")
	}
}
