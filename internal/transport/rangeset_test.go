package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSet is a reference model for RangeSet.
type naiveSet map[int64]bool

func (n naiveSet) add(start, end int64) int64 {
	var fresh int64
	for i := start; i < end; i++ {
		if !n[i] {
			n[i] = true
			fresh++
		}
	}
	return fresh
}

func TestRangeSetBasic(t *testing.T) {
	var s RangeSet
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	if got := s.Add(10, 20); got != 10 {
		t.Fatalf("Add returned %d, want 10", got)
	}
	if got := s.Add(15, 25); got != 5 {
		t.Fatalf("overlapping Add returned %d, want 5", got)
	}
	if s.Len() != 1 {
		t.Fatalf("expected merged single block, got %d", s.Len())
	}
	if !s.Contains(10) || !s.Contains(24) || s.Contains(25) || s.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if got := s.NextUncovered(10); got != 25 {
		t.Fatalf("NextUncovered(10) = %d, want 25", got)
	}
	if got := s.NextUncovered(5); got != 5 {
		t.Fatalf("NextUncovered(5) = %d, want 5", got)
	}
	if got := s.Total(); got != 15 {
		t.Fatalf("Total = %d, want 15", got)
	}
	if got := s.Max(); got != 25 {
		t.Fatalf("Max = %d, want 25", got)
	}
}

func TestRangeSetAdjacentMerge(t *testing.T) {
	var s RangeSet
	s.Add(0, 10)
	s.Add(10, 20) // adjacent: must merge
	if s.Len() != 1 {
		t.Fatalf("adjacent blocks not merged: %d blocks", s.Len())
	}
	s.Add(30, 40)
	s.Add(20, 30) // bridges
	if s.Len() != 1 {
		t.Fatalf("bridge not merged: %v", s.Blocks(0))
	}
}

func TestRangeSetTrimBelow(t *testing.T) {
	var s RangeSet
	s.Add(0, 10)
	s.Add(20, 30)
	s.Add(40, 50)
	s.TrimBelow(25)
	if s.Contains(24) || !s.Contains(25) || !s.Contains(45) {
		t.Fatalf("TrimBelow wrong: %v", s.Blocks(0))
	}
	if got := s.Total(); got != 15 {
		t.Fatalf("Total after trim = %d, want 15", got)
	}
	s.TrimBelow(100)
	if !s.Empty() {
		t.Fatal("TrimBelow(100) should empty the set")
	}
}

func TestRangeSetBlocksOrder(t *testing.T) {
	var s RangeSet
	s.Add(40, 50)
	s.Add(0, 10)
	s.Add(20, 30)
	all := s.Blocks(0)
	if len(all) != 3 || all[0].Start != 0 || all[2].Start != 40 {
		t.Fatalf("Blocks(0) = %v", all)
	}
	top := s.Blocks(2)
	if len(top) != 2 || top[0].Start != 40 || top[1].Start != 20 {
		t.Fatalf("Blocks(2) = %v, want highest first", top)
	}
	full := s.Blocks(5)
	if len(full) != 3 || full[0].Start != 40 {
		t.Fatalf("Blocks(5) = %v", full)
	}
}

func TestRangeSetCoveredWithin(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if got := s.CoveredWithin(0, 100); got != 20 {
		t.Fatalf("CoveredWithin(0,100) = %d", got)
	}
	if got := s.CoveredWithin(15, 35); got != 10 {
		t.Fatalf("CoveredWithin(15,35) = %d", got)
	}
	if got := s.CoveredWithin(20, 30); got != 0 {
		t.Fatalf("CoveredWithin(20,30) = %d", got)
	}
}

func TestRangeSetNextCoveredAtOrAfter(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	if got := s.NextCoveredAtOrAfter(0, 100); got != 10 {
		t.Fatalf("= %d, want 10", got)
	}
	if got := s.NextCoveredAtOrAfter(15, 100); got != 15 {
		t.Fatalf("= %d, want 15", got)
	}
	if got := s.NextCoveredAtOrAfter(20, 100); got != 100 {
		t.Fatalf("= %d, want 100 (none)", got)
	}
}

// TestRangeSetVsModel drives random operations against the naive model.
func TestRangeSetVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s RangeSet
		model := naiveSet{}
		for op := 0; op < 200; op++ {
			start := int64(rng.Intn(300))
			end := start + int64(rng.Intn(20))
			if got, want := s.Add(start, end), model.add(start, end); got != want {
				t.Logf("Add(%d,%d) returned %d, model %d", start, end, got, want)
				return false
			}
			// Spot-check coverage.
			x := int64(rng.Intn(320))
			if s.Contains(x) != model[x] {
				t.Logf("Contains(%d) mismatch", x)
				return false
			}
			// Invariant: blocks sorted, disjoint, non-adjacent.
			blocks := s.Blocks(0)
			for i, b := range blocks {
				if b.Start >= b.End {
					return false
				}
				if i > 0 && blocks[i-1].End >= b.Start {
					return false
				}
			}
		}
		// Total must match model.
		var total int64
		for range model {
			total++
		}
		return s.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetNextUncoveredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s RangeSet
		model := naiveSet{}
		for op := 0; op < 50; op++ {
			start := int64(rng.Intn(200))
			end := start + 1 + int64(rng.Intn(10))
			s.Add(start, end)
			model.add(start, end)
		}
		for x := int64(0); x < 220; x++ {
			got := s.NextUncovered(x)
			want := x
			for model[want] {
				want++
			}
			if got != want {
				t.Logf("NextUncovered(%d) = %d, want %d", x, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
