package transport

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

func sentBoard(n int64, now sim.Time) *PktBoard {
	b := NewPktBoard(n)
	for p := int64(0); p < n; p++ {
		b.OnSent(p, false, now+sim.Time(p))
	}
	return b
}

func TestPktBoardAckAdvance(t *testing.T) {
	b := sentBoard(10, 0)
	if b.InFlight() != 10 {
		t.Fatalf("inflight = %d", b.InFlight())
	}
	if !b.Ack(4) {
		t.Fatal("Ack(4) should progress")
	}
	if b.Ack(4) {
		t.Fatal("duplicate Ack should not progress")
	}
	if b.Una != 4 || b.InFlight() != 6 {
		t.Fatalf("una=%d inflight=%d", b.Una, b.InFlight())
	}
	b.Ack(99) // beyond N clamps
	if !b.Complete() {
		t.Fatal("should be complete")
	}
}

func TestPktBoardSackAndLossEdge(t *testing.T) {
	b := sentBoard(10, 0)
	b.Sack([]packet.SackBlock{{Start: 5, End: 8}})
	if b.LostEdge != 5 {
		t.Fatalf("LostEdge = %d, want 5", b.LostEdge)
	}
	if !b.ApplyLostEdge() {
		t.Fatal("should mark new losses")
	}
	if !b.HasLoss() || b.PendingRetx() != 5 {
		t.Fatalf("pending retx = %d, want 5 (PSNs 0-4)", b.PendingRetx())
	}
	if got := b.NextRetx(); got != 0 {
		t.Fatalf("NextRetx = %d", got)
	}
	// inflight: 10 sent - 3 sacked - 5 lost = 2 (PSNs 8,9).
	if got := b.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// Retransmit 0: it is back in flight.
	b.OnSent(0, true, 100)
	if got := b.InFlight(); got != 3 {
		t.Fatalf("inflight after retx = %d, want 3", got)
	}
	if got := b.NextRetx(); got != 1 {
		t.Fatalf("NextRetx after retx0 = %d", got)
	}
	// Cumulative ack collapses everything below.
	b.Ack(8)
	if b.HasLoss() {
		t.Fatal("no loss should remain after cum ack")
	}
	if got := b.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2 (PSNs 8,9)", got)
	}
}

func TestPktBoardRackMark(t *testing.T) {
	b := sentBoard(5, 0) // sent at times 0..4
	// Retransmit PSN 1 at t=10.
	b.Sack([]packet.SackBlock{{Start: 3, End: 5}})
	b.ApplyLostEdge()
	b.OnSent(1, true, 10)
	st := b.State(1)
	if !st.Retx {
		t.Fatal("PSN1 should be marked retx")
	}
	// An echo proving time 20 round-tripped invalidates everything
	// unsacked sent before t=20, including the PSN1 retransmission.
	b.RackMark(20)
	st = b.State(1)
	if st.Retx {
		t.Fatal("stale retransmission not invalidated")
	}
	if got := b.PendingRetx(); got != 3 {
		t.Fatalf("pending retx = %d, want 3 (PSNs 0,1,2)", got)
	}
	// Sacked packets are never marked lost.
	if b.State(3).Lost || b.State(4).Lost {
		t.Fatal("sacked packets marked lost")
	}
}

func TestPktBoardMarkAllLost(t *testing.T) {
	b := sentBoard(6, 0)
	b.Sack([]packet.SackBlock{{Start: 2, End: 3}})
	b.OnSent(0, false, 0) // pretend PSN0 was retransmitted earlier
	b.MarkAllLost()
	if got := b.PendingRetx(); got != 5 {
		t.Fatalf("pending retx = %d, want 5 (all but sacked PSN2)", got)
	}
	if b.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0 after collapse", b.InFlight())
	}
}

func TestPktBoardRewind(t *testing.T) {
	b := sentBoard(10, 0)
	b.Ack(3)
	b.Rewind(1) // below Una: clamps
	if b.Nxt != 3 {
		t.Fatalf("Nxt = %d, want clamp at Una", b.Nxt)
	}
	b.Rewind(7)
	if b.Nxt != 3 {
		t.Fatalf("Rewind must never advance Nxt; got %d", b.Nxt)
	}
}

func TestPktBoardFirstUnsacked(t *testing.T) {
	b := sentBoard(4, 0)
	b.Sack([]packet.SackBlock{{Start: 0, End: 2}})
	if got := b.FirstUnsacked(); got != 2 {
		t.Fatalf("FirstUnsacked = %d", got)
	}
	b.Sack([]packet.SackBlock{{Start: 2, End: 4}})
	if got := b.FirstUnsacked(); got != -1 {
		t.Fatalf("FirstUnsacked = %d, want -1", got)
	}
}
