package tcp

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// TestAbortAfterMaxRetries: against a permanent black hole, the sender
// stops after exactly MaxRetries timeouts and surfaces terminal state
// instead of backing off forever.
func TestAbortAfterMaxRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	cfg.RTO.MaxRetries = 4
	s, snd, fr := blackholeSender(t, cfg, 8_000)
	aborts := 0
	snd.OnAbort = func() { aborts++ }
	s.RunAll() // terminates: after the abort no timer re-arms
	if !snd.Aborted() || !snd.Done() {
		t.Fatalf("aborted=%v done=%v, want both after retry exhaustion", snd.Aborted(), snd.Done())
	}
	if aborts != 1 {
		t.Fatalf("OnAbort fired %d times, want 1", aborts)
	}
	if fr.Timeouts != 4 {
		t.Fatalf("Timeouts = %d, want exactly MaxRetries=4", fr.Timeouts)
	}
	fs := snd.FlowStatus()
	if !fs.Aborted || fs.State != "aborted" || fs.RTOArmed {
		t.Fatalf("FlowStatus = %+v, want aborted with disarmed timers", fs)
	}
}

// TestMaxRetriesZeroRetriesForever: the zero value preserves the seed
// behavior — the sender keeps backing off and never aborts.
func TestMaxRetriesZeroRetriesForever(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	s, snd, fr := blackholeSender(t, cfg, 8_000)
	s.Run(200 * sim.Millisecond)
	if snd.Aborted() {
		t.Fatal("sender aborted with MaxRetries=0")
	}
	if fr.Timeouts < 5 {
		t.Fatalf("Timeouts = %d, want continued retrying", fr.Timeouts)
	}
}

// TestBackoffCapBoundary: MaxBackoffShift clamps the exponent exactly at
// the configured shift — the inter-timeout gap stops doubling there.
func TestBackoffCapBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	cfg.RTO.MaxBackoffShift = 3
	s, snd, fr := blackholeSender(t, cfg, 8_000)
	// Timeouts at 1, 3, 7, 15 ms, then every 8 ms: 23, 31, 39.
	s.Run(40 * sim.Millisecond)
	if snd.backoff != 3 {
		t.Fatalf("backoff = %d, want capped at 3", snd.backoff)
	}
	if fr.Timeouts != 7 {
		t.Fatalf("Timeouts at 40ms = %d, want 7 with the capped cadence", fr.Timeouts)
	}
}

// TestKarnNoSampleFromRetransmission: a segment acknowledged only after
// retransmission must contribute no RTT sample (the echoed timestamp is
// suppressed on retransmits), leaving the estimator unseeded.
func TestKarnNoSampleFromRetransmission(t *testing.T) {
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	drops := 0
	atx.DropWhen(func(p *packet.Packet) bool {
		if p.Type == packet.Data && drops == 0 {
			drops++
			return true
		}
		return false
	})
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1000}
	rec := stats.NewRecorder()
	c := StartFlow(s, src, dst, flow, cfg, rec, nil)
	s.RunAll()
	if !c.Sender.Done() || c.Sender.Aborted() {
		t.Fatalf("one-segment flow did not complete cleanly (done=%v aborted=%v)",
			c.Sender.Done(), c.Sender.Aborted())
	}
	if drops != 1 {
		t.Fatalf("dropped %d packets, want 1 (the original transmission)", drops)
	}
	if got := c.Sender.rtoEst.SRTT(); got != 0 {
		t.Fatalf("SRTT = %v after an ACK for a retransmitted segment; Karn forbids the sample", got)
	}
}
