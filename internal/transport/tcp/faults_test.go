package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

// TestNonCongestionLossFallback injects random link loss (which color
// protection cannot prevent — important packets die too) and verifies
// that TLT degrades gracefully to the underlying transport: every flow
// still completes, via RTO when the important packet itself is lost (§5).
func TestNonCongestionLossFallback(t *testing.T) {
	for _, useTLT := range []bool{false, true} {
		s := sim.New()
		n := topo.Star(s, topo.StarConfig{
			Hosts: 3, LinkRateBps: 40e9, LinkDelay: 10 * sim.Microsecond,
			Switch: fabric.SwitchConfig{BufferBytes: 4 << 20, ColorThreshold: 400_000},
		})
		// 2% random loss on both sender uplinks (data path) — harsh.
		rng := sim.NewRNG(11)
		n.Hosts[1].NICTx().InjectLoss(0.02, rng)
		n.Hosts[2].NICTx().InjectLoss(0.02, rng)

		rec := stats.NewRecorder()
		cfg := DCTCPConfig()
		cfg.TLT = core.Config{Enabled: useTLT}
		for i := 0; i < 2; i++ {
			f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 500_000}
			StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
		}
		s.Run(60 * sim.Second)
		for i, fr := range rec.Flows {
			if !fr.Done {
				t.Fatalf("tlt=%v: flow %d incomplete under random loss", useTLT, i)
			}
		}
		if drops := n.Hosts[1].NICTx().InjectedDrops() + n.Hosts[2].NICTx().InjectedDrops(); drops == 0 {
			t.Fatal("no losses injected; test is vacuous")
		}
	}
}

// TestAckPathLoss drops ACKs randomly: cumulative acking must absorb the
// losses without stalling.
func TestAckPathLoss(t *testing.T) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: 10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 4 << 20},
	})
	// Loss on the receiver's NIC (the ACK path).
	n.Hosts[1].NICTx().InjectLoss(0.05, sim.NewRNG(3))
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 300_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, nil)
	s.Run(60 * sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete under ACK loss")
	}
	if got := c.Receiver.Delivered(); got != f.Size {
		t.Fatalf("delivered %d", got)
	}
}
