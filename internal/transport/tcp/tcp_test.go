package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

func starNet(t *testing.T, hosts int, swc fabric.SwitchConfig) (*sim.Sim, *topo.Network) {
	t.Helper()
	s := sim.New()
	if swc.BufferBytes == 0 {
		swc.BufferBytes = 4_500_000
	}
	n := topo.Star(s, topo.StarConfig{
		Hosts:       hosts,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch:      swc,
	})
	return s, n
}

func TestSingleFlowCompletes(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1_000_000, Start: 0}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, nil)
	s.Run(sim.Second)
	if got := c.Receiver.Delivered(); got != f.Size {
		t.Fatalf("delivered %d bytes, want %d", got, f.Size)
	}
	fr := rec.Flows[0]
	if !fr.Done {
		t.Fatal("flow not recorded done")
	}
	if fr.Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %d", fr.Timeouts)
	}
	// Sanity on FCT: 1MB at 40Gbps is ~200us plus RTT ~40us.
	if fct := fr.FCT(); fct < 200*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Fatalf("implausible FCT %v", fct)
	}
}

func TestIncastBaselineTimesOutTLTDoesNot(t *testing.T) {
	const fan = 64
	mk := func(tlt bool) (*stats.Recorder, fabric.Counters, sim.Time) {
		swc := fabric.SwitchConfig{
			BufferBytes: 1_000_000, // small buffer to force congestion loss
			ECN:         fabric.ECNStep,
			KEcn:        200_000,
		}
		if tlt {
			swc.ColorThreshold = 400_000
		}
		s, n := starNet(t, fan+1, swc)
		rec := stats.NewRecorder()
		cfg := DCTCPConfig()
		cfg.TLT = core.Config{Enabled: tlt}
		// 8 kB flows fit in the initial window, so a lost tail packet
		// leaves the baseline sender silent until RTO — the pathology
		// the paper targets.
		for i := 0; i < fan; i++ {
			f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 8_000, Start: 0, FG: true}
			StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
		}
		end := s.Run(sim.Second)
		done, total := rec.CompletedCount(true)
		if done != total {
			t.Fatalf("tlt=%v: only %d/%d flows completed", tlt, done, total)
		}
		return rec, n.Counters(), end
	}

	recBase, ctrBase, _ := mk(false)
	recTLT, ctrTLT, _ := mk(true)

	if recBase.TimeoutsAll() == 0 {
		t.Fatalf("expected baseline incast to suffer timeouts (drops=%d)", ctrBase.TotalDrops())
	}
	if got := recTLT.TimeoutsAll(); got != 0 {
		t.Fatalf("TLT incast had %d timeouts, want 0 (green drops=%d)", got, ctrTLT.DropGreen)
	}
	if ctrTLT.DropGreen != 0 {
		t.Fatalf("TLT dropped %d important packets", ctrTLT.DropGreen)
	}
	baseTail := stats.Percentile(recBase.Select(true), 0.99)
	tltTail := stats.Percentile(recTLT.Select(true), 0.99)
	if tltTail >= baseTail {
		t.Fatalf("TLT 99%% FCT %v not better than baseline %v", tltTail, baseTail)
	}
}

func TestDCTCPKeepsQueueNearThreshold(t *testing.T) {
	s, n := starNet(t, 3, fabric.SwitchConfig{ECN: fabric.ECNStep, KEcn: 200_000})
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	// Two long flows into host 0: queue should oscillate near KEcn, far
	// below the 4.5MB buffer.
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 20_000_000, Start: 0}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(100 * sim.Millisecond)
	maxQ := n.Switches[0].MaxQueueBytes(0)
	if maxQ < 100_000 || maxQ > 1_200_000 {
		t.Fatalf("DCTCP max queue %d bytes, want near ECN threshold", maxQ)
	}
	if done, total := rec.CompletedCount(false); done != total {
		t.Fatalf("%d/%d flows completed", done, total)
	}
}

func TestTLTOneImportantInFlight(t *testing.T) {
	// Invariant: at most one important Data/ClockData in flight per flow.
	// Verified via the state machine plus wire-level counting.
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 3, LinkRateBps: 40e9, LinkDelay: 10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 500_000, ColorThreshold: 100_000, ECN: fabric.ECNStep, KEcn: 100_000},
	})
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	cfg.TLT = core.Config{Enabled: true}
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 500_000, Start: 0}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)
	for i, fr := range rec.Flows {
		if !fr.Done {
			t.Fatalf("flow %d incomplete", i)
		}
	}
}

func TestRetransmissionAfterLossWithoutTimeout(t *testing.T) {
	// Tail segment of the window lost in middle of flow: with TLT the
	// important echo detects it without any RTO even when dupACKs are
	// impossible (whole-tail loss).
	swc := fabric.SwitchConfig{
		BufferBytes:    200_000,
		ColorThreshold: 60_000,
		ECN:            fabric.ECNStep,
		KEcn:           60_000,
	}
	s, n := starNet(t, 9, swc)
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	cfg.TLT = core.Config{Enabled: true}
	for i := 0; i < 8; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 32_000, Start: 0, FG: true}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)
	ctr := n.Counters()
	if ctr.DropRedColor == 0 {
		t.Skip("no red drops induced; scenario too gentle")
	}
	if got := rec.TimeoutsAll(); got != 0 {
		t.Fatalf("timeouts with TLT: %d", got)
	}
	for i, fr := range rec.Flows {
		if !fr.Done {
			t.Fatalf("flow %d incomplete", i)
		}
	}
}
