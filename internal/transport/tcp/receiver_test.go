package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

// ackCatcher records the ACKs a receiver emits by replacing the sender's
// handler on the source host.
type ackCatcher struct {
	acks []*packet.Packet
}

func (a *ackCatcher) Handle(p *packet.Packet) {
	if p.Type == packet.Ack {
		a.acks = append(a.acks, p)
	}
}

func recvHarness(t *testing.T, cfg Config) (*sim.Sim, *Receiver, *ackCatcher) {
	t.Helper()
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 100_000}
	r := NewReceiver(s, dst, flow, cfg)
	dst.Register(1, r)
	cat := &ackCatcher{}
	src.Register(1, cat)
	return s, r, cat
}

func seg(seq int64, n int, mark packet.Mark, ce bool) *packet.Packet {
	return &packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Seq: seq, Len: n, Mark: mark, CE: ce, SentAt: 1}
}

func TestReceiverCumulativeAndSack(t *testing.T) {
	s, r, cat := recvHarness(t, DefaultConfig())
	r.Handle(seg(0, 1000, packet.Unimportant, false))
	r.Handle(seg(2000, 1000, packet.Unimportant, false)) // hole at 1000
	r.Handle(seg(4000, 1000, packet.Unimportant, false)) // hole at 3000
	s.RunAll()
	if len(cat.acks) != 3 {
		t.Fatalf("acks = %d", len(cat.acks))
	}
	last := cat.acks[2]
	if last.Ack != 1000 {
		t.Fatalf("cum ack = %d", last.Ack)
	}
	if len(last.Sack) != 2 {
		t.Fatalf("sack blocks = %v", last.Sack)
	}
	// Highest block first.
	if last.Sack[0].Start != 4000 || last.Sack[1].Start != 2000 {
		t.Fatalf("sack order = %v", last.Sack)
	}
	// Fill the first hole: cum jumps over the contiguous range.
	r.Handle(seg(1000, 1000, packet.Unimportant, false))
	s.RunAll()
	if got := cat.acks[3].Ack; got != 3000 {
		t.Fatalf("cum after fill = %d", got)
	}
	if r.Delivered() != 3000 {
		t.Fatalf("delivered = %d", r.Delivered())
	}
}

func TestReceiverECNEchoPerPacket(t *testing.T) {
	s, r, cat := recvHarness(t, DCTCPConfig())
	r.Handle(seg(0, 1000, packet.Unimportant, true))
	r.Handle(seg(1000, 1000, packet.Unimportant, false))
	r.Handle(seg(2000, 1000, packet.Unimportant, true))
	s.RunAll()
	want := []bool{true, false, true}
	for i, ack := range cat.acks {
		if ack.ECE != want[i] {
			t.Fatalf("ack %d ECE = %v, want %v (DCTCP needs per-packet accuracy)", i, ack.ECE, want[i])
		}
	}
}

func TestReceiverTLTEchoMarks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLT = core.Config{Enabled: true}
	s, r, cat := recvHarness(t, cfg)
	r.Handle(seg(0, 1000, packet.Unimportant, false))
	r.Handle(seg(1000, 1000, packet.ImportantData, false))
	r.Handle(seg(2000, 1000, packet.ImportantClockData, false))
	s.RunAll()
	wantMarks := []packet.Mark{packet.ControlImportant, packet.ImportantEcho, packet.ImportantClockEcho}
	for i, ack := range cat.acks {
		if ack.Mark != wantMarks[i] {
			t.Fatalf("ack %d mark = %v, want %v", i, ack.Mark, wantMarks[i])
		}
	}
}

func TestReceiverKarnTimestampEcho(t *testing.T) {
	s, r, cat := recvHarness(t, DefaultConfig())
	fresh := seg(0, 1000, packet.Unimportant, false)
	fresh.SentAt = 42
	r.Handle(fresh)
	retx := seg(1000, 1000, packet.Unimportant, false)
	retx.SentAt = 99
	retx.IsRetx = true
	r.Handle(retx)
	s.RunAll()
	if cat.acks[0].EchoTS != 42 {
		t.Fatalf("fresh echo = %v", cat.acks[0].EchoTS)
	}
	if cat.acks[1].EchoTS != 0 {
		t.Fatalf("retransmission echoed a timestamp (%v): Karn violated", cat.acks[1].EchoTS)
	}
}

func TestReceiverDuplicateData(t *testing.T) {
	s, r, cat := recvHarness(t, DefaultConfig())
	r.Handle(seg(0, 1000, packet.Unimportant, false))
	r.Handle(seg(0, 1000, packet.Unimportant, false)) // pure duplicate
	s.RunAll()
	if len(cat.acks) != 2 {
		t.Fatal("duplicates must still be acked (dupACK signal)")
	}
	if cat.acks[1].Ack != 1000 {
		t.Fatalf("dup ack = %d", cat.acks[1].Ack)
	}
	if r.Delivered() != 1000 {
		t.Fatalf("delivered = %d after duplicate", r.Delivered())
	}
}

func TestReceiverSackBlockCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSackBlocks = 2
	s, r, cat := recvHarness(t, cfg)
	// Four disjoint out-of-order ranges.
	for i := int64(1); i <= 4; i++ {
		r.Handle(seg(i*2000, 1000, packet.Unimportant, false))
	}
	s.RunAll()
	last := cat.acks[len(cat.acks)-1]
	if len(last.Sack) != 2 {
		t.Fatalf("sack blocks = %d, want cap 2", len(last.Sack))
	}
}
