package tcp

import (
	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Conn bundles the two endpoints of a connection.
type Conn struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewConn creates and registers a sender on src and a receiver on dst for
// flow, without writing data. Use for persistent application connections.
func NewConn(s *sim.Sim, src, dst *fabric.Host, flow *transport.Flow, cfg Config,
	rec *stats.FlowRecord, recorder *stats.Recorder) *Conn {
	snd := NewSender(s, src, flow, cfg, rec, recorder, nil)
	rcv := NewReceiver(s, dst, flow, cfg)
	src.Register(flow.ID, snd)
	dst.Register(flow.ID, rcv)
	return &Conn{Sender: snd, Receiver: rcv}
}

// StartFlow creates a connection carrying exactly flow.Size bytes,
// beginning at flow.Start. The flow record's completion is stamped when
// the receiver has delivered the full payload (the paper measures FCT at
// the data sink). onDone, if non-nil, fires at that moment.
func StartFlow(s *sim.Sim, src, dst *fabric.Host, flow *transport.Flow, cfg Config,
	recorder *stats.Recorder, onDone func(*stats.FlowRecord)) *Conn {
	rec := recorder.NewFlowRecord(flow)
	c := NewConn(s, src, dst, flow, cfg, rec, recorder)
	// Completion runs on the receiver's shard, abort on the sender's;
	// each closure touches only its own side of the record and stamps
	// its own shard's clock. A flow can finalize from both sides (abort
	// racing a completion in flight), so onDone callers that must fire
	// once deduplicate themselves.
	c.Receiver.OnDeliver = func(total int64) {
		if total >= flow.Size && !rec.Done {
			recorder.FlowDone(rec, dst.Sim().Now())
			if onDone != nil {
				onDone(rec)
			}
		}
	}
	c.Sender.OnAbort = func() {
		if rec.Aborted {
			return
		}
		recorder.FlowAborted(rec, src.Sim().Now())
		if onDone != nil {
			onDone(rec)
		}
	}
	src.Sim().At(flow.Start, func() {
		c.Sender.Write(flow.Size)
		c.Sender.Close()
	})
	return c
}
