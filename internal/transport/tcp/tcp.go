// Package tcp implements the TCP-family transports of the paper's
// evaluation: TCP NewReno with SACK (duplicate-ACK threshold 1, as §5
// prescribes for single-path datacenters), DCTCP, Tail Loss Probe, and
// the TLT extension (Algorithm 1) on top of either.
//
// The model is a byte stream segmented at MSS boundaries. Loss detection
// combines three signals, mirroring the paper:
//
//   - SACK + dupthresh=1: any byte below the highest selectively-acked
//     byte that is not itself acked is lost.
//   - TLT important echoes: when the echo of an important packet returns,
//     every packet transmitted strictly before that important packet and
//     still unacknowledged is lost (guaranteed fast loss detection, §5.1).
//   - RTO as the last resort.
package tcp

import (
	"tlt/internal/core"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

// Config parametrizes a TCP connection.
type Config struct {
	MSS            int
	InitWindowSegs int
	MaxCwndBytes   float64
	RTO            transport.RTOConfig

	// DCTCP enables ECN-fraction congestion control; implies ECT.
	DCTCP  bool
	DctcpG float64

	// ECN sets ECT on data packets (needed for DCTCP; plain TCP in the
	// paper's baseline is loss-based, no ECN).
	ECN bool

	// TLP enables tail loss probes (baseline comparison in Fig. 5).
	TLP       bool
	TLPMinPTO sim.Time

	// TLT enables the paper's mechanism.
	TLT core.Config

	// TrafficClass selects the egress queue on multi-queue switch ports
	// (incremental deployment, §5.3). Class 0 is the TLT class.
	TrafficClass uint8

	// MaxSackBlocks bounds SACK option size per ACK, like real TCP.
	MaxSackBlocks int
}

// DefaultConfig returns the paper's simulation defaults (§7.1): MSS 1 kB,
// IW 10, SACK with dupthresh 1, RTOmin 4 ms.
func DefaultConfig() Config {
	return Config{
		MSS:            transport.MSS,
		InitWindowSegs: 10,
		MaxCwndBytes:   32e6,
		RTO:            transport.DefaultRTO(),
		DctcpG:         1.0 / 16.0,
		TLPMinPTO:      10 * sim.Microsecond,
		MaxSackBlocks:  4,
	}
}

// DCTCPConfig returns DefaultConfig with DCTCP enabled.
func DCTCPConfig() Config {
	c := DefaultConfig()
	c.DCTCP = true
	c.ECN = true
	return c
}
