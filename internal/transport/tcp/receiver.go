package tcp

import (
	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

// Receiver is the receiving endpoint: it reassembles the byte stream,
// generates an immediate ACK for every data packet (carrying SACK blocks
// and the DCTCP-accurate ECN echo), and runs the TLT receive-side state
// machine.
type Receiver struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config

	rcvNxt   int64
	received transport.RangeSet // out-of-order ranges above rcvNxt

	tlt *core.WindowReceiver

	// OnDeliver is invoked whenever in-order delivery progresses, with
	// the total in-order bytes now available to the application.
	OnDeliver func(total int64)
}

// NewReceiver constructs a receiver on host for flow.
func NewReceiver(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config) *Receiver {
	return &Receiver{
		s: host.Sim(), host: host, flow: flow, cfg: cfg,
		tlt: core.NewWindowReceiver(cfg.TLT),
	}
}

// Delivered returns the in-order bytes delivered so far.
func (r *Receiver) Delivered() int64 { return r.rcvNxt }

// Handle implements fabric.PacketHandler for the data path.
func (r *Receiver) Handle(pkt *packet.Packet) {
	if pkt.Type != packet.Data {
		return
	}
	r.tlt.OnData(pkt.Mark)

	old := r.rcvNxt
	if pkt.Seq+int64(pkt.Len) > r.rcvNxt {
		r.received.Add(pkt.Seq, pkt.Seq+int64(pkt.Len))
		r.rcvNxt = r.received.NextUncovered(r.rcvNxt)
		r.received.TrimBelow(r.rcvNxt)
	}

	// Field-by-field fill on the zeroed pooled packet; a composite
	// literal would copy the whole INT-array-bearing struct through a
	// stack temporary on every ACK.
	ack := r.host.NewPacket()
	ack.Flow, ack.Dst = r.flow.ID, r.flow.Src
	ack.Type = packet.Ack
	ack.TC = r.cfg.TrafficClass
	ack.Ack = r.rcvNxt
	ack.Sack = r.received.Blocks(r.cfg.MaxSackBlocks)
	ack.ECE = pkt.CE
	ack.Mark = r.tlt.TakeAckMark()
	if !pkt.IsRetx && pkt.SentAt > 0 {
		ack.EchoTS = pkt.SentAt
	}
	r.host.Send(ack)

	if r.rcvNxt > old && r.OnDeliver != nil {
		r.OnDeliver(r.rcvNxt)
	}
}
