package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

func TestDCTCPAlphaRisesUnderCongestion(t *testing.T) {
	s, n := starNet(t, 3, fabric.SwitchConfig{ECN: fabric.ECNStep, KEcn: 50_000})
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	var senders []*Sender
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 50_000_000}
		c := StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
		senders = append(senders, c.Sender)
	}
	s.Run(5 * sim.Millisecond)
	for i, snd := range senders {
		if snd.Alpha() <= 0 {
			t.Fatalf("sender %d alpha = %v, want > 0 under persistent marking", i, snd.Alpha())
		}
		// cwnd must be bounded: with K=50kB, the window cannot grow
		// unbounded as it would for plain TCP.
		if snd.Cwnd() > 2_000_000 {
			t.Fatalf("sender %d cwnd = %v, DCTCP failed to throttle", i, snd.Cwnd())
		}
	}
}

func TestPlainTCPFillsBuffer(t *testing.T) {
	// Contrast: loss-based TCP pushes the queue to the drop point.
	s, n := starNet(t, 3, fabric.SwitchConfig{BufferBytes: 500_000})
	rec := stats.NewRecorder()
	cfg := DefaultConfig()
	for i := 0; i < 2; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 10_000_000}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(20 * sim.Millisecond)
	if q := n.Switches[0].MaxQueueBytes(0); q < 200_000 {
		t.Fatalf("TCP max queue = %d, expected to approach the drop point", q)
	}
	if n.Switches[0].Ctr.DropDynamic == 0 {
		t.Fatal("TCP should experience loss at the dynamic threshold")
	}
}

func TestTLPConvertsTailLossToProbe(t *testing.T) {
	// Lose the tail of a short flow; with TLP the probe elicits a SACK
	// and recovery happens far sooner than the 4ms RTO.
	run := func(tlp bool) (sim.Time, int) {
		swc := fabric.SwitchConfig{BufferBytes: 120_000} // tight: tail drops
		s, n := starNet(t, 10, swc)
		rec := stats.NewRecorder()
		cfg := DefaultConfig()
		cfg.TLP = tlp
		for i := 0; i < 9; i++ {
			f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 8_000, Start: 0, FG: true}
			StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
		}
		s.Run(sim.Second)
		fcts := rec.Select(true)
		if len(fcts) != 9 {
			t.Fatalf("only %d flows finished", len(fcts))
		}
		worst := stats.Percentile(fcts, 1)
		return sim.Time(worst * 1e9), rec.TimeoutsAll()
	}
	worstBase, toBase := run(false)
	worstTLP, toTLP := run(true)
	if toBase == 0 {
		t.Skip("scenario did not induce tail loss")
	}
	if worstTLP >= worstBase {
		t.Fatalf("TLP worst FCT %v not better than baseline %v", worstTLP, worstBase)
	}
	if toTLP >= toBase {
		t.Fatalf("TLP timeouts %d not fewer than baseline %d", toTLP, toBase)
	}
}

func TestFixedRTO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO.Fixed = 160 * sim.Microsecond
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 100_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestPersistentStreamMultipleWrites(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1}
	fr := rec.NewFlowRecord(f)
	c := NewConn(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), fr, rec)
	var progress []int64
	c.Receiver.OnDeliver = func(total int64) { progress = append(progress, total) }
	c.Sender.Write(10_000)
	s.RunAll()
	first := c.Receiver.Delivered()
	if first != 10_000 {
		t.Fatalf("delivered %d after first write", first)
	}
	c.Sender.Write(5_000)
	s.RunAll()
	if got := c.Receiver.Delivered(); got != 15_000 {
		t.Fatalf("delivered %d after second write", got)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] <= progress[i-1] {
			t.Fatal("delivery progress not monotone")
		}
	}
}

func TestDeliverySamplesCollected(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	rec.DeliverySamples = stats.NewReservoir(1000, 1)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 50_000}
	StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, nil)
	s.RunAll()
	if rec.DeliverySamples.Seen() != 50 {
		t.Fatalf("delivery samples = %d, want 50 segments", rec.DeliverySamples.Seen())
	}
	for _, x := range rec.DeliverySamples.Samples() {
		// One-way latency is at least 2 links of 10us plus serialization.
		if x < 20e-6 || x > 1e-3 {
			t.Fatalf("delivery sample %v out of plausible range", x)
		}
	}
}

func TestRTTSamplersSplitByClass(t *testing.T) {
	s, n := starNet(t, 3, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	rec.RTTSamplesFG = stats.NewReservoir(100, 1)
	rec.RTOSamplesFG = stats.NewReservoir(100, 2)
	rec.RTTSamplesBG = stats.NewReservoir(100, 3)
	rec.RTOSamplesBG = stats.NewReservoir(100, 4)
	StartFlow(s, n.Hosts[0], n.Hosts[2],
		&transport.Flow{ID: 1, Src: 0, Dst: 2, Size: 20_000, FG: true}, DefaultConfig(), rec, nil)
	StartFlow(s, n.Hosts[1], n.Hosts[2],
		&transport.Flow{ID: 2, Src: 1, Dst: 2, Size: 20_000}, DefaultConfig(), rec, nil)
	s.RunAll()
	if rec.RTTSamplesFG.Seen() == 0 || rec.RTTSamplesBG.Seen() == 0 {
		t.Fatal("both classes should have RTT samples")
	}
	for _, x := range rec.RTTSamplesFG.Samples() {
		if x < 40e-6 {
			t.Fatalf("fg RTT %v below propagation floor", x)
		}
	}
}

func TestAdaptiveClockingRetransmitsFullMSS(t *testing.T) {
	// When loss is indicated, the important ACK-clock must carry a full
	// MSS of the lost data (Fig. 3b / Fig. 17), not one byte.
	swc := fabric.SwitchConfig{
		BufferBytes:    150_000,
		ColorThreshold: 40_000,
		ECN:            fabric.ECNStep,
		KEcn:           40_000,
	}
	s, n := starNet(t, 9, swc)
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	cfg.TLT = core.Config{Enabled: true, Clock: core.ClockAdaptive}
	for i := 0; i < 8; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 24_000, FG: true}
		StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(sim.Second)
	var clockBytes, clockSends int64
	for _, fr := range rec.Flows {
		clockBytes += fr.ClockBytes
		clockSends += int64(fr.ClockSends)
	}
	if clockSends == 0 {
		t.Skip("no clocking triggered in this scenario")
	}
	if clockBytes <= clockSends {
		t.Fatalf("adaptive clocking sent %d bytes over %d sends: loss recovery stuck at 1-byte probes", clockBytes, clockSends)
	}
	if rec.TimeoutsAll() != 0 {
		t.Fatalf("timeouts with TLT: %d", rec.TimeoutsAll())
	}
}

func TestOneByteClockingIsSlower(t *testing.T) {
	run := func(mode core.ClockMode) float64 {
		swc := fabric.SwitchConfig{
			BufferBytes:    150_000,
			ColorThreshold: 40_000,
			ECN:            fabric.ECNStep,
			KEcn:           40_000,
		}
		s, n := starNet(t, 17, swc)
		rec := stats.NewRecorder()
		cfg := DCTCPConfig()
		cfg.TLT = core.Config{Enabled: true, Clock: mode}
		for i := 0; i < 16; i++ {
			f := &transport.Flow{ID: packet.FlowID(i + 1), Src: packet.NodeID(i + 1), Dst: 0, Size: 16_000, FG: true}
			StartFlow(s, n.Hosts[i+1], n.Hosts[0], f, cfg, rec, nil)
		}
		s.Run(10 * sim.Second)
		fcts := rec.Select(true)
		if len(fcts) != 16 {
			t.Fatalf("%d flows finished", len(fcts))
		}
		return stats.Percentile(fcts, 1)
	}
	adaptive := run(core.ClockAdaptive)
	oneByte := run(core.ClockOneByte)
	if oneByte < adaptive {
		t.Fatalf("1-byte clocking (%v) should not beat adaptive (%v)", oneByte, adaptive)
	}
}

func TestSenderStateAccessors(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DCTCPConfig()
	cfg.TLT = core.Config{Enabled: true}
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 5_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	if c.Sender.Cwnd() != float64(cfg.InitWindowSegs*cfg.MSS) {
		t.Fatalf("initial cwnd = %v", c.Sender.Cwnd())
	}
	s.RunAll()
	if c.Sender.SndUna() != 5_000 {
		t.Fatalf("snd.una = %d", c.Sender.SndUna())
	}
	if c.Sender.TLTInFlightImportant() {
		t.Fatal("important in flight after completion")
	}
}
