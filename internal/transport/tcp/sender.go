package tcp

import (
	"fmt"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// Typed event kinds: the RTO and TLP lazy-deadline ticks fire through
// static handlers on preallocated per-sender events, so re-arming a
// timer never allocates (the old method-value At path boxed a closure
// per arm).
var kindRTOTick, kindTLPTick sim.EventKind

func init() {
	kindRTOTick = sim.NewKind(func(_, arg any) { arg.(*Sender).rtoTick() })
	kindTLPTick = sim.NewKind(func(_, arg any) { arg.(*Sender).tlpTick() })
}

// segment is one MSS-aligned unit of the send scoreboard.
type segment struct {
	start, end int64
	sacked     bool
	lost       bool
	retx       bool // a retransmission of this (lost) segment is in flight
	sampled    bool // delivery-time sample taken
	everSent   bool
	firstSent  sim.Time
	lastSent   sim.Time
}

// Sender is the sending endpoint of a TCP-family connection.
type Sender struct {
	s    *sim.Sim
	host *fabric.Host
	flow *transport.Flow
	cfg  Config

	rec      *stats.FlowRecord
	recorder *stats.Recorder
	onDone   func()

	// Stream state.
	appLimit int64 // bytes the application has written so far
	closed   bool  // application finished writing
	sndUna   int64
	sndNxt   int64

	segs []segment
	head int // index of first segment not fully cum-acked

	// Aggregate scoreboard counters for O(1) pipe computation.
	sackedB   int64 // sacked bytes in [sndUna, sndNxt)
	lostB     int64 // lost, unsacked bytes
	lostRetxB int64 // subset of lostB whose retransmission is in flight

	// Congestion control.
	cwnd          float64
	ssthresh      float64
	inRecovery    bool
	recoveryPoint int64
	lostEdge      int64 // bytes below this and unsacked are lost (dupthresh=1)
	edgeApplied   int64 // lostEdge already folded into segment flags up to here

	// DCTCP.
	alpha        float64
	ceAcked      int64
	totAcked     int64
	nextAlphaSeq int64

	// Timers. Deadlines are lazy: re-arming only moves the deadline
	// field; the scheduled event re-checks and re-schedules itself,
	// which keeps the event heap small under per-ACK restarts.
	rtoEst      *transport.RTOEstimator
	rtoDeadline sim.Time // 0 = disarmed
	rtoPending  bool
	rtoTimer    sim.Timer
	rtoEv       *sim.Event // preallocated tick event (lazily created)
	backoff     uint
	retries     int // consecutive RTO rounds without forward progress

	tlpDeadline sim.Time
	tlpPending  bool
	tlpTimer    sim.Timer
	tlpEv       *sim.Event // preallocated tick event (lazily created)
	tlpFired    bool       // one probe per episode

	tlt *core.WindowSender

	done    bool
	aborted bool

	// OnAbort fires once when the sender gives up (RTO.MaxRetries
	// consecutive timeouts without progress). Set by the connection
	// wiring; may be nil.
	OnAbort func()
}

// NewSender constructs a sender on host for flow. It does not register
// with the host nor start transmitting; see NewConnection.
func NewSender(s *sim.Sim, host *fabric.Host, flow *transport.Flow, cfg Config,
	rec *stats.FlowRecord, recorder *stats.Recorder, onDone func()) *Sender {
	cfg.TLT.Flow = flow.ID
	snd := &Sender{
		s: host.Sim(), host: host, flow: flow, cfg: cfg,
		rec: rec, recorder: recorder, onDone: onDone,
		cwnd:     float64(cfg.InitWindowSegs * cfg.MSS),
		ssthresh: cfg.MaxCwndBytes,
		rtoEst:   transport.NewRTOEstimator(cfg.RTO),
		tlt:      core.NewWindowSender(cfg.TLT),
	}
	// Size the scoreboard up front when the flow length is known:
	// growing it by geometric append copies the whole array log(n) times,
	// which the memory profile shows as the single largest source of
	// allocated bytes on large sweeps. Slack covers the extra 1-byte
	// clock-probe segments and is proportional to the flow, floored at 8
	// — a flat slack dominates the sender's footprint on million-flow
	// churn runs where most flows are 1-3 segments. App-driven flows
	// (Size 0) and outliers past the cap still grow on demand.
	if flow.Size > 0 {
		nsegs := (flow.Size + int64(cfg.MSS) - 1) / int64(cfg.MSS)
		slack := nsegs / 4
		if slack < 8 {
			slack = 8
		}
		nsegs += slack
		if nsegs > 1<<16 {
			nsegs = 1 << 16
		}
		snd.segs = make([]segment, 0, nsegs)
	}
	return snd
}

// Write appends n bytes to the stream and kicks transmission.
func (s *Sender) Write(n int64) {
	s.appLimit += n
	if !s.done {
		s.output()
		s.armTimers()
	}
}

// Close marks the stream complete; the sender finishes when everything is
// acknowledged.
func (s *Sender) Close() { s.closed = true }

// Done reports sender-side completion (all written bytes acknowledged).
func (s *Sender) Done() bool { return s.done }

// Cwnd returns the congestion window in bytes (for tests).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Alpha returns the DCTCP alpha estimate (for tests).
func (s *Sender) Alpha() float64 { return s.alpha }

// SndUna returns the first unacknowledged byte (for tests).
func (s *Sender) SndUna() int64 { return s.sndUna }

// TLTInFlightImportant reports whether an important packet is outstanding
// (for invariant tests).
func (s *Sender) TLTInFlightImportant() bool { return s.tlt.InFlight() }

// FlowStatus implements transport.StatusReporter for stall reports.
func (s *Sender) FlowStatus() transport.FlowStatus {
	state := "open"
	switch {
	case s.aborted:
		state = "aborted"
	case s.done:
		state = "done"
	case s.inRecovery:
		state = "recovery"
	case s.backoff > 0:
		state = "rto-backoff"
	case s.cwnd < s.ssthresh:
		state = "slow-start"
	}
	if s.backoff > 0 && !s.done {
		state += fmt.Sprintf("(backoff=%d)", s.backoff)
	}
	fs := transport.FlowStatus{
		Flow:              s.flow.ID,
		Transport:         "tcp",
		State:             state,
		Done:              s.done,
		Aborted:           s.aborted,
		AckedBytes:        s.sndUna,
		TotalBytes:        s.appLimit,
		OutstandingBytes:  s.sndNxt - s.sndUna,
		LostBytes:         s.lostB,
		ImportantInFlight: s.tlt.InFlight(),
		RTOArmed:          s.rtoDeadline > 0,
		RTODeadline:       s.rtoDeadline,
	}
	if s.tlpDeadline > 0 {
		fs.Timers = append(fs.Timers, fmt.Sprintf("tlp@%v", s.tlpDeadline))
	}
	return fs
}

// Start begins transmission (call at flow start time).
func (s *Sender) Start() {
	s.output()
	s.armTimers()
}

// Handle implements fabric.PacketHandler for the ACK path.
func (s *Sender) Handle(pkt *packet.Packet) {
	if pkt.Type != packet.Ack || s.done {
		return
	}
	s.onAck(pkt)
}

func (s *Sender) pipe() float64 {
	return float64((s.sndNxt - s.sndUna) - s.sackedB - (s.lostB - s.lostRetxB))
}

func (s *Sender) outstanding() bool { return s.sndUna < s.sndNxt }
func (s *Sender) unsent() bool      { return s.sndNxt < s.appLimit }

// segAt returns the index of the segment containing seq, or -1.
func (s *Sender) segAt(seq int64) int {
	lo, hi := s.head, len(s.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.segs[mid].end <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.segs) && s.segs[lo].start <= seq && seq < s.segs[lo].end {
		return lo
	}
	return -1
}

func (s *Sender) markSacked(i int) {
	seg := &s.segs[i]
	if seg.sacked {
		return
	}
	n := seg.end - seg.start
	seg.sacked = true
	s.sackedB += n
	if seg.lost {
		seg.lost = false
		s.lostB -= n
		if seg.retx {
			seg.retx = false
			s.lostRetxB -= n
		}
	}
	s.sampleDelivery(seg)
}

func (s *Sender) markLost(i int) {
	seg := &s.segs[i]
	if seg.sacked || seg.lost {
		return
	}
	seg.lost = true
	s.lostB += seg.end - seg.start
}

func (s *Sender) clearRetx(i int) {
	seg := &s.segs[i]
	if seg.retx {
		seg.retx = false
		if seg.lost {
			s.lostRetxB -= seg.end - seg.start
		}
	}
}

func (s *Sender) sampleDelivery(seg *segment) {
	if seg.sampled || s.recorder == nil || s.recorder.DeliverySamples == nil {
		return
	}
	seg.sampled = true
	s.recorder.DeliverySamples.Add((s.s.Now() - seg.firstSent).Seconds())
}

// advanceUna applies a cumulative ACK.
func (s *Sender) advanceUna(ack int64) {
	for s.head < len(s.segs) && s.segs[s.head].end <= ack {
		seg := &s.segs[s.head]
		n := seg.end - seg.start
		if seg.sacked {
			s.sackedB -= n
		}
		if seg.lost {
			s.lostB -= n
			if seg.retx {
				s.lostRetxB -= n
			}
		}
		s.sampleDelivery(seg)
		s.head++
	}
	// Partial ACK within a segment (1-byte clock probes advance the
	// stream by single bytes): shrink the head segment.
	if s.head < len(s.segs) {
		seg := &s.segs[s.head]
		if seg.start < ack {
			n := ack - seg.start
			if seg.sacked {
				s.sackedB -= n
			}
			if seg.lost {
				s.lostB -= n
				if seg.retx {
					s.lostRetxB -= n
				}
			}
			seg.start = ack
		}
	}
	s.sndUna = ack
	if s.lostEdge < ack {
		s.lostEdge = ack
	}
	// Compact the scoreboard occasionally.
	if s.head > 4096 && s.head*2 > len(s.segs) {
		s.segs = append(s.segs[:0], s.segs[s.head:]...)
		s.head = 0
	}
}

func (s *Sender) applySack(blocks []packet.SackBlock) {
	for _, b := range blocks {
		if b.End <= s.sndUna {
			continue
		}
		i := s.segAt(max64(b.Start, s.sndUna))
		if i < 0 {
			continue
		}
		for ; i < len(s.segs) && s.segs[i].end <= b.End; i++ {
			s.markSacked(i)
		}
		if b.End > s.lostEdge && b.Start > s.sndUna {
			// bytes below the start of a sacked range are suspect;
			// with dupthresh=1 they are lost.
			if b.Start > s.lostEdge {
				s.lostEdge = b.Start
			}
		}
	}
}

// applyLostEdge marks unsacked segments below lostEdge lost. Segments
// below edgeApplied are already settled (lost or sacked), so only the
// newly exposed span is scanned.
func (s *Sender) applyLostEdge() {
	if s.lostEdge <= s.edgeApplied {
		return
	}
	i := s.head
	if s.edgeApplied > s.sndUna {
		if j := s.segAt(s.edgeApplied); j >= 0 {
			i = j
		}
	}
	for ; i < len(s.segs) && s.segs[i].start < s.lostEdge; i++ {
		s.markLost(i)
	}
	s.edgeApplied = s.lostEdge
}

// rackMark applies TLT's guaranteed loss detection: the echo of an
// important packet sent at impSentAt proves the path round-tripped, so
// anything transmitted strictly earlier and still unacknowledged is lost;
// retransmissions sent before it that remain unacked were lost again and
// are invalidated so the rescue carries a full MSS. In the 1-byte
// ablation (Fig. 17) the rescue must ride the clock payload alone, so
// stale retransmissions are left in place and the stream crawls forward
// one byte per RTT — the pathology of Figure 3(b).
func (s *Sender) rackMark(impSentAt sim.Time) {
	rescueRetx := s.tlt.Mode() != core.ClockOneByte
	for i := s.head; i < len(s.segs); i++ {
		seg := &s.segs[i]
		if !seg.everSent || seg.sacked {
			continue
		}
		if seg.lastSent < impSentAt {
			if seg.retx && rescueRetx {
				s.clearRetx(i)
			}
			if !seg.retx {
				s.markLost(i)
			}
		}
	}
}

func (s *Sender) maybeEnterRecovery() {
	if s.inRecovery || s.lostB == 0 {
		return
	}
	s.inRecovery = true
	s.recoveryPoint = s.sndNxt
	s.rec.FastRecov++
	half := s.cwnd / 2
	if half < 2*float64(s.cfg.MSS) {
		half = 2 * float64(s.cfg.MSS)
	}
	s.ssthresh = half
	s.cwnd = half
}

func (s *Sender) onAck(pkt *packet.Packet) {
	now := s.s.Now()

	// RTT sampling (Karn: receivers echo timestamps only for
	// non-retransmitted packets).
	if pkt.EchoTS > 0 {
		rtt := now - pkt.EchoTS
		s.rtoEst.Sample(rtt)
		if s.recorder != nil {
			if s.flow.FG {
				if s.recorder.RTTSamplesFG != nil {
					s.recorder.RTTSamplesFG.Add(rtt.Seconds())
					s.recorder.RTOSamplesFG.Add(s.rtoEst.RTO().Seconds())
				}
			} else if s.recorder.RTTSamplesBG != nil {
				s.recorder.RTTSamplesBG.Add(rtt.Seconds())
				s.recorder.RTOSamplesBG.Add(s.rtoEst.RTO().Seconds())
			}
		}
	}

	// TLT echo pre-processing (Algorithm 1 ReceiveAck).
	stale := false
	var impSentAt sim.Time
	rackOK := false
	if s.tlt.Enabled() {
		switch pkt.Mark {
		case packet.ImportantEcho:
			impSentAt, rackOK = s.tlt.OnEcho()
		case packet.ImportantClockEcho:
			stale = core.StaleClockEcho(pkt.Mark, pkt.Ack, s.sndUna)
			impSentAt, rackOK = s.tlt.OnEcho()
		}
	}

	newly := int64(0)
	if pkt.Ack > s.sndUna {
		newly = pkt.Ack - s.sndUna
		s.advanceUna(pkt.Ack)
	}
	s.applySack(pkt.Sack)
	if rackOK {
		s.rackMark(impSentAt)
	}
	s.applyLostEdge()
	s.maybeEnterRecovery()

	if !stale {
		s.ccOnAck(pkt, newly)
	}

	if s.inRecovery && s.sndUna >= s.recoveryPoint {
		s.inRecovery = false
	}
	if newly > 0 {
		s.backoff = 0
		s.retries = 0 // Karn: forward progress resets the give-up counter
		s.tlpFired = false
	}

	if s.closed && s.sndUna >= s.appLimit {
		s.complete()
		return
	}

	s.output()

	// Important ACK-clocking: the echo armed us, but the window (or the
	// send buffer) did not let output consume the mark. Inject an
	// important packet regardless of window to keep the clock alive.
	if s.tlt.Armed() && (s.outstanding() || s.unsent()) {
		s.importantClock()
	}

	s.armTimers()
}

func (s *Sender) ccOnAck(pkt *packet.Packet, newly int64) {
	if s.cfg.DCTCP {
		s.totAcked += newly
		if pkt.ECE {
			s.ceAcked += newly
		}
		if s.sndUna >= s.nextAlphaSeq && s.totAcked > 0 {
			f := float64(s.ceAcked) / float64(s.totAcked)
			s.alpha = (1-s.cfg.DctcpG)*s.alpha + s.cfg.DctcpG*f
			if s.ceAcked > 0 && !s.inRecovery {
				s.cwnd = s.cwnd * (1 - s.alpha/2)
				if s.cwnd < float64(s.cfg.MSS) {
					s.cwnd = float64(s.cfg.MSS)
				}
				s.ssthresh = s.cwnd
			}
			s.ceAcked, s.totAcked = 0, 0
			s.nextAlphaSeq = s.sndNxt
		}
	}
	if s.inRecovery || newly <= 0 {
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd += float64(newly) // slow start
	} else {
		s.cwnd += float64(s.cfg.MSS) * float64(newly) / s.cwnd // CA
	}
	if s.cwnd > s.cfg.MaxCwndBytes {
		s.cwnd = s.cfg.MaxCwndBytes
	}
}

// nextRetxIdx returns the first lost segment without an in-flight
// retransmission, or -1.
func (s *Sender) nextRetxIdx() int {
	if s.lostB <= s.lostRetxB {
		return -1
	}
	for i := s.head; i < len(s.segs); i++ {
		seg := &s.segs[i]
		if seg.lost && !seg.retx {
			return i
		}
	}
	return -1
}

// output transmits retransmissions then new data while the window allows.
func (s *Sender) output() {
	if s.done {
		return
	}
	for {
		if s.pipe() >= s.cwnd {
			return
		}
		if i := s.nextRetxIdx(); i >= 0 {
			more := s.moreAfterRetx(i)
			s.transmitSeg(i, true, s.tlt.TakeMark(!more, s.s.Now()))
			continue
		}
		if !s.unsent() {
			return
		}
		n := s.appLimit - s.sndNxt
		if n > int64(s.cfg.MSS) {
			n = int64(s.cfg.MSS)
		}
		s.segs = append(s.segs, segment{start: s.sndNxt, end: s.sndNxt + n})
		i := len(s.segs) - 1
		s.sndNxt += n
		more := s.unsent() && s.pipe()+float64(n) < s.cwnd
		s.transmitSeg(i, false, s.tlt.TakeMark(!more, s.s.Now()))
	}
}

// moreAfterRetx reports whether further transmission could follow the
// retransmission of segment i within the current window.
func (s *Sender) moreAfterRetx(i int) bool {
	n := s.segs[i].end - s.segs[i].start
	if s.pipe()+float64(n) >= s.cwnd {
		return false
	}
	// Another retransmission remains if the lost-without-retx byte count
	// exceeds this segment, or fresh data is waiting.
	return s.unsent() || s.lostB-s.lostRetxB > n
}

// transmitSeg puts segment i on the wire.
func (s *Sender) transmitSeg(i int, isRetx bool, mark packet.Mark) {
	seg := &s.segs[i]
	now := s.s.Now()
	if !seg.everSent {
		seg.everSent = true
		seg.firstSent = now
	}
	seg.lastSent = now
	if isRetx {
		if seg.lost && !seg.retx {
			seg.retx = true
			s.lostRetxB += seg.end - seg.start
		}
		s.rec.RetxPackets++
	}
	// Field-by-field fill: NewPacket returns a zeroed struct, and a
	// composite-literal assignment would redundantly copy the whole
	// (INT-array-bearing) packet through a stack temporary.
	pkt := s.host.NewPacket()
	pkt.Flow, pkt.Dst = s.flow.ID, s.flow.Dst
	pkt.Type = packet.Data
	pkt.TC = s.cfg.TrafficClass
	pkt.Seq, pkt.Len = seg.start, int(seg.end-seg.start)
	pkt.Mark = mark
	pkt.ECT = s.cfg.ECN
	if !isRetx {
		pkt.SentAt = now // Karn: no RTT sample from retransmissions
	}
	pkt.IsRetx = isRetx
	s.accountSend(pkt)
	s.host.Send(pkt)
}

func (s *Sender) accountSend(pkt *packet.Packet) {
	s.rec.SentPackets++
	size := int64(pkt.WireSize())
	s.rec.TotalBytes += size
	if pkt.Important() {
		s.rec.ImpPackets++
		s.rec.ImpBytes += size
	}
}

// importantClock injects an important packet ignoring the window
// (Algorithm 1 importantAckClocking, with the adaptive payload of §5.1).
func (s *Sender) importantClock() {
	now := s.s.Now()
	mode := s.tlt.Mode()

	// Loss indicated and policy allows: retransmit a full MSS of the
	// first lost data to speed recovery.
	if i := s.nextRetxIdx(); i >= 0 && mode != core.ClockOneByte {
		s.rec.ClockSends++
		s.rec.ClockBytes += s.segs[i].end - s.segs[i].start
		s.transmitSeg(i, true, s.tlt.TakeClockMark(now))
		return
	}

	if mode == core.ClockFullMTU {
		// Redundantly retransmit the first unacked segment in full.
		if i := s.firstUnackedIdx(); i >= 0 {
			s.rec.ClockSends++
			s.rec.ClockBytes += s.segs[i].end - s.segs[i].start
			s.transmitSeg(i, true, s.tlt.TakeClockMark(now))
			return
		}
	}

	// Default: a 1-byte probe of the first unacked byte, minimizing
	// footprint while keeping the ACK clock alive.
	if !s.outstanding() && !s.unsent() {
		return
	}
	seq := s.sndUna
	if seq >= s.sndNxt {
		// Nothing outstanding but data unsent (window collapsed to
		// zero is impossible with cwnd>=1 MSS, but guard anyway):
		// send 1 byte of new data.
		if !s.unsent() {
			return
		}
		s.segs = append(s.segs, segment{start: s.sndNxt, end: s.sndNxt + 1})
		i := len(s.segs) - 1
		s.sndNxt++
		s.rec.ClockSends++
		s.rec.ClockBytes++
		s.transmitSeg(i, false, s.tlt.TakeClockMark(now))
		return
	}
	pkt := s.host.NewPacket()
	pkt.Flow, pkt.Dst = s.flow.ID, s.flow.Dst
	pkt.Type = packet.Data
	pkt.TC = s.cfg.TrafficClass
	pkt.Seq, pkt.Len = seq, 1
	pkt.Mark = s.tlt.TakeClockMark(now)
	pkt.ECT = s.cfg.ECN
	pkt.IsRetx = true
	s.rec.ClockSends++
	s.rec.ClockBytes++
	s.accountSend(pkt)
	s.host.Send(pkt)
}

func (s *Sender) firstUnackedIdx() int {
	for i := s.head; i < len(s.segs); i++ {
		if !s.segs[i].sacked {
			return i
		}
	}
	return -1
}

func (s *Sender) armTimers() {
	s.armRTO()
	s.armTLP()
}

func (s *Sender) armRTO() {
	if s.done || !s.outstanding() {
		s.rtoDeadline = 0
		return
	}
	rto := s.rtoEst.RTO() << s.backoff
	s.rtoDeadline = s.s.Now() + rto
	if !s.rtoPending {
		s.rtoPending = true
		if s.rtoEv == nil {
			s.rtoEv = s.s.NewKindEvent(kindRTOTick, 0, s)
		}
		s.rtoTimer = s.s.ScheduleTimer(s.rtoEv, s.rtoDeadline)
	}
}

func (s *Sender) rtoTick() {
	s.rtoPending = false
	if s.done || s.rtoDeadline == 0 {
		return
	}
	if now := s.s.Now(); now < s.rtoDeadline {
		s.rtoPending = true
		s.rtoTimer = s.s.ScheduleTimer(s.rtoEv, s.rtoDeadline)
		return
	}
	s.onRTO()
}

func (s *Sender) armTLP() {
	if !s.cfg.TLP || s.tlt.Enabled() || s.done || !s.outstanding() || s.tlpFired {
		s.tlpDeadline = 0
		return
	}
	pto := 2 * s.rtoEst.SRTT()
	if pto < s.cfg.TLPMinPTO {
		pto = s.cfg.TLPMinPTO
	}
	s.tlpDeadline = s.s.Now() + pto
	if !s.tlpPending {
		s.tlpPending = true
		if s.tlpEv == nil {
			s.tlpEv = s.s.NewKindEvent(kindTLPTick, 0, s)
		}
		s.tlpTimer = s.s.ScheduleTimer(s.tlpEv, s.tlpDeadline)
	}
}

func (s *Sender) tlpTick() {
	s.tlpPending = false
	if s.done || s.tlpDeadline == 0 {
		return
	}
	if now := s.s.Now(); now < s.tlpDeadline {
		s.tlpPending = true
		s.tlpTimer = s.s.ScheduleTimer(s.tlpEv, s.tlpDeadline)
		return
	}
	s.onTLP()
}

func (s *Sender) onTLP() {
	if s.done || !s.outstanding() {
		return
	}
	s.tlpFired = true
	// Probe: transmit new data if available, else retransmit the
	// highest-sequence outstanding segment.
	if s.unsent() {
		n := s.appLimit - s.sndNxt
		if n > int64(s.cfg.MSS) {
			n = int64(s.cfg.MSS)
		}
		s.segs = append(s.segs, segment{start: s.sndNxt, end: s.sndNxt + n})
		i := len(s.segs) - 1
		s.sndNxt += n
		s.transmitSeg(i, false, s.tlt.TakeMark(false, s.s.Now()))
	} else if i := s.firstUnackedIdx(); i >= 0 {
		// Retransmit the last unsacked segment (TLP probes the tail).
		last := i
		for j := i; j < len(s.segs); j++ {
			if !s.segs[j].sacked {
				last = j
			}
		}
		s.transmitSeg(last, true, packet.Unimportant)
	}
	s.armRTO()
}

func (s *Sender) onRTO() {
	if s.done || !s.outstanding() {
		return
	}
	s.rec.Timeouts++
	s.retries++
	if s.cfg.RTO.MaxRetries > 0 && s.retries >= s.cfg.RTO.MaxRetries {
		s.abort()
		return
	}
	maxShift := uint(12) // Linux-like default cap
	if s.cfg.RTO.MaxBackoffShift > 0 {
		maxShift = s.cfg.RTO.MaxBackoffShift
	}
	if s.backoff < maxShift {
		s.backoff++
	}
	// Collapse to loss recovery: everything unsacked is lost; any
	// retransmission in flight is presumed lost too.
	s.lostEdge = s.sndNxt
	s.edgeApplied = s.sndNxt
	for i := s.head; i < len(s.segs); i++ {
		s.clearRetx(i)
		s.markLost(i)
	}
	half := s.pipe() / 2
	if half < 2*float64(s.cfg.MSS) {
		half = 2 * float64(s.cfg.MSS)
	}
	s.ssthresh = half
	s.cwnd = float64(s.cfg.MSS)
	s.inRecovery = true
	s.recoveryPoint = s.sndNxt
	s.tlt.Reset()
	s.output()
	s.armRTO()
}

func (s *Sender) complete() {
	if s.done {
		return
	}
	s.done = true
	s.rtoDeadline = 0
	s.tlpDeadline = 0
	s.stopTimers()
	if s.onDone != nil {
		s.onDone()
	}
}

// stopTimers cancels any pending tick events. The ticks would be no-ops
// once done, but a cancelled event is reclaimed by the scheduler right
// away, while a parked one pins the whole Sender in memory until its
// deadline passes — on churn workloads that window (RTOmin and up) can
// exceed the entire run, turning "done" senders into O(flows) live heap.
func (s *Sender) stopTimers() {
	s.rtoTimer.Stop()
	s.tlpTimer.Stop()
	s.rtoPending = false
	s.tlpPending = false
}

// abort terminates the flow after MaxRetries consecutive timeouts: the
// path is treated as permanently black-holed (IB QP retry exhaustion /
// tcp_retries2 giving up). The sender stops retransmitting and reports
// terminal state through OnAbort and FlowStatus.
func (s *Sender) abort() {
	if s.done {
		return
	}
	s.done = true
	s.aborted = true
	s.rtoDeadline = 0
	s.tlpDeadline = 0
	s.stopTimers()
	s.tlt.Reset()
	if s.OnAbort != nil {
		s.OnAbort()
	}
}

// Aborted reports whether the sender gave up (for tests).
func (s *Sender) Aborted() bool { return s.aborted }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
