package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport"
)

// TestIncrementalDeployment models §5.3: TLT-enabled machines use a
// dedicated switch queue (class 0) with color-aware dropping; legacy
// machines share the port on a separate queue (class 1) that never sees
// color drops. TLT flows stay timeout-free while legacy traffic is
// unaffected by the color threshold.
func TestIncrementalDeployment(t *testing.T) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       65,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes:    2_000_000,
			TrafficClasses: 2,
			ColorThreshold: 100_000, // applies to class 0 only
			ECN:            fabric.ECNStep,
			KEcn:           200_000,
		},
	})
	rec := stats.NewRecorder()

	tltCfg := DCTCPConfig()
	tltCfg.TLT = core.Config{Enabled: true}
	tltCfg.TrafficClass = 0

	legacyCfg := DCTCPConfig()
	legacyCfg.TrafficClass = 1

	// 32 TLT incast flows and 32 legacy incast flows share the receiver
	// port.
	for i := 0; i < 64; i++ {
		src := n.Hosts[i+1]
		f := &transport.Flow{
			ID:  packet.FlowID(i + 1),
			Src: src.ID(), Dst: 0,
			Size: 8_000, FG: i < 32,
		}
		cfg := legacyCfg
		if i < 32 {
			cfg = tltCfg
		}
		StartFlow(s, src, n.Hosts[0], f, cfg, rec, nil)
	}
	s.Run(5 * sim.Second)

	var tltTimeouts, legacyTimeouts int
	for _, fr := range rec.Flows {
		if !fr.Done {
			t.Fatalf("flow %d incomplete", fr.Flow.ID)
		}
		if fr.Flow.FG {
			tltTimeouts += fr.Timeouts
		} else {
			legacyTimeouts += fr.Timeouts
		}
	}
	if tltTimeouts != 0 {
		t.Fatalf("TLT-class flows hit %d timeouts", tltTimeouts)
	}
	ctr := n.Counters()
	// The color threshold only ever dropped class-0 (red) packets; the
	// legacy class is unaffected by TLT's presence. Legacy drops, if
	// any, come from the shared dynamic threshold like before.
	if ctr.DropRedColor == 0 {
		t.Skip("scenario did not exercise color dropping")
	}
	if ctr.DropGreen != 0 {
		t.Fatalf("important packets dropped: %d", ctr.DropGreen)
	}
}

// TestTrafficClassIsolation verifies round-robin scheduling between the
// class queues: a backlogged legacy class cannot starve the TLT class.
func TestTrafficClassIsolation(t *testing.T) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       3,
		LinkRateBps: 40e9,
		LinkDelay:   10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{
			BufferBytes:    8_000_000,
			TrafficClasses: 2,
		},
	})
	rec := stats.NewRecorder()

	legacy := DefaultConfig()
	legacy.TrafficClass = 1
	bg := &transport.Flow{ID: 1, Src: 1, Dst: 0, Size: 20_000_000}
	StartFlow(s, n.Hosts[1], n.Hosts[0], bg, legacy, rec, nil)

	// Let the legacy flow build a standing queue, then run a short
	// class-0 flow through the same port.
	s.Run(2 * sim.Millisecond)
	cls0 := DefaultConfig()
	fg := &transport.Flow{ID: 2, Src: 2, Dst: 0, Size: 32_000, Start: s.Now(), FG: true}
	StartFlow(s, n.Hosts[2], n.Hosts[0], fg, cls0, rec, nil)
	s.Run(sim.Second)

	var fgRec *stats.FlowRecord
	for _, fr := range rec.Flows {
		if fr.Flow.FG {
			fgRec = fr
		}
	}
	if fgRec == nil || !fgRec.Done {
		t.Fatal("foreground flow incomplete")
	}
	// With round-robin it gets ~half the link; without isolation it
	// would sit behind the full legacy backlog.
	if fct := fgRec.FCT(); fct > 2*sim.Millisecond {
		t.Fatalf("class-0 flow FCT %v: starved behind legacy backlog", fct)
	}
}
