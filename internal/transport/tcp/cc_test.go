package tcp

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

// blackholeSender builds a sender whose packets all vanish, to observe
// timer behaviour in isolation.
func blackholeSender(t *testing.T, cfg Config, size int64) (*sim.Sim, *Sender, *stats.FlowRecord) {
	t.Helper()
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	atx.DropWhen(func(*packet.Packet) bool { return true })
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	rec := stats.NewRecorder()
	fr := rec.NewFlowRecord(flow)
	snd := NewSender(s, src, flow, cfg, fr, rec, nil)
	src.Register(1, snd)
	snd.Write(size)
	snd.Close()
	return s, snd, fr
}

func TestRTOExponentialBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	s, _, fr := blackholeSender(t, cfg, 8_000)
	// With RTOmin=1ms and doubling: fires at ~1, 3, 7, 15, 31 ms...
	s.Run(2 * sim.Millisecond)
	if fr.Timeouts != 1 {
		t.Fatalf("timeouts at 2ms = %d, want 1", fr.Timeouts)
	}
	s.Run(4 * sim.Millisecond)
	if fr.Timeouts != 2 {
		t.Fatalf("timeouts at 4ms = %d, want 2 (backoff doubled)", fr.Timeouts)
	}
	s.Run(10 * sim.Millisecond)
	if fr.Timeouts != 3 {
		t.Fatalf("timeouts at 10ms = %d, want 3", fr.Timeouts)
	}
	// Without backoff there would be ~10 by now.
	s.Run(40 * sim.Millisecond)
	if fr.Timeouts > 6 {
		t.Fatalf("timeouts at 40ms = %d; backoff not exponential", fr.Timeouts)
	}
}

func TestBackoffResetsOnProgress(t *testing.T) {
	// After several RTOs, one delivered ACK must reset the backoff.
	s := sim.New()
	src := fabric.NewHost(s, 0)
	dst := fabric.NewHost(s, 1)
	atx, _ := fabric.Connect(s, src, 0, dst, 0, 40e9, sim.Microsecond)
	blackhole := true
	atx.DropWhen(func(*packet.Packet) bool { return blackhole })
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 8_000}
	rec := stats.NewRecorder()
	fr := rec.NewFlowRecord(flow)
	cfg := DefaultConfig()
	cfg.RTO.Min = sim.Millisecond
	snd := NewSender(s, src, flow, cfg, fr, rec, nil)
	rcv := NewReceiver(s, dst, flow, cfg)
	src.Register(1, snd)
	dst.Register(1, rcv)
	snd.Write(8_000)
	snd.Close()
	s.Run(8 * sim.Millisecond) // two RTOs, backoff at 4x
	if fr.Timeouts < 2 {
		t.Fatalf("setup failed: %d timeouts", fr.Timeouts)
	}
	blackhole = false // heal the path
	s.Run(sim.Second)
	if !snd.Done() {
		t.Fatal("flow incomplete after heal")
	}
	if snd.backoff != 0 {
		t.Fatalf("backoff = %d after progress", snd.backoff)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	// Base RTT ~44us. After ~5 RTTs of slow start from 10kB the window
	// should have grown manyfold (no loss, no ECN on this switch).
	s.Run(250 * sim.Microsecond)
	if c.Sender.Cwnd() < 100_000 {
		t.Fatalf("cwnd = %.0f after 5 RTTs, slow start too slow", c.Sender.Cwnd())
	}
	if c.Sender.Cwnd() > cfg.MaxCwndBytes {
		t.Fatal("cwnd above cap")
	}
}

func TestCwndCapped(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig()
	cfg.MaxCwndBytes = 50_000
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 5_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
	if c.Sender.Cwnd() > 50_000 {
		t.Fatalf("cwnd %v exceeded cap", c.Sender.Cwnd())
	}
}

func TestRecoveryHalvesWindow(t *testing.T) {
	// Force one clean loss mid-flow and observe the multiplicative
	// decrease plus recovery exit.
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	cfg := DefaultConfig()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 2_000_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	dropped := false
	n.Hosts[0].NICTx().DropWhen(func(p *packet.Packet) bool {
		if !dropped && p.Type == packet.Data && p.Seq == 200_000 {
			dropped = true
			return true
		}
		return false
	})
	var before float64
	s.After(0, func() {
		var poll func()
		poll = func() {
			if !dropped {
				before = c.Sender.Cwnd()
				s.After(5*sim.Microsecond, poll)
			}
		}
		poll()
	})
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
	if !dropped {
		t.Skip("loss never triggered")
	}
	if rec.Flows[0].FastRecov != 1 {
		t.Fatalf("fast recovery episodes = %d, want 1", rec.Flows[0].FastRecov)
	}
	if rec.Flows[0].Timeouts != 0 {
		t.Fatal("single loss must not cost an RTO")
	}
	_ = before
}
