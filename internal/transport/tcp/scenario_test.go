package tcp

import (
	"testing"

	"tlt/internal/core"
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/trace"
	"tlt/internal/transport"
)

// scenario builds a two-host network where the sender-side uplink can
// drop packets deterministically.
func scenario(t *testing.T, cfg Config, size int64) (*sim.Sim, *topo.Network, *Conn, *stats.Recorder, *trace.Tracer) {
	t.Helper()
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: 10 * sim.Microsecond,
		Switch: fabric.SwitchConfig{BufferBytes: 4 << 20, ColorThreshold: 400_000},
	})
	rec := stats.NewRecorder()
	tr := trace.New(0)
	tr.Attach(n.Hosts[0])
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, cfg, rec, nil)
	return s, n, c, rec, tr
}

// TestFigure3aLossDetection reproduces Figure 3(a): the tail of the
// window is lost, yet the important packet's echo detects the loss within
// one RTT and recovery needs no timeout.
func TestFigure3aLossDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLT = core.Config{Enabled: true}
	s, n, c, rec, _ := scenario(t, cfg, 8_000)

	// Drop the unimportant packets carrying bytes 4000-6999 once; the
	// important burst-tail (7000-7999) passes.
	dropped := map[int64]bool{}
	n.Hosts[0].NICTx().DropWhen(func(p *packet.Packet) bool {
		if p.Type == packet.Data && p.Seq >= 4000 && p.Seq < 7000 && !dropped[p.Seq] {
			dropped[p.Seq] = true
			return true
		}
		return false
	})
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
	fr := rec.Flows[0]
	if fr.Timeouts != 0 {
		t.Fatalf("timeouts = %d; TLT echo should have detected the loss", fr.Timeouts)
	}
	if fr.RetxPackets == 0 {
		t.Fatal("no retransmissions despite forced loss")
	}
	// Recovery within a handful of RTTs (base RTT 40us), not an RTO.
	if fct := fr.FCT(); fct > sim.Millisecond {
		t.Fatalf("FCT %v; recovery waited for something", fct)
	}
}

// TestFigure3bLostRetransmission reproduces Figure 3(b): the
// retransmission itself is lost; adaptive important ACK-clocking
// retransmits a full MSS of the lost data and recovery still completes
// without a timeout.
func TestFigure3bLostRetransmission(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLT = core.Config{Enabled: true}
	s, n, c, rec, _ := scenario(t, cfg, 8_000)

	// Drop byte-range [1000,3000) data packets twice: the original and
	// the first (fast) retransmission. Clock transmissions are
	// important and pass.
	drops := map[int64]int{}
	n.Hosts[0].NICTx().DropWhen(func(p *packet.Packet) bool {
		if p.Type == packet.Data && p.Seq >= 1000 && p.Seq < 3000 &&
			p.Mark == packet.Unimportant && drops[p.Seq] < 2 {
			drops[p.Seq]++
			return true
		}
		return false
	})
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
	fr := rec.Flows[0]
	if fr.Timeouts != 0 {
		t.Fatalf("timeouts = %d; lost retransmission should be rescued by clocking", fr.Timeouts)
	}
	if fr.ClockSends == 0 {
		t.Fatal("important ACK-clocking never fired")
	}
	// The clock echo's round trip proves the first retransmissions were
	// lost; the rescue retransmissions (Algorithm 1 lines 18-22) go out
	// marked important: 2 originals + 2 rescues at minimum.
	if fr.RetxPackets < 4 {
		t.Fatalf("retransmissions = %d, want >= 4 (originals re-lost, rescued)", fr.RetxPackets)
	}
	if fct := fr.FCT(); fct > sim.Millisecond {
		t.Fatalf("FCT %v", fct)
	}
}

// TestWholeWindowLossBaselineVsTLT: when the entire initial window is
// lost, baseline TCP has no signal at all and must take an RTO; with TLT
// the (protected) important tail survives by construction — here we force
// even unimportant copies to die, so TLT's fallback also times out. This
// pins the boundary of the guarantee: TLT prevents timeouts only when
// important packets survive.
func TestWholeWindowLossBaselineVsTLT(t *testing.T) {
	for _, tlt := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.TLT = core.Config{Enabled: tlt}
		s, n, c, rec, _ := scenario(t, cfg, 8_000)
		first := true
		n.Hosts[0].NICTx().DropWhen(func(p *packet.Packet) bool {
			// Drop every data packet in the first 100us, important or not
			// (a non-congestion fault TLT does not protect against).
			if p.Type == packet.Data && first && s.Now() < 100*sim.Microsecond {
				return true
			}
			return false
		})
		s.Run(10 * sim.Second)
		if !c.Sender.Done() {
			t.Fatalf("tlt=%v: flow incomplete", tlt)
		}
		if rec.Flows[0].Timeouts == 0 {
			t.Fatalf("tlt=%v: whole-window loss must cost an RTO", tlt)
		}
	}
}

// TestImportantEchoSequence verifies the wire-visible Figure 3(a) pattern:
// important data elicits an ImportantEcho ACK, and there is never more
// than one important (Data or ClockData) packet of the flow in flight.
func TestImportantEchoSequence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLT = core.Config{Enabled: true}
	s, _, c, _, tr := scenario(t, cfg, 32_000)
	s.Run(sim.Second)
	if !c.Sender.Done() {
		t.Fatal("flow incomplete")
	}
	inFlight := 0
	echoes, impData := 0, 0
	for _, e := range tr.Events() {
		switch {
		case e.Dir == "tx" && (e.Pkt.Mark == packet.ImportantData || e.Pkt.Mark == packet.ImportantClockData):
			impData++
			inFlight++
			if inFlight > 1 {
				t.Fatal("two important packets in flight")
			}
		case e.Dir == "rx" && (e.Pkt.Mark == packet.ImportantEcho || e.Pkt.Mark == packet.ImportantClockEcho):
			echoes++
			inFlight--
		}
	}
	if impData == 0 || echoes == 0 {
		t.Fatalf("importants=%d echoes=%d", impData, echoes)
	}
	if impData != echoes {
		t.Fatalf("unbalanced: %d important data vs %d echoes (lossless run)", impData, echoes)
	}
}
