package tcp

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
)

func TestStartFlowLifecycle(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10_000, Start: 5 * sim.Microsecond}
	fired := 0
	var doneAt sim.Time
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, func(fr *stats.FlowRecord) {
		fired++
		doneAt = fr.End
	})
	// Nothing moves before the arrival time.
	s.Run(4 * sim.Microsecond)
	if c.Receiver.Delivered() != 0 {
		t.Fatal("data moved before flow start")
	}
	s.Run(sim.Second)
	if fired != 1 {
		t.Fatalf("onDone fired %d times", fired)
	}
	fr := rec.Flows[0]
	if !fr.Done || fr.End != doneAt {
		t.Fatal("record inconsistent with callback")
	}
	if fr.FCT() <= 0 || fr.End <= f.Start {
		t.Fatalf("FCT bookkeeping wrong: start=%v end=%v", f.Start, fr.End)
	}
	// FCT is stamped at the receiver, which by then holds all bytes.
	if c.Receiver.Delivered() != f.Size {
		t.Fatal("completion before full delivery")
	}
}

func TestFCTIsReceiverSide(t *testing.T) {
	// Drop the final ACK forever: the sender keeps retransmitting, but
	// the FCT must already be stamped when the receiver has the data.
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 5_000}
	c := StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, nil)
	// Kill all ACKs from the receiver after the 3rd.
	acks := 0
	n.Hosts[1].NICTx().DropWhen(func(p *packet.Packet) bool {
		if p.Type == packet.Ack {
			acks++
			return acks > 3
		}
		return false
	})
	s.Run(20 * sim.Millisecond)
	if !rec.Flows[0].Done {
		t.Fatal("receiver-side completion should not need the last ACK delivered")
	}
	if c.Sender.Done() {
		t.Fatal("sender cannot be done without ACKs")
	}
	if fct := rec.Flows[0].FCT(); fct > sim.Millisecond {
		t.Fatalf("receiver-side FCT %v polluted by ACK loss", fct)
	}
}

func TestManyConcurrentConnsOneHostPair(t *testing.T) {
	s, n := starNet(t, 2, fabric.SwitchConfig{})
	rec := stats.NewRecorder()
	const flows = 50
	for i := 0; i < flows; i++ {
		f := &transport.Flow{ID: packet.FlowID(i + 1), Src: 0, Dst: 1, Size: 20_000}
		StartFlow(s, n.Hosts[0], n.Hosts[1], f, DefaultConfig(), rec, nil)
	}
	s.Run(sim.Second)
	if d, tot := rec.CompletedCount(false); d != tot || tot != flows {
		t.Fatalf("%d/%d complete", d, tot)
	}
	// Flow demux kept streams separate: total delivered equals the sum.
	var bytes int64
	for _, fr := range rec.Flows {
		bytes += fr.Flow.Size
	}
	if bytes != flows*20_000 {
		t.Fatalf("accounting wrong: %d", bytes)
	}
}
