package transport

import (
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// PktState is per-PSN scoreboard state for packet-sequence transports
// (RoCE family: DCQCN+SACK, IRN, HPCC).
type PktState struct {
	Sacked   bool
	Lost     bool
	Retx     bool // retransmission of this lost packet is in flight
	EverSent bool
	LastSent sim.Time
}

// PktBoard is a sender scoreboard over packet sequence numbers 0..N-1
// with selective acknowledgment, duplicate-threshold-1 loss marking, and
// time-based (RACK-style) loss detection for TLT echoes.
type PktBoard struct {
	N   int64 // message length in packets
	Una int64 // first PSN not cumulatively acked
	Nxt int64 // next fresh PSN

	st []PktState

	sacked   int64 // sacked in [Una, Nxt)
	lost     int64 // lost, unsacked
	lostRetx int64 // subset of lost with retransmission in flight
	LostEdge int64 // PSNs below this and unsacked are lost
}

// NewPktBoard returns a board for an n-packet message.
func NewPktBoard(n int64) *PktBoard {
	return &PktBoard{N: n, st: make([]PktState, n)}
}

// InFlight estimates packets currently in the network.
func (b *PktBoard) InFlight() int64 {
	return (b.Nxt - b.Una) - b.sacked - (b.lost - b.lostRetx)
}

// HasLoss reports whether any lost packet awaits retransmission.
func (b *PktBoard) HasLoss() bool { return b.lost > b.lostRetx }

// PendingRetx returns the number of lost packets awaiting retransmission.
func (b *PktBoard) PendingRetx() int64 { return b.lost - b.lostRetx }

// Complete reports whether everything is cumulatively acked.
func (b *PktBoard) Complete() bool { return b.Una >= b.N }

// State returns the scoreboard entry for psn (for tests).
func (b *PktBoard) State(psn int64) PktState { return b.st[psn] }

// OnSent records a transmission of psn at time now.
func (b *PktBoard) OnSent(psn int64, isRetx bool, now sim.Time) {
	s := &b.st[psn]
	s.EverSent = true
	s.LastSent = now
	if isRetx && s.Lost && !s.Retx {
		s.Retx = true
		b.lostRetx++
	}
	if psn >= b.Nxt {
		b.Nxt = psn + 1
	}
}

// Ack applies a cumulative acknowledgment up to (excluding) cum.
func (b *PktBoard) Ack(cum int64) (progressed bool) {
	if cum <= b.Una {
		return false
	}
	if cum > b.N {
		cum = b.N
	}
	for p := b.Una; p < cum; p++ {
		s := &b.st[p]
		if s.Sacked {
			b.sacked--
		}
		if s.Lost {
			b.lost--
			if s.Retx {
				b.lostRetx--
			}
		}
	}
	b.Una = cum
	if b.LostEdge < cum {
		b.LostEdge = cum
	}
	return true
}

// Sack applies selective acknowledgment blocks (PSN ranges) and advances
// the dupthresh-1 loss edge.
func (b *PktBoard) Sack(blocks []packet.SackBlock) {
	for _, blk := range blocks {
		lo := blk.Start
		if lo < b.Una {
			lo = b.Una
		}
		hi := blk.End
		if hi > b.Nxt {
			hi = b.Nxt
		}
		for p := lo; p < hi; p++ {
			s := &b.st[p]
			if s.Sacked {
				continue
			}
			s.Sacked = true
			b.sacked++
			if s.Lost {
				s.Lost = false
				b.lost--
				if s.Retx {
					s.Retx = false
					b.lostRetx--
				}
			}
		}
		if blk.Start > b.Una && blk.Start > b.LostEdge {
			b.LostEdge = blk.Start
		}
	}
}

// ApplyLostEdge marks unsacked PSNs below LostEdge as lost.
func (b *PktBoard) ApplyLostEdge() (newLoss bool) {
	for p := b.Una; p < b.LostEdge; p++ {
		s := &b.st[p]
		if !s.Sacked && !s.Lost {
			s.Lost = true
			b.lost++
			newLoss = true
		}
	}
	return newLoss
}

// RackMark marks every unsacked PSN last sent strictly before t as lost
// (TLT guaranteed loss detection); stale retransmissions are invalidated
// so they are sent again.
func (b *PktBoard) RackMark(t sim.Time) (newLoss bool) {
	for p := b.Una; p < b.Nxt; p++ {
		s := &b.st[p]
		if s.Sacked || !s.EverSent || s.LastSent >= t {
			continue
		}
		if s.Retx {
			s.Retx = false
			b.lostRetx--
		}
		if !s.Lost {
			s.Lost = true
			b.lost++
			newLoss = true
		}
	}
	return newLoss
}

// MarkAllLost collapses the scoreboard on RTO: everything unsacked is
// lost and in-flight retransmissions are invalidated.
func (b *PktBoard) MarkAllLost() {
	b.LostEdge = b.Nxt
	for p := b.Una; p < b.Nxt; p++ {
		s := &b.st[p]
		if s.Retx {
			s.Retx = false
			b.lostRetx--
		}
		if !s.Sacked && !s.Lost {
			s.Lost = true
			b.lost++
		}
	}
}

// Rewind moves the fresh-send pointer back to psn (go-back-N). Only
// meaningful when no selective state is in use (GBN mode never sacks).
func (b *PktBoard) Rewind(psn int64) {
	if psn < b.Una {
		psn = b.Una
	}
	if psn < b.Nxt {
		b.Nxt = psn
	}
}

// NextRetx returns the lowest lost PSN with no retransmission in flight,
// or -1.
func (b *PktBoard) NextRetx() int64 {
	if b.lost <= b.lostRetx {
		return -1
	}
	for p := b.Una; p < b.Nxt; p++ {
		s := &b.st[p]
		if s.Lost && !s.Retx {
			return p
		}
	}
	return -1
}

// FirstUnsacked returns the lowest unsacked outstanding PSN, or -1.
func (b *PktBoard) FirstUnsacked() int64 {
	for p := b.Una; p < b.Nxt; p++ {
		if !b.st[p].Sacked {
			return p
		}
	}
	return -1
}
