package transport

import (
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Flow describes one transfer.
type Flow struct {
	ID       packet.FlowID
	Src, Dst packet.NodeID
	Size     int64    // bytes (TCP family) — RoCE transports derive packets
	Start    sim.Time // arrival time
	FG       bool     // foreground (latency-sensitive incast) vs background
}

// MSS is the modeled maximum segment payload in bytes, matching the
// paper's ns-3 setup (1 kB payload packets).
const MSS = 1000
