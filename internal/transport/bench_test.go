package transport

import (
	"math/rand"
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

func BenchmarkRangeSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s RangeSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64(rng.Intn(1 << 20))
		s.Add(start, start+1000)
		if s.Len() > 4096 {
			s.Reset()
		}
	}
}

func BenchmarkRangeSetNextUncovered(b *testing.B) {
	var s RangeSet
	for i := int64(0); i < 1000; i++ {
		s.Add(i*2000, i*2000+1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextUncovered(int64(i) % (2000 * 1000))
	}
}

func BenchmarkPktBoardAckSack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		board := NewPktBoard(1024)
		for p := int64(0); p < 1024; p++ {
			board.OnSent(p, false, sim.Time(p))
		}
		board.Sack([]packet.SackBlock{{Start: 512, End: 1024}})
		board.ApplyLostEdge()
		for board.NextRetx() >= 0 {
			board.OnSent(board.NextRetx(), true, 2000)
		}
		board.Ack(1024)
	}
}

func BenchmarkRTOEstimator(b *testing.B) {
	e := NewRTOEstimator(DefaultRTO())
	for i := 0; i < b.N; i++ {
		e.Sample(sim.Time(50+i%100) * sim.Microsecond)
		_ = e.RTO()
	}
}
