package transport

import "tlt/internal/sim"

// RTOConfig selects how a transport computes its retransmission timeout.
type RTOConfig struct {
	// Min clamps the estimated RTO from below (Linux RTOmin; the paper
	// evaluates 4 ms and 200 µs).
	Min sim.Time
	// Max clamps from above.
	Max sim.Time
	// Fixed, if non-zero, bypasses estimation entirely (the paper's
	// "aggressive static timeout" experiment, Fig. 2) and for RoCE
	// transports that use a static RTO.
	Fixed sim.Time
	// Granularity models timer resolution added to the variance term
	// (Linux uses 4*rttvar but at least one tick).
	Granularity sim.Time

	// MaxRetries caps consecutive timeout-driven retransmission rounds
	// without forward progress; when reached the sender aborts the flow
	// (IB QP retry-count semantics; TCP's net.ipv4.tcp_retries2). Zero
	// means retry forever — the seed behavior.
	MaxRetries int

	// MaxBackoffShift caps the exponential RTO backoff applied under
	// Karn's rule (effective timeout = RTO << min(consecutive-timeouts,
	// shift)). Zero keeps each transport's default: TCP backs off with
	// its traditional cap of 12, the static-timer RoCE transports
	// (DCQCN, HPCC) do not back off at all, matching IB verbs.
	MaxBackoffShift uint
}

// DefaultRTO returns the Linux-like defaults the paper's baseline uses.
func DefaultRTO() RTOConfig {
	return RTOConfig{
		Min:         4 * sim.Millisecond,
		Max:         60 * sim.Second,
		Granularity: 10 * sim.Microsecond, // VMA high-resolution timer (§6)
	}
}

// RTOEstimator implements the standard SRTT/RTTVAR smoothing (RFC 6298 /
// Linux): srtt = 7/8 srtt + 1/8 r, rttvar = 3/4 rttvar + 1/4 |srtt - r|,
// RTO = srtt + max(4*rttvar, granularity), clamped to [Min, Max].
type RTOEstimator struct {
	cfg    RTOConfig
	srtt   sim.Time
	rttvar sim.Time
	seeded bool
}

// NewRTOEstimator returns an estimator with the given configuration.
func NewRTOEstimator(cfg RTOConfig) *RTOEstimator {
	if cfg.Max == 0 {
		cfg.Max = 60 * sim.Second
	}
	return &RTOEstimator{cfg: cfg}
}

// Sample folds a new RTT measurement into the estimate.
func (e *RTOEstimator) Sample(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if !e.seeded {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.seeded = true
		return
	}
	diff := e.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// SRTT returns the smoothed RTT (zero until the first sample).
func (e *RTOEstimator) SRTT() sim.Time { return e.srtt }

// RTO returns the current timeout value.
func (e *RTOEstimator) RTO() sim.Time {
	if e.cfg.Fixed > 0 {
		return e.cfg.Fixed
	}
	v := 4 * e.rttvar
	if v < e.cfg.Granularity {
		v = e.cfg.Granularity
	}
	rto := e.srtt + v
	if rto < e.cfg.Min {
		rto = e.cfg.Min
	}
	if rto > e.cfg.Max {
		rto = e.cfg.Max
	}
	return rto
}
