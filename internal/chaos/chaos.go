// Package chaos applies deterministic, seeded fault schedules to a
// running network: link down/up flaps, Gilbert–Elliott bursty loss,
// transient switch-buffer shrink, and host NIC freezes. The paper's §5
// explicitly scopes TLT out of protecting against non-congestion losses
// — it must degrade gracefully to timeout-driven recovery — and this
// package exists to exercise exactly that boundary, reproducibly: the
// same plan and seed always yield the identical fault event sequence.
//
// A Plan is declarative; Apply schedules its events onto a simulator
// against a built topology. A "link" is a full-duplex pair: topology
// builders append the two directional transmitters of every link
// adjacently to Network.Txs, so link k owns Txs[2k] and Txs[2k+1].
package chaos

import (
	"fmt"

	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
)

// RandomTarget selects a random link/switch/host per occurrence (drawn
// from the plan's seeded RNG at event-fire time, so still deterministic).
const RandomTarget = -1

// AllTargets applies the fault to every link/switch at once.
const AllTargets = -2

// LinkFlap takes a full-duplex link down for Down, then back up.
type LinkFlap struct {
	Link  int      // link index (Txs pair), RandomTarget for a random pick per occurrence
	At    sim.Time // first outage start
	Down  sim.Time // outage duration
	Every sim.Time // repeat period measured start-to-start (0 = once)
	Count int      // occurrences when Every > 0 (0 = unbounded)
	Until sim.Time // no occurrence starts at/after this time (0 = no bound)
}

// BurstyLoss installs a Gilbert–Elliott two-state loss channel on both
// directions of a link for a window.
type BurstyLoss struct {
	Link        int      // link index, AllTargets for every link
	Start, Stop sim.Time // active window (Stop 0 = forever)
	PGoodBad    float64  // per-packet P(good→bad)
	PBadGood    float64  // per-packet P(bad→good)
	LossGood    float64  // drop probability in the good state
	LossBad     float64  // drop probability in the bad state
}

// BufferShrink reduces a switch's effective MMU capacity for a window,
// forcing drops as if part of the shared buffer failed or was
// reconfigured away.
type BufferShrink struct {
	Switch   int      // switch index, AllTargets for every switch
	At       sim.Time // first shrink start
	Duration sim.Time // window length
	Frac     float64  // capacity multiplier in (0, 1)
	Every    sim.Time // repeat period (0 = once)
	Count    int      // occurrences when Every > 0 (0 = unbounded)
}

// NICFreeze stalls a host's NIC transmitter for a window; the wire stays
// intact, so in-flight packets still arrive and inbound traffic is
// unaffected.
type NICFreeze struct {
	Host     int // host index, RandomTarget for a random pick per occurrence
	At       sim.Time
	Duration sim.Time
	Every    sim.Time // repeat period (0 = once)
	Count    int      // occurrences when Every > 0 (0 = unbounded)
}

// Plan is a declarative fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed salts every chaos RNG; it combines with the run seed passed
	// to Apply so replications see different (but reproducible) picks.
	Seed int64

	Flaps   []LinkFlap
	Bursty  []BurstyLoss
	Shrinks []BufferShrink
	Freezes []NICFreeze
}

// Empty reports whether the plan injects no faults.
func (p *Plan) Empty() bool {
	return p == nil || len(p.Flaps)+len(p.Bursty)+len(p.Shrinks)+len(p.Freezes) == 0
}

// Engine is an applied plan: it owns the scheduled fault events and the
// fault counters of one run.
type Engine struct {
	s   *sim.Sim
	net *topo.Network
	rng *sim.RNG
	ctr stats.FaultCounters
}

// NumLinks returns the number of full-duplex links in the network.
func NumLinks(net *topo.Network) int { return len(net.Txs) / 2 }

// Apply schedules the plan's events on s against net. runSeed is the
// experiment replication seed; the same (plan, runSeed) pair always
// produces the identical fault sequence.
func (p *Plan) Apply(s *sim.Sim, net *topo.Network, runSeed int64) *Engine {
	e := &Engine{
		s: s, net: net,
		rng: sim.NewRNG(p.Seed*0x9e3779b9 + runSeed + 0xc4a05),
	}
	if p.Empty() {
		return e
	}
	for _, f := range p.Flaps {
		e.scheduleFlap(f)
	}
	for _, b := range p.Bursty {
		e.scheduleBursty(b)
	}
	for _, sh := range p.Shrinks {
		e.scheduleShrink(sh)
	}
	for _, fr := range p.Freezes {
		e.scheduleFreeze(fr)
	}
	return e
}

func (e *Engine) pickLink(idx int) int {
	n := NumLinks(e.net)
	if n == 0 {
		return -1
	}
	if idx == RandomTarget {
		return e.rng.Intn(n)
	}
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("chaos: link %d out of range [0, %d)", idx, n))
	}
	return idx
}

// scheduleFlap installs a lazily self-rescheduling flap chain: only one
// pending event per fault stream, so unbounded repeats never bloat the
// heap and never outlive the run horizon.
func (e *Engine) scheduleFlap(f LinkFlap) {
	occurrences := 0
	var fire func()
	fire = func() {
		if f.Until > 0 && e.s.Now() >= f.Until {
			return
		}
		link := e.pickLink(f.Link)
		if link < 0 {
			return
		}
		a, b := e.net.Txs[2*link], e.net.Txs[2*link+1]
		a.SetLinkDown()
		b.SetLinkDown()
		e.ctr.LinkFlaps++
		e.s.After(f.Down, func() {
			a.SetLinkUp()
			b.SetLinkUp()
		})
		occurrences++
		if f.Every > 0 && (f.Count == 0 || occurrences < f.Count) {
			e.s.After(f.Every, fire)
		}
	}
	e.s.At(f.At, fire)
}

func (e *Engine) scheduleBursty(b BurstyLoss) {
	var links []int
	if b.Link == AllTargets {
		for i := 0; i < NumLinks(e.net); i++ {
			links = append(links, i)
		}
	} else {
		links = []int{e.pickLink(b.Link)}
	}
	install := func() {
		for _, l := range links {
			// Each direction gets its own derived RNG so the drop
			// sequence on one direction is independent of traffic on
			// the other, yet fully reproducible.
			e.net.Txs[2*l].InjectGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad,
				sim.NewRNG(e.rng.Int63()))
			e.net.Txs[2*l+1].InjectGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad,
				sim.NewRNG(e.rng.Int63()))
		}
	}
	remove := func() {
		for _, l := range links {
			e.net.Txs[2*l].InjectGilbertElliott(0, 0, 0, 0, nil)
			e.net.Txs[2*l+1].InjectGilbertElliott(0, 0, 0, 0, nil)
		}
	}
	e.s.At(b.Start, install)
	if b.Stop > b.Start {
		e.s.At(b.Stop, remove)
	}
}

func (e *Engine) scheduleShrink(sh BufferShrink) {
	frac := sh.Frac
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("chaos: shrink frac %v outside (0, 1)", frac))
	}
	var sws []int
	if sh.Switch == AllTargets {
		for i := range e.net.Switches {
			sws = append(sws, i)
		}
	} else {
		if sh.Switch < 0 || sh.Switch >= len(e.net.Switches) {
			panic(fmt.Sprintf("chaos: switch %d out of range [0, %d)", sh.Switch, len(e.net.Switches)))
		}
		sws = []int{sh.Switch}
	}
	occurrences := 0
	var fire func()
	fire = func() {
		for _, i := range sws {
			sw := e.net.Switches[i]
			sw.SetBufferLimit(int64(frac * float64(sw.Config().BufferBytes)))
		}
		e.ctr.BufferShrinks++
		e.s.After(sh.Duration, func() {
			for _, i := range sws {
				e.net.Switches[i].SetBufferLimit(0) // restore
			}
		})
		occurrences++
		if sh.Every > 0 && (sh.Count == 0 || occurrences < sh.Count) {
			e.s.After(sh.Every, fire)
		}
	}
	e.s.At(sh.At, fire)
}

func (e *Engine) scheduleFreeze(fr NICFreeze) {
	occurrences := 0
	var fire func()
	fire = func() {
		idx := fr.Host
		if idx == RandomTarget {
			idx = e.rng.Intn(len(e.net.Hosts))
		}
		if idx < 0 || idx >= len(e.net.Hosts) {
			panic(fmt.Sprintf("chaos: host %d out of range [0, %d)", idx, len(e.net.Hosts)))
		}
		tx := e.net.Hosts[idx].NICTx()
		tx.Freeze()
		e.ctr.NICFreezes++
		e.s.After(fr.Duration, tx.Unfreeze)
		occurrences++
		if fr.Every > 0 && (fr.Count == 0 || occurrences < fr.Count) {
			e.s.After(fr.Every, fire)
		}
	}
	e.s.At(fr.At, fire)
}

// Counters returns the engine's fault counters, folding in the per-wire
// drop counts accumulated so far. Call after the run completes.
func (e *Engine) Counters() stats.FaultCounters {
	c := e.ctr
	for _, tx := range e.net.Txs {
		c.DownDrops += tx.DownDrops()
		c.BurstyDrops += tx.BurstyDrops()
		c.RandomDrops += tx.InjectedDrops()
	}
	return c
}
