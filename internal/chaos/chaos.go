// Package chaos applies deterministic, seeded fault schedules to a
// running network: link down/up flaps, Gilbert–Elliott bursty loss,
// transient switch-buffer shrink, host NIC freezes, whole-switch
// failures with control-plane reroute, asymmetric single-port wedges,
// and PFC pause storms. The paper's §5 explicitly scopes TLT out of
// protecting against non-congestion losses — it must degrade gracefully
// to timeout-driven recovery — and this package exists to exercise
// exactly that boundary, reproducibly: the same plan and seed always
// yield the identical fault event sequence.
//
// A Plan is declarative; Apply schedules its events onto a simulator
// against a built topology. A "link" is a full-duplex pair: topology
// builders append the two directional transmitters of every link
// adjacently to Network.Txs, so link k owns Txs[2k] and Txs[2k+1].
package chaos

import (
	"fmt"

	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
)

// RandomTarget selects a random link/switch/host per occurrence (drawn
// from the plan's seeded RNG at event-fire time, so still deterministic).
const RandomTarget = -1

// AllTargets applies the fault to every link/switch at once.
const AllTargets = -2

// LinkFlap takes a full-duplex link down for Down, then back up.
type LinkFlap struct {
	Link  int      // link index (Txs pair), RandomTarget for a random pick per occurrence
	At    sim.Time // first outage start
	Down  sim.Time // outage duration
	Every sim.Time // repeat period measured start-to-start (0 = once)
	Count int      // occurrences when Every > 0 (0 = unbounded)
	Until sim.Time // no occurrence starts at/after this time (0 = no bound)
}

// BurstyLoss installs a Gilbert–Elliott two-state loss channel on both
// directions of a link for a window.
type BurstyLoss struct {
	Link        int      // link index, AllTargets for every link
	Start, Stop sim.Time // active window (Stop 0 = forever)
	PGoodBad    float64  // per-packet P(good→bad)
	PBadGood    float64  // per-packet P(bad→good)
	LossGood    float64  // drop probability in the good state
	LossBad     float64  // drop probability in the bad state
}

// BufferShrink reduces a switch's effective MMU capacity for a window,
// forcing drops as if part of the shared buffer failed or was
// reconfigured away.
type BufferShrink struct {
	Switch   int      // switch index, AllTargets for every switch
	At       sim.Time // first shrink start
	Duration sim.Time // window length
	Frac     float64  // capacity multiplier in (0, 1)
	Every    sim.Time // repeat period (0 = once)
	Count    int      // occurrences when Every > 0 (0 = unbounded)
}

// NICFreeze stalls a host's NIC transmitter for a window; the wire stays
// intact, so in-flight packets still arrive and inbound traffic is
// unaffected.
type NICFreeze struct {
	Host     int // host index, RandomTarget for a random pick per occurrence
	At       sim.Time
	Duration sim.Time
	Every    sim.Time // repeat period (0 = once)
	Count    int      // occurrences when Every > 0 (0 = unbounded)
}

// SwitchFail kills a whole switch at At: every packet arriving while it
// is down black-holes, egress serialization freezes, and the MMU
// restarts empty at reboot (buffered packets are lost). Reroute models
// the control plane: that long after the failure — and again after the
// repair — static failure-aware routes are (re)installed, so the sim
// exercises both the black-hole window and the repaired path. Reroute 0
// means no alternate path is ever installed.
type SwitchFail struct {
	Switch   int      // switch index, RandomTarget for a seeded pick per occurrence
	At       sim.Time // failure instant
	Duration sim.Time // time to reboot (0 = permanent)
	Reroute  sim.Time // control-plane reconvergence delay (0 = never reroute)
	Every    sim.Time // repeat period (0 = once)
	Count    int      // occurrences when Every > 0 (0 = unbounded)
}

// PortFail wedges a single directional transmitter of a link: frames
// handed to it — and frames already in flight — are lost, while the
// reverse direction keeps working. This is the asymmetric failure mode
// (dead laser, stuck SerDes) that neither PFC nor symmetric
// link-liveness detection sees.
type PortFail struct {
	Link     int // link index, RandomTarget
	Dir      int // which direction sticks: 0 = Txs[2k], 1 = Txs[2k+1]
	At       sim.Time
	Duration sim.Time // 0 = permanent
}

// PauseStorm makes a host NIC emit continuous PFC PAUSE frames toward
// its switch for a window — wedged firmware asserting flow control
// forever — pausing the switch egress port and spreading head-of-line
// blocking upstream until the PFC watchdog (if enabled) mitigates. When
// the storm ends the stuck assertion clears (one RESUME is sent,
// standing in for quanta expiry).
type PauseStorm struct {
	Host     int // host index, RandomTarget (picked once per storm)
	At       sim.Time
	Duration sim.Time
	Refresh  sim.Time // inter-frame gap (0 = 2µs, well inside a pause quantum)
}

// Plan is a declarative fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed salts every chaos RNG; it combines with the run seed passed
	// to Apply so replications see different (but reproducible) picks.
	Seed int64

	Flaps   []LinkFlap
	Bursty  []BurstyLoss
	Shrinks []BufferShrink
	Freezes []NICFreeze
	SwFails []SwitchFail
	PtFails []PortFail
	Storms  []PauseStorm
}

// Empty reports whether the plan injects no faults.
func (p *Plan) Empty() bool {
	return p == nil || len(p.Flaps)+len(p.Bursty)+len(p.Shrinks)+len(p.Freezes)+
		len(p.SwFails)+len(p.PtFails)+len(p.Storms) == 0
}

// Engine is an applied plan: it owns the scheduled fault events and the
// fault counters of one run.
type Engine struct {
	s   *sim.Sim
	net *topo.Network
	rng *sim.RNG
	ctr stats.FaultCounters

	// Resolved-mode occurrence accounting (see resolved.go). Legacy
	// Apply counts directly into ctr at fire time; the resolved path
	// cannot, because occurrences fire on whichever shard owns the
	// target. Instead every occurrence gets a slot, the firing event
	// (exactly one writer, on one shard) marks it, and Counters folds
	// the marked slots in after the run joins. The slices are fully
	// built during ApplyResolved; the run only writes elements.
	slotKind    []uint8
	slotFired   []bool
	stormFrames []int64
}

// NumLinks returns the number of full-duplex links in the network.
func NumLinks(net *topo.Network) int { return len(net.Txs) / 2 }

// Validate checks every fault target against the built topology so a
// bad plan fails before the run starts, with a message naming the
// offending directive, instead of panicking mid-simulation.
func (p *Plan) Validate(net *topo.Network) error {
	if p.Empty() {
		return nil
	}
	links, sws, hosts := NumLinks(net), len(net.Switches), len(net.Hosts)
	idx := func(directive string, i, target, n int, pop string, allOK bool) error {
		switch {
		case target == RandomTarget:
			if n == 0 {
				return fmt.Errorf("chaos: %s[%d]: random target but the topology has no %ss", directive, i, pop)
			}
		case target == AllTargets:
			if !allOK {
				return fmt.Errorf("chaos: %s[%d]: %q target not supported here", directive, i, "all")
			}
			if n == 0 {
				return fmt.Errorf("chaos: %s[%d]: %q target but the topology has no %ss", directive, i, "all", pop)
			}
		case target < 0 || target >= n:
			return fmt.Errorf("chaos: %s[%d]: %s index %d out of range [0, %d)", directive, i, pop, target, n)
		}
		return nil
	}
	for i, f := range p.Flaps {
		if err := idx("flap", i, f.Link, links, "link", false); err != nil {
			return err
		}
	}
	for i, b := range p.Bursty {
		if err := idx("ge", i, b.Link, links, "link", true); err != nil {
			return err
		}
	}
	for i, sh := range p.Shrinks {
		if err := idx("shrink", i, sh.Switch, sws, "switch", true); err != nil {
			return err
		}
		if sh.Frac <= 0 || sh.Frac >= 1 {
			return fmt.Errorf("chaos: shrink[%d]: frac %v outside (0, 1)", i, sh.Frac)
		}
	}
	for i, fr := range p.Freezes {
		if err := idx("freeze", i, fr.Host, hosts, "host", false); err != nil {
			return err
		}
	}
	for i, f := range p.SwFails {
		if err := idx("swfail", i, f.Switch, sws, "switch", false); err != nil {
			return err
		}
	}
	for i, f := range p.PtFails {
		if err := idx("portfail", i, f.Link, links, "link", false); err != nil {
			return err
		}
		if f.Dir != 0 && f.Dir != 1 {
			return fmt.Errorf("chaos: portfail[%d]: dir %d not 0 or 1", i, f.Dir)
		}
	}
	for i, st := range p.Storms {
		if err := idx("storm", i, st.Host, hosts, "host", false); err != nil {
			return err
		}
		if st.Duration <= 0 {
			return fmt.Errorf("chaos: storm[%d]: needs a positive duration", i)
		}
	}
	return nil
}

// Apply validates the plan against net and schedules its events on s.
// runSeed is the experiment replication seed; the same (plan, runSeed)
// pair always produces the identical fault sequence.
func (p *Plan) Apply(s *sim.Sim, net *topo.Network, runSeed int64) (*Engine, error) {
	e := &Engine{
		s: s, net: net,
		rng: sim.NewRNG(p.Seed*0x9e3779b9 + runSeed + 0xc4a05),
	}
	if p.Empty() {
		return e, nil
	}
	if err := p.Validate(net); err != nil {
		return nil, err
	}
	for _, f := range p.Flaps {
		e.scheduleFlap(f)
	}
	for _, b := range p.Bursty {
		e.scheduleBursty(b)
	}
	for _, sh := range p.Shrinks {
		e.scheduleShrink(sh)
	}
	for _, fr := range p.Freezes {
		e.scheduleFreeze(fr)
	}
	for _, f := range p.SwFails {
		e.scheduleSwitchFail(f)
	}
	for _, f := range p.PtFails {
		e.schedulePortFail(f)
	}
	for _, st := range p.Storms {
		e.scheduleStorm(st)
	}
	return e, nil
}

func (e *Engine) pickLink(idx int) int {
	n := NumLinks(e.net)
	if n == 0 {
		return -1
	}
	if idx == RandomTarget {
		return e.rng.Intn(n)
	}
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("chaos: link %d out of range [0, %d)", idx, n))
	}
	return idx
}

// scheduleFlap installs a lazily self-rescheduling flap chain: only one
// pending event per fault stream, so unbounded repeats never bloat the
// heap and never outlive the run horizon.
func (e *Engine) scheduleFlap(f LinkFlap) {
	occurrences := 0
	var fire func()
	fire = func() {
		if f.Until > 0 && e.s.Now() >= f.Until {
			return
		}
		link := e.pickLink(f.Link)
		if link < 0 {
			return
		}
		a, b := e.net.Txs[2*link], e.net.Txs[2*link+1]
		a.SetLinkDown()
		b.SetLinkDown()
		e.ctr.LinkFlaps++
		e.s.After(f.Down, func() {
			a.SetLinkUp()
			b.SetLinkUp()
		})
		occurrences++
		if f.Every > 0 && (f.Count == 0 || occurrences < f.Count) {
			e.s.After(f.Every, fire)
		}
	}
	e.s.At(f.At, fire)
}

func (e *Engine) scheduleBursty(b BurstyLoss) {
	var links []int
	if b.Link == AllTargets {
		for i := 0; i < NumLinks(e.net); i++ {
			links = append(links, i)
		}
	} else {
		links = []int{e.pickLink(b.Link)}
	}
	install := func() {
		for _, l := range links {
			// Each direction gets its own derived RNG so the drop
			// sequence on one direction is independent of traffic on
			// the other, yet fully reproducible.
			e.net.Txs[2*l].InjectGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad,
				sim.NewRNG(e.rng.Int63()))
			e.net.Txs[2*l+1].InjectGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad,
				sim.NewRNG(e.rng.Int63()))
		}
	}
	remove := func() {
		for _, l := range links {
			e.net.Txs[2*l].InjectGilbertElliott(0, 0, 0, 0, nil)
			e.net.Txs[2*l+1].InjectGilbertElliott(0, 0, 0, 0, nil)
		}
	}
	e.s.At(b.Start, install)
	if b.Stop > b.Start {
		e.s.At(b.Stop, remove)
	}
}

func (e *Engine) scheduleShrink(sh BufferShrink) {
	frac := sh.Frac
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("chaos: shrink frac %v outside (0, 1)", frac))
	}
	var sws []int
	if sh.Switch == AllTargets {
		for i := range e.net.Switches {
			sws = append(sws, i)
		}
	} else {
		if sh.Switch < 0 || sh.Switch >= len(e.net.Switches) {
			panic(fmt.Sprintf("chaos: switch %d out of range [0, %d)", sh.Switch, len(e.net.Switches)))
		}
		sws = []int{sh.Switch}
	}
	occurrences := 0
	var fire func()
	fire = func() {
		for _, i := range sws {
			// Route the shrink through the switch's BufferPolicy: a
			// policy with its own capacity notion (tiny-buffer) shrinks
			// proportionally, and legacy and resolved mode agree.
			e.net.Switches[i].ShrinkBuffer(frac)
		}
		e.ctr.BufferShrinks++
		e.s.After(sh.Duration, func() {
			for _, i := range sws {
				e.net.Switches[i].ShrinkBuffer(0) // restore
			}
		})
		occurrences++
		if sh.Every > 0 && (sh.Count == 0 || occurrences < sh.Count) {
			e.s.After(sh.Every, fire)
		}
	}
	e.s.At(sh.At, fire)
}

func (e *Engine) scheduleFreeze(fr NICFreeze) {
	occurrences := 0
	var fire func()
	fire = func() {
		idx := fr.Host
		if idx == RandomTarget {
			idx = e.rng.Intn(len(e.net.Hosts))
		}
		if idx < 0 || idx >= len(e.net.Hosts) {
			panic(fmt.Sprintf("chaos: host %d out of range [0, %d)", idx, len(e.net.Hosts)))
		}
		tx := e.net.Hosts[idx].NICTx()
		tx.Freeze()
		e.ctr.NICFreezes++
		e.s.After(fr.Duration, tx.Unfreeze)
		occurrences++
		if fr.Every > 0 && (fr.Count == 0 || occurrences < fr.Count) {
			e.s.After(fr.Every, fire)
		}
	}
	e.s.At(fr.At, fire)
}

// scheduleSwitchFail installs a fail(/reboot) chain for one switch,
// with the control-plane reroute trailing both transitions by the
// reconvergence delay.
func (e *Engine) scheduleSwitchFail(f SwitchFail) {
	occurrences := 0
	var fire func()
	fire = func() {
		idx := f.Switch
		if idx == RandomTarget {
			idx = e.rng.Intn(len(e.net.Switches))
		}
		sw := e.net.Switches[idx]
		if !sw.Failed() {
			sw.Fail()
			e.ctr.SwitchFails++
			if f.Reroute > 0 {
				e.s.After(f.Reroute, func() {
					e.net.SetSwitchFailed(idx, true)
					e.net.Reroute()
				})
			}
			if f.Duration > 0 {
				e.s.After(f.Duration, func() {
					sw.Reboot()
					if f.Reroute > 0 {
						e.s.After(f.Reroute, func() {
							e.net.SetSwitchFailed(idx, false)
							e.net.Reroute()
						})
					}
				})
			}
		}
		occurrences++
		if f.Every > 0 && (f.Count == 0 || occurrences < f.Count) {
			e.s.After(f.Every, fire)
		}
	}
	e.s.At(f.At, fire)
}

// schedulePortFail wedges one direction of a link.
func (e *Engine) schedulePortFail(f PortFail) {
	e.s.At(f.At, func() {
		link := e.pickLink(f.Link)
		if link < 0 {
			return
		}
		tx := e.net.Txs[2*link+f.Dir]
		tx.SetLinkDown()
		e.ctr.PortFails++
		if f.Duration > 0 {
			e.s.After(f.Duration, tx.SetLinkUp)
		}
	})
}

// scheduleStorm drives one pause storm: a self-rescheduling emitter
// injects a PAUSE frame toward the host's switch every Refresh until
// the window closes, then a single RESUME models the quanta expiring
// with the wedge.
func (e *Engine) scheduleStorm(st PauseStorm) {
	refresh := st.Refresh
	if refresh <= 0 {
		refresh = 2 * sim.Microsecond
	}
	e.s.At(st.At, func() {
		idx := st.Host
		if idx == RandomTarget {
			idx = e.rng.Intn(len(e.net.Hosts))
		}
		h := e.net.Hosts[idx]
		end := e.s.Now() + st.Duration
		e.ctr.PauseStorms++
		var emit func()
		emit = func() {
			pf := h.NewPacket()
			pf.Type = packet.Pause
			pf.Src = h.ID()
			h.NICTx().DeliverControl(pf)
			e.ctr.StormFrames++
			if e.s.Now()+refresh < end {
				e.s.After(refresh, emit)
				return
			}
			e.s.After(refresh, func() {
				rf := h.NewPacket()
				rf.Type = packet.Resume
				rf.Src = h.ID()
				h.NICTx().DeliverControl(rf)
			})
		}
		emit()
	})
}

// Counters returns the engine's fault counters, folding in the per-wire
// drop counts accumulated so far. Call after the run completes.
func (e *Engine) Counters() stats.FaultCounters {
	c := e.ctr
	for i, fired := range e.slotFired {
		if !fired {
			continue
		}
		switch e.slotKind[i] {
		case slotFlap:
			c.LinkFlaps++
		case slotShrink:
			c.BufferShrinks++
		case slotFreeze:
			c.NICFreezes++
		case slotSwFail:
			c.SwitchFails++
		case slotPortFail:
			c.PortFails++
		case slotStorm:
			c.PauseStorms++
		}
	}
	for _, n := range e.stormFrames {
		c.StormFrames += n
	}
	for _, tx := range e.net.Txs {
		c.DownDrops += tx.DownDrops()
		c.BurstyDrops += tx.BurstyDrops()
		c.RandomDrops += tx.InjectedDrops()
	}
	return c
}
