package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tlt/internal/sim"
)

// Parse builds a Plan from a compact CLI spec: semicolon-separated
// directives of the form name:key=val,key=val. Durations use Go syntax
// ("200us", "1ms500us"). Targets accept an index, "rand" (flap/freeze),
// or "all" (ge/shrink).
//
//	seed=42
//	flap:link=rand,at=1ms,down=200us,every=2ms,count=5
//	ge:link=all,pgb=0.001,pbg=0.1,loss=0.3,start=0s
//	shrink:switch=0,at=1ms,dur=500us,frac=0.25
//	freeze:host=3,at=2ms,dur=1ms
//	swfail:switch=12,at=1ms,dur=2ms,reroute=200us
//	portfail:link=4,dir=0,at=1ms,dur=500us
//	storm:host=0,at=1ms,dur=1ms,refresh=5us
//
// Example: "seed=7;flap:link=rand,at=1ms,down=100us,every=1ms;ge:link=0,pgb=0.01,pbg=0.2,loss=0.5"
//
// swfail with dur=0 is a permanent failure; reroute=0 never installs
// alternate routes (the black-hole persists until repair). portfail
// wedges one direction only (dir selects which transmitter of the
// pair). All durations must be non-negative.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, directive := range strings.Split(spec, ";") {
		directive = strings.TrimSpace(directive)
		if directive == "" {
			continue
		}
		name, argstr := directive, ""
		if i := strings.IndexByte(directive, ':'); i >= 0 {
			name, argstr = directive[:i], directive[i+1:]
		}
		if name == "seed" || strings.HasPrefix(name, "seed=") {
			// Allow both "seed=42" (no colon) and "seed:42".
			v := argstr
			if v == "" {
				v = strings.TrimPrefix(name, "seed=")
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			p.Seed = n
			continue
		}
		kv, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("chaos: directive %q: %v", directive, err)
		}
		switch name {
		case "flap":
			f := LinkFlap{Link: RandomTarget}
			err = kv.apply(map[string]func(string) error{
				"link":  kv.target(&f.Link, "rand", RandomTarget),
				"at":    kv.dur(&f.At),
				"down":  kv.dur(&f.Down),
				"every": kv.dur(&f.Every),
				"count": kv.num(&f.Count),
				"until": kv.dur(&f.Until),
			})
			if err == nil && f.Down <= 0 {
				err = fmt.Errorf("flap needs down=<duration>")
			}
			p.Flaps = append(p.Flaps, f)
		case "ge":
			b := BurstyLoss{Link: AllTargets, PBadGood: 0.1}
			err = kv.apply(map[string]func(string) error{
				"link":     kv.target(&b.Link, "all", AllTargets),
				"start":    kv.dur(&b.Start),
				"stop":     kv.dur(&b.Stop),
				"pgb":      kv.prob(&b.PGoodBad),
				"pbg":      kv.prob(&b.PBadGood),
				"loss":     kv.prob(&b.LossBad),
				"lossgood": kv.prob(&b.LossGood),
			})
			if err == nil && b.LossBad <= 0 && b.LossGood <= 0 {
				err = fmt.Errorf("ge needs loss=<probability>")
			}
			p.Bursty = append(p.Bursty, b)
		case "shrink":
			s := BufferShrink{Switch: AllTargets}
			err = kv.apply(map[string]func(string) error{
				"switch": kv.target(&s.Switch, "all", AllTargets),
				"at":     kv.dur(&s.At),
				"dur":    kv.dur(&s.Duration),
				"frac":   kv.prob(&s.Frac),
				"every":  kv.dur(&s.Every),
				"count":  kv.num(&s.Count),
			})
			if err == nil && (s.Frac <= 0 || s.Frac >= 1) {
				err = fmt.Errorf("shrink needs frac in (0, 1)")
			}
			if err == nil && s.Duration <= 0 {
				err = fmt.Errorf("shrink needs dur=<duration>")
			}
			p.Shrinks = append(p.Shrinks, s)
		case "freeze":
			f := NICFreeze{Host: RandomTarget}
			err = kv.apply(map[string]func(string) error{
				"host":  kv.target(&f.Host, "rand", RandomTarget),
				"at":    kv.dur(&f.At),
				"dur":   kv.dur(&f.Duration),
				"every": kv.dur(&f.Every),
				"count": kv.num(&f.Count),
			})
			if err == nil && f.Duration <= 0 {
				err = fmt.Errorf("freeze needs dur=<duration>")
			}
			p.Freezes = append(p.Freezes, f)
		case "swfail":
			f := SwitchFail{Switch: RandomTarget}
			err = kv.apply(map[string]func(string) error{
				"switch":  kv.target(&f.Switch, "rand", RandomTarget),
				"at":      kv.dur(&f.At),
				"dur":     kv.dur(&f.Duration),
				"reroute": kv.dur(&f.Reroute),
				"every":   kv.dur(&f.Every),
				"count":   kv.num(&f.Count),
			})
			p.SwFails = append(p.SwFails, f)
		case "portfail":
			f := PortFail{Link: RandomTarget}
			err = kv.apply(map[string]func(string) error{
				"link": kv.target(&f.Link, "rand", RandomTarget),
				"dir":  kv.num(&f.Dir),
				"at":   kv.dur(&f.At),
				"dur":  kv.dur(&f.Duration),
			})
			if err == nil && f.Dir != 0 && f.Dir != 1 {
				err = fmt.Errorf("portfail needs dir=0 or dir=1")
			}
			p.PtFails = append(p.PtFails, f)
		case "storm":
			st := PauseStorm{Host: RandomTarget}
			err = kv.apply(map[string]func(string) error{
				"host":    kv.target(&st.Host, "rand", RandomTarget),
				"at":      kv.dur(&st.At),
				"dur":     kv.dur(&st.Duration),
				"refresh": kv.dur(&st.Refresh),
			})
			if err == nil && st.Duration <= 0 {
				err = fmt.Errorf("storm needs dur=<duration>")
			}
			p.Storms = append(p.Storms, st)
		default:
			return nil, fmt.Errorf("chaos: unknown directive %q (want flap, ge, shrink, freeze, swfail, portfail, storm, seed)", name)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: directive %q: %v", directive, err)
		}
	}
	return p, nil
}

type kvArgs map[string]string

func parseArgs(s string) (kvArgs, error) {
	kv := kvArgs{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '=')
		if i < 0 {
			return nil, fmt.Errorf("argument %q is not key=value", part)
		}
		kv[part[:i]] = part[i+1:]
	}
	return kv, nil
}

// apply dispatches every present key to its setter and rejects unknowns.
func (kv kvArgs) apply(setters map[string]func(string) error) error {
	for k, v := range kv {
		set, ok := setters[k]
		if !ok {
			return fmt.Errorf("unknown key %q", k)
		}
		if err := set(v); err != nil {
			return fmt.Errorf("key %q: %v", k, err)
		}
	}
	return nil
}

func (kvArgs) dur(dst *sim.Time) func(string) error {
	return func(v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		if d < 0 {
			return fmt.Errorf("negative duration %v", d)
		}
		*dst = sim.Time(d.Nanoseconds())
		return nil
	}
}

func (kvArgs) num(dst *int) func(string) error {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}
}

func (kvArgs) prob(dst *float64) func(string) error {
	return func(v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		// The negated form also rejects NaN, which compares false to
		// everything and would otherwise slip through.
		if !(f >= 0 && f <= 1) {
			return fmt.Errorf("%v outside [0, 1]", f)
		}
		*dst = f
		return nil
	}
}

// target parses an index or the given keyword mapped to sentinel.
func (kvArgs) target(dst *int, keyword string, sentinel int) func(string) error {
	return func(v string) error {
		if v == keyword {
			*dst = sentinel
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("want a non-negative index or %q", keyword)
		}
		*dst = n
		return nil
	}
}
