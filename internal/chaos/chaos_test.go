package chaos

import (
	"strings"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
)

const us = sim.Time(1000)

// rxCount counts packet arrivals for one flow.
type rxCount struct {
	n    int
	last sim.Time
	s    *sim.Sim
}

func (r *rxCount) Handle(pkt *packet.Packet) {
	r.n++
	r.last = r.s.Now()
}

// starRun builds a 4-host star, streams pkts green data packets from
// host 0 to host 1 at the given spacing, applies plan, and runs to
// completion. Returns deliveries and the engine counters.
func starRun(t *testing.T, plan *Plan, runSeed int64, pkts int, spacing sim.Time) (*rxCount, stats.FaultCounters, *topo.Network) {
	t.Helper()
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   5 * us,
		Switch:      fabric.SwitchConfig{BufferBytes: 300_000, Alpha: 1},
	})
	rx := &rxCount{s: s}
	net.Hosts[1].Register(1, rx)
	for i := 0; i < pkts; i++ {
		i := i
		s.At(sim.Time(i)*spacing, func() {
			net.Hosts[0].Send(&packet.Packet{
				Flow: 1, Dst: 1, Type: packet.Data,
				Mark: packet.ImportantData, Len: 1000, Seq: int64(i),
			})
		})
	}
	eng := plan.Apply(s, net, runSeed)
	s.RunAll()
	return rx, eng.Counters(), net
}

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("seed=42;" +
		"flap:link=rand,at=1ms,down=200us,every=2ms,count=5,until=20ms;" +
		"ge:link=all,pgb=0.001,pbg=0.1,loss=0.3,lossgood=0.01,start=1ms,stop=5ms;" +
		"shrink:switch=0,at=1ms,dur=500us,frac=0.25,every=3ms,count=2;" +
		"freeze:host=3,at=2ms,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	f := p.Flaps[0]
	if f.Link != RandomTarget || f.At != 1000*us || f.Down != 200*us ||
		f.Every != 2000*us || f.Count != 5 || f.Until != 20000*us {
		t.Errorf("flap = %+v", f)
	}
	b := p.Bursty[0]
	if b.Link != AllTargets || b.PGoodBad != 0.001 || b.PBadGood != 0.1 ||
		b.LossBad != 0.3 || b.LossGood != 0.01 || b.Start != 1000*us || b.Stop != 5000*us {
		t.Errorf("ge = %+v", b)
	}
	sh := p.Shrinks[0]
	if sh.Switch != 0 || sh.Frac != 0.25 || sh.Duration != 500*us || sh.Every != 3000*us || sh.Count != 2 {
		t.Errorf("shrink = %+v", sh)
	}
	fr := p.Freezes[0]
	if fr.Host != 3 || fr.At != 2000*us || fr.Duration != 1000*us {
		t.Errorf("freeze = %+v", fr)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ spec, wantErr string }{
		{"explode:at=1ms", "unknown directive"},
		{"flap:down=1ms,color=red", "unknown key"},
		{"flap:at=1ms", "needs down"},
		{"ge:link=0,pgb=0.1", "needs loss"},
		{"shrink:at=1ms,dur=1ms,frac=1.5", "outside [0, 1]"},
		{"shrink:at=1ms,dur=1ms", "needs frac"},
		{"freeze:host=0,at=1ms", "needs dur"},
		{"flap:down=abc", "time"},
		{"seed=xyz", "bad seed"},
	} {
		if _, err := Parse(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q) err = %v, want substring %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil || !p.Empty() {
		t.Fatalf("Parse(\"\") = %+v, %v; want empty plan", p, err)
	}
}

// TestFlapDropsInFlight: with a 5µs wire and sub-µs packet spacing, a
// link-down window must kill packets that were propagating when it hit.
func TestFlapDropsInFlight(t *testing.T) {
	plan := &Plan{Flaps: []LinkFlap{{Link: 0, At: 50 * us, Down: 20 * us}}}
	rx, ctr, _ := starRun(t, plan, 1, 400, 500)
	if ctr.LinkFlaps != 1 {
		t.Fatalf("LinkFlaps = %d, want 1", ctr.LinkFlaps)
	}
	if ctr.DownDrops == 0 {
		t.Fatal("no DownDrops despite packets in flight across the outage")
	}
	if rx.n >= 400 {
		t.Fatalf("delivered %d of 400, expected losses", rx.n)
	}
	if rx.n == 0 {
		t.Fatal("nothing delivered — link never came back up")
	}
}

// TestFreezeStallsWithoutLoss: an NIC freeze delays traffic but loses
// nothing; every packet arrives, the last one after the thaw.
func TestFreezeStallsWithoutLoss(t *testing.T) {
	thaw := 150 * us
	plan := &Plan{Freezes: []NICFreeze{{Host: 0, At: 10 * us, Duration: thaw - 10*us}}}
	rx, ctr, _ := starRun(t, plan, 1, 100, 500)
	if ctr.NICFreezes != 1 {
		t.Fatalf("NICFreezes = %d, want 1", ctr.NICFreezes)
	}
	if ctr.TotalInjected() != 0 {
		t.Fatalf("freeze lost %d packets, want 0", ctr.TotalInjected())
	}
	if rx.n != 100 {
		t.Fatalf("delivered %d of 100", rx.n)
	}
	if rx.last < thaw {
		t.Fatalf("last delivery at %v, before thaw %v — freeze had no effect", rx.last, thaw)
	}
}

// TestBurstyLossDrops: a Gilbert–Elliott window must cause drops inside
// the window and none after it is removed.
func TestBurstyLossDrops(t *testing.T) {
	plan := &Plan{Bursty: []BurstyLoss{{
		Link: 0, Start: 0, Stop: 100 * us,
		PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.8,
	}}}
	rx, ctr, _ := starRun(t, plan, 1, 400, 500)
	if ctr.BurstyDrops == 0 {
		t.Fatal("no Gilbert–Elliott drops in a 0.8-loss bad state over 200 packets")
	}
	if int64(rx.n)+ctr.BurstyDrops != 400 {
		t.Fatalf("delivered %d + dropped %d != 400 sent", rx.n, ctr.BurstyDrops)
	}
}

// TestShrinkRestores: the MMU capacity comes back to the configured
// value after the shrink window.
func TestShrinkRestores(t *testing.T) {
	plan := &Plan{Shrinks: []BufferShrink{{Switch: 0, At: 10 * us, Duration: 50 * us, Frac: 0.1}}}
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: us,
		Switch: fabric.SwitchConfig{BufferBytes: 100_000, Alpha: 1},
	})
	plan.Apply(s, net, 1)
	sw := net.Switches[0]
	s.At(30*us, func() {
		if got := sw.BufferLimit(); got != 10_000 {
			t.Errorf("mid-shrink BufferLimit = %d, want 10000", got)
		}
	})
	s.RunAll()
	if got := sw.BufferLimit(); got != 100_000 {
		t.Errorf("post-shrink BufferLimit = %d, want restored 100000", got)
	}
}

// TestDeterministicFaultSequence is the acceptance-criteria core: the
// same plan and seed applied twice yield identical fault counters and
// identical deliveries, even with random target picks and probabilistic
// loss in play.
func TestDeterministicFaultSequence(t *testing.T) {
	spec := "seed=7;" +
		"flap:link=rand,at=20us,down=15us,every=60us,count=3;" +
		"ge:link=all,pgb=0.02,pbg=0.3,loss=0.5,start=0s,stop=150us;" +
		"freeze:host=rand,at=40us,dur=30us"
	plan, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	rx1, ctr1, _ := starRun(t, plan, 3, 400, 500)
	rx2, ctr2, _ := starRun(t, plan, 3, 400, 500)
	if ctr1 != ctr2 {
		t.Fatalf("counters diverged across identical runs:\n  %+v\n  %+v", ctr1, ctr2)
	}
	if rx1.n != rx2.n || rx1.last != rx2.last {
		t.Fatalf("deliveries diverged: (%d, %v) vs (%d, %v)", rx1.n, rx1.last, rx2.n, rx2.last)
	}
	if ctr1.LinkFlaps != 3 || ctr1.NICFreezes != 1 {
		t.Fatalf("schedule miscounted: %+v", ctr1)
	}

	// A different run seed must shuffle the random picks (different
	// replication), but stay deterministic in itself.
	rx3, ctr3, _ := starRun(t, plan, 4, 400, 500)
	rx4, ctr4, _ := starRun(t, plan, 4, 400, 500)
	if ctr3 != ctr4 || rx3.n != rx4.n {
		t.Fatalf("seed-4 runs diverged: %+v vs %+v", ctr3, ctr4)
	}
}
