package chaos

import (
	"strings"
	"testing"

	"tlt/internal/fabric"
	_ "tlt/internal/fabric/mmu"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
)

const us = sim.Time(1000)

// rxCount counts packet arrivals for one flow.
type rxCount struct {
	n    int
	last sim.Time
	s    *sim.Sim
}

func (r *rxCount) Handle(pkt *packet.Packet) {
	r.n++
	r.last = r.s.Now()
}

// starRun builds a 4-host star, streams pkts green data packets from
// host 0 to host 1 at the given spacing, applies plan, and runs to
// completion. Returns deliveries and the engine counters.
func starRun(t *testing.T, plan *Plan, runSeed int64, pkts int, spacing sim.Time) (*rxCount, stats.FaultCounters, *topo.Network) {
	t.Helper()
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   5 * us,
		Switch:      fabric.SwitchConfig{BufferBytes: 300_000, Alpha: 1},
	})
	rx := &rxCount{s: s}
	net.Hosts[1].Register(1, rx)
	for i := 0; i < pkts; i++ {
		i := i
		s.At(sim.Time(i)*spacing, func() {
			net.Hosts[0].Send(&packet.Packet{
				Flow: 1, Dst: 1, Type: packet.Data,
				Mark: packet.ImportantData, Len: 1000, Seq: int64(i),
			})
		})
	}
	eng, err := plan.Apply(s, net, runSeed)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.RunAll()
	return rx, eng.Counters(), net
}

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("seed=42;" +
		"flap:link=rand,at=1ms,down=200us,every=2ms,count=5,until=20ms;" +
		"ge:link=all,pgb=0.001,pbg=0.1,loss=0.3,lossgood=0.01,start=1ms,stop=5ms;" +
		"shrink:switch=0,at=1ms,dur=500us,frac=0.25,every=3ms,count=2;" +
		"freeze:host=3,at=2ms,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	f := p.Flaps[0]
	if f.Link != RandomTarget || f.At != 1000*us || f.Down != 200*us ||
		f.Every != 2000*us || f.Count != 5 || f.Until != 20000*us {
		t.Errorf("flap = %+v", f)
	}
	b := p.Bursty[0]
	if b.Link != AllTargets || b.PGoodBad != 0.001 || b.PBadGood != 0.1 ||
		b.LossBad != 0.3 || b.LossGood != 0.01 || b.Start != 1000*us || b.Stop != 5000*us {
		t.Errorf("ge = %+v", b)
	}
	sh := p.Shrinks[0]
	if sh.Switch != 0 || sh.Frac != 0.25 || sh.Duration != 500*us || sh.Every != 3000*us || sh.Count != 2 {
		t.Errorf("shrink = %+v", sh)
	}
	fr := p.Freezes[0]
	if fr.Host != 3 || fr.At != 2000*us || fr.Duration != 1000*us {
		t.Errorf("freeze = %+v", fr)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ spec, wantErr string }{
		{"explode:at=1ms", "unknown directive"},
		{"flap:down=1ms,color=red", "unknown key"},
		{"flap:at=1ms", "needs down"},
		{"ge:link=0,pgb=0.1", "needs loss"},
		{"shrink:at=1ms,dur=1ms,frac=1.5", "outside [0, 1]"},
		{"shrink:at=1ms,dur=1ms", "needs frac"},
		{"freeze:host=0,at=1ms", "needs dur"},
		{"flap:down=abc", "time"},
		{"seed=xyz", "bad seed"},
		{"swfail:switch=0,banana=1", "unknown key"},
		{"swfail:at=-1ms", "negative duration"},
		{"portfail:link=0,dir=5", "dir=0 or dir=1"},
		{"portfail:dir=zero", "invalid syntax"},
		{"storm:host=0", "needs dur"},
		{"storm:host=0,dur=-5us", "negative duration"},
		{"storm:host=0,dur=1ms,refresh=oops", "time"},
		{"ge:link=0,loss=1.5", "outside [0, 1]"},
		{"ge:link=0,loss=NaN", "outside [0, 1]"},
		{"shrink:at=1ms,dur=1ms,frac=bogus", "invalid syntax"},
		{"freeze:host=-2,at=1ms,dur=1ms", "non-negative index"},
	} {
		if _, err := Parse(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q) err = %v, want substring %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil || !p.Empty() {
		t.Fatalf("Parse(\"\") = %+v, %v; want empty plan", p, err)
	}
}

// TestFlapDropsInFlight: with a 5µs wire and sub-µs packet spacing, a
// link-down window must kill packets that were propagating when it hit.
func TestFlapDropsInFlight(t *testing.T) {
	plan := &Plan{Flaps: []LinkFlap{{Link: 0, At: 50 * us, Down: 20 * us}}}
	rx, ctr, _ := starRun(t, plan, 1, 400, 500)
	if ctr.LinkFlaps != 1 {
		t.Fatalf("LinkFlaps = %d, want 1", ctr.LinkFlaps)
	}
	if ctr.DownDrops == 0 {
		t.Fatal("no DownDrops despite packets in flight across the outage")
	}
	if rx.n >= 400 {
		t.Fatalf("delivered %d of 400, expected losses", rx.n)
	}
	if rx.n == 0 {
		t.Fatal("nothing delivered — link never came back up")
	}
}

// TestFreezeStallsWithoutLoss: an NIC freeze delays traffic but loses
// nothing; every packet arrives, the last one after the thaw.
func TestFreezeStallsWithoutLoss(t *testing.T) {
	thaw := 150 * us
	plan := &Plan{Freezes: []NICFreeze{{Host: 0, At: 10 * us, Duration: thaw - 10*us}}}
	rx, ctr, _ := starRun(t, plan, 1, 100, 500)
	if ctr.NICFreezes != 1 {
		t.Fatalf("NICFreezes = %d, want 1", ctr.NICFreezes)
	}
	if ctr.TotalInjected() != 0 {
		t.Fatalf("freeze lost %d packets, want 0", ctr.TotalInjected())
	}
	if rx.n != 100 {
		t.Fatalf("delivered %d of 100", rx.n)
	}
	if rx.last < thaw {
		t.Fatalf("last delivery at %v, before thaw %v — freeze had no effect", rx.last, thaw)
	}
}

// TestBurstyLossDrops: a Gilbert–Elliott window must cause drops inside
// the window and none after it is removed.
func TestBurstyLossDrops(t *testing.T) {
	plan := &Plan{Bursty: []BurstyLoss{{
		Link: 0, Start: 0, Stop: 100 * us,
		PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.8,
	}}}
	rx, ctr, _ := starRun(t, plan, 1, 400, 500)
	if ctr.BurstyDrops == 0 {
		t.Fatal("no Gilbert–Elliott drops in a 0.8-loss bad state over 200 packets")
	}
	if int64(rx.n)+ctr.BurstyDrops != 400 {
		t.Fatalf("delivered %d + dropped %d != 400 sent", rx.n, ctr.BurstyDrops)
	}
}

// TestShrinkRestores: the MMU capacity comes back to the configured
// value after the shrink window.
func TestShrinkRestores(t *testing.T) {
	plan := &Plan{Shrinks: []BufferShrink{{Switch: 0, At: 10 * us, Duration: 50 * us, Frac: 0.1}}}
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: us,
		Switch: fabric.SwitchConfig{BufferBytes: 100_000, Alpha: 1},
	})
	if _, err := plan.Apply(s, net, 1); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	sw := net.Switches[0]
	s.At(30*us, func() {
		if got := sw.BufferLimit(); got != 10_000 {
			t.Errorf("mid-shrink BufferLimit = %d, want 10000", got)
		}
	})
	s.RunAll()
	if got := sw.BufferLimit(); got != 100_000 {
		t.Errorf("post-shrink BufferLimit = %d, want restored 100000", got)
	}
}

// TestShrinkRoutesThroughPolicy: the shrink fault mutates the switch's
// BufferPolicy, so a policy with its own capacity notion (tiny: 1/10 of
// the physical buffer) shrinks proportionally — and the legacy engine
// and the resolved engine agree on the resulting limits.
func TestShrinkRoutesThroughPolicy(t *testing.T) {
	plan := &Plan{Shrinks: []BufferShrink{{Switch: 0, At: 10 * us, Duration: 50 * us, Frac: 0.1}}}
	for _, resolved := range []bool{false, true} {
		s := sim.New()
		net := topo.Star(s, topo.StarConfig{
			Hosts: 2, LinkRateBps: 40e9, LinkDelay: us,
			Switch: fabric.SwitchConfig{BufferBytes: 100_000, Alpha: 1, MMU: "tiny"},
		})
		var err error
		if resolved {
			_, err = plan.ApplyResolved(net, 1, 200*us)
		} else {
			_, err = plan.Apply(s, net, 1)
		}
		if err != nil {
			t.Fatalf("resolved=%v: %v", resolved, err)
		}
		sw := net.Switches[0]
		if got := sw.BufferLimit(); got != 10_000 {
			t.Fatalf("resolved=%v: tiny BufferLimit = %d, want 10000", resolved, got)
		}
		s.At(30*us, func() {
			if got := sw.BufferLimit(); got != 1_000 {
				t.Errorf("resolved=%v: mid-shrink tiny BufferLimit = %d, want 1000 (0.1 × tiny capacity)",
					resolved, got)
			}
		})
		s.RunAll()
		if got := sw.BufferLimit(); got != 10_000 {
			t.Errorf("resolved=%v: post-shrink tiny BufferLimit = %d, want restored 10000", resolved, got)
		}
	}
}

// TestSwitchFailBlackHoles: a dead switch eats every data packet until
// it reboots; deliveries resume afterwards and the black-hole drops are
// counted under DropSwitchFail.
func TestSwitchFailBlackHoles(t *testing.T) {
	plan := &Plan{SwFails: []SwitchFail{{Switch: 0, At: 50 * us, Duration: 100 * us}}}
	rx, ctr, net := starRun(t, plan, 1, 400, 500)
	if ctr.SwitchFails != 1 {
		t.Fatalf("SwitchFails = %d, want 1", ctr.SwitchFails)
	}
	sw := net.Switches[0]
	if sw.Ctr.DropSwitchFail == 0 {
		t.Fatal("no DropSwitchFail despite traffic during the outage")
	}
	if sw.Failed() {
		t.Fatal("switch still failed after its repair duration")
	}
	if rx.n >= 400 {
		t.Fatalf("delivered %d of 400, expected black-hole losses", rx.n)
	}
	if rx.last < 150*us {
		t.Fatalf("last delivery at %v — traffic never resumed after reboot at 150us", rx.last)
	}
}

// TestSwitchFailPermanent: dur=0 kills the switch for good; nothing is
// delivered after the failure instant.
func TestSwitchFailPermanent(t *testing.T) {
	plan := &Plan{SwFails: []SwitchFail{{Switch: 0, At: 50 * us}}}
	rx, _, net := starRun(t, plan, 1, 400, 500)
	if !net.Switches[0].Failed() {
		t.Fatal("switch recovered from a permanent failure")
	}
	// Packets already on the wire at t=50us still land (2µs delay): allow
	// a small grace window, then silence.
	if rx.last > 60*us {
		t.Fatalf("delivery at %v, after permanent switch death at 50us", rx.last)
	}
	if rx.n == 0 {
		t.Fatal("nothing delivered before the failure")
	}
}

// TestPortFailWedgesOneDirection: portfail link=0,dir=0 wedges the
// host-0→switch transmitter (Txs[0]); the reverse direction and other
// links stay up.
func TestPortFailWedgesOneDirection(t *testing.T) {
	plan := &Plan{PtFails: []PortFail{{Link: 0, Dir: 0, At: 50 * us}}}
	rx, ctr, net := starRun(t, plan, 1, 400, 500)
	if ctr.PortFails != 1 {
		t.Fatalf("PortFails = %d, want 1", ctr.PortFails)
	}
	if !net.Txs[0].LinkDown() {
		t.Fatal("Txs[0] not down after portfail dir=0")
	}
	if net.Txs[1].LinkDown() {
		t.Fatal("portfail dir=0 also took down the reverse transmitter")
	}
	if rx.n >= 400 || rx.n == 0 {
		t.Fatalf("delivered %d of 400, want some before the failure and none after", rx.n)
	}
	// With a duration the transmitter comes back.
	plan = &Plan{PtFails: []PortFail{{Link: 0, Dir: 0, At: 50 * us, Duration: 30 * us}}}
	rx, _, net = starRun(t, plan, 1, 400, 500)
	if net.Txs[0].LinkDown() {
		t.Fatal("Txs[0] still down after repair")
	}
	if rx.last < 80*us {
		t.Fatalf("last delivery at %v — traffic never resumed after repair", rx.last)
	}
}

// TestPauseStormWedgesPort: a storming host pauses its switch port; with
// no watchdog the port stays latched for the storm duration and traffic
// toward the stormer stalls until the final resume frame.
func TestPauseStormWedgesPort(t *testing.T) {
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   5 * us,
		Switch:      fabric.SwitchConfig{BufferBytes: 300_000, Alpha: 1},
	})
	rx := &rxCount{s: s}
	net.Hosts[0].Register(1, rx)
	for i := 0; i < 100; i++ {
		i := i
		s.At(sim.Time(i)*500, func() {
			net.Hosts[1].Send(&packet.Packet{
				Flow: 1, Dst: 0, Type: packet.Data,
				Mark: packet.ImportantData, Len: 1000, Seq: int64(i),
			})
		})
	}
	stormEnd := 300 * us
	plan := &Plan{Storms: []PauseStorm{{Host: 0, At: 10 * us, Duration: stormEnd - 10*us}}}
	eng, err := plan.Apply(s, net, 1)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.RunAll()
	ctr := eng.Counters()
	if ctr.PauseStorms != 1 {
		t.Fatalf("PauseStorms = %d, want 1", ctr.PauseStorms)
	}
	if ctr.StormFrames < 10 {
		t.Fatalf("StormFrames = %d, want a continuous refresh stream", ctr.StormFrames)
	}
	if rx.n != 100 {
		t.Fatalf("delivered %d of 100 — pause must stall, not drop", rx.n)
	}
	if rx.last < stormEnd {
		t.Fatalf("last delivery at %v, before the storm ended at %v", rx.last, stormEnd)
	}
}

// TestWatchdogFiresOnStorm is the acceptance-criteria storm test: with
// the PFC watchdog armed, an injected pause storm trips the mitigation —
// the switch flushes and unpauses the wedged port instead of latching
// for the storm's whole lifetime.
func TestWatchdogFiresOnStorm(t *testing.T) {
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   5 * us,
		Switch: fabric.SwitchConfig{
			BufferBytes: 300_000, Alpha: 1,
			PFCWatchdog:       true,
			WatchdogThreshold: 50 * us,
		},
	})
	rx := &rxCount{s: s}
	net.Hosts[0].Register(1, rx)
	for i := 0; i < 200; i++ {
		i := i
		s.At(sim.Time(i)*500, func() {
			net.Hosts[1].Send(&packet.Packet{
				Flow: 1, Dst: 0, Type: packet.Data,
				Mark: packet.ImportantData, Len: 1000, Seq: int64(i),
			})
		})
	}
	plan := &Plan{Storms: []PauseStorm{{Host: 0, At: 10 * us, Duration: 500 * us}}}
	eng, err := plan.Apply(s, net, 1)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.RunAll()
	sw := net.Switches[0]
	if sw.Ctr.WatchdogFires == 0 {
		t.Fatal("watchdog never fired on a continuous pause storm")
	}
	if sw.Ctr.WatchdogDrops == 0 {
		t.Fatal("watchdog fired but flushed nothing despite a backlogged port")
	}
	if eng.Counters().StormFrames == 0 {
		t.Fatal("storm emitted no pause frames")
	}
	// Mitigation must beat the storm: deliveries resume well before the
	// storm's natural end at 510us would unlatch the port.
	if rx.last >= 510*us && rx.n == 0 {
		t.Fatal("no deliveries until storm end — mitigation had no effect")
	}
	if rx.n == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestValidateRejectsBadTargets: Apply must fail fast with a descriptive
// error instead of panicking mid-run on an out-of-range target.
func TestValidateRejectsBadTargets(t *testing.T) {
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts: 2, LinkRateBps: 40e9, LinkDelay: us,
		Switch: fabric.SwitchConfig{BufferBytes: 100_000, Alpha: 1},
	})
	for _, tc := range []struct {
		plan    *Plan
		wantErr string
	}{
		{&Plan{SwFails: []SwitchFail{{Switch: 7}}}, "swfail[0]: switch index 7 out of range"},
		{&Plan{Flaps: []LinkFlap{{Link: 99, Down: us}}}, "flap[0]: link index 99 out of range"},
		{&Plan{Freezes: []NICFreeze{{Host: -3, Duration: us}}}, "host index -3 out of range"},
		{&Plan{PtFails: []PortFail{{Link: 0, Dir: 2}}}, "dir 2"},
		{&Plan{Storms: []PauseStorm{{Host: 0}}}, "storm[0]"},
		{&Plan{Shrinks: []BufferShrink{{Switch: 4, Frac: 0.5, Duration: us}}}, "shrink[0]: switch index 4 out of range"},
	} {
		_, err := tc.plan.Apply(s, net, 1)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Apply(%+v) err = %v, want substring %q", tc.plan, err, tc.wantErr)
		}
	}
}

// TestDeterministicFaultSequence is the acceptance-criteria core: the
// same plan and seed applied twice yield identical fault counters and
// identical deliveries, even with random target picks and probabilistic
// loss in play.
func TestDeterministicFaultSequence(t *testing.T) {
	spec := "seed=7;" +
		"flap:link=rand,at=20us,down=15us,every=60us,count=3;" +
		"ge:link=all,pgb=0.02,pbg=0.3,loss=0.5,start=0s,stop=150us;" +
		"freeze:host=rand,at=40us,dur=30us"
	plan, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	rx1, ctr1, _ := starRun(t, plan, 3, 400, 500)
	rx2, ctr2, _ := starRun(t, plan, 3, 400, 500)
	if ctr1 != ctr2 {
		t.Fatalf("counters diverged across identical runs:\n  %+v\n  %+v", ctr1, ctr2)
	}
	if rx1.n != rx2.n || rx1.last != rx2.last {
		t.Fatalf("deliveries diverged: (%d, %v) vs (%d, %v)", rx1.n, rx1.last, rx2.n, rx2.last)
	}
	if ctr1.LinkFlaps != 3 || ctr1.NICFreezes != 1 {
		t.Fatalf("schedule miscounted: %+v", ctr1)
	}

	// A different run seed must shuffle the random picks (different
	// replication), but stay deterministic in itself.
	rx3, ctr3, _ := starRun(t, plan, 4, 400, 500)
	rx4, ctr4, _ := starRun(t, plan, 4, 400, 500)
	if ctr3 != ctr4 || rx3.n != rx4.n {
		t.Fatalf("seed-4 runs diverged: %+v vs %+v", ctr3, ctr4)
	}
}
