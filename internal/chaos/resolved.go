package chaos

import (
	"fmt"
	"sort"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/topo"
)

// ApplyResolved is Apply for sharded (grouped) networks. The legacy
// engine makes decisions lazily — random targets are drawn and chains
// extended inside event callbacks on the one simulator — which a
// partitioned run cannot reproduce: a callback runs on whichever shard
// owns its target, and an RNG shared across shards would make draw
// order depend on the partition. The resolved engine instead commits
// every decision at apply time, single-threaded:
//
//   - all RNG draws happen here, in directive order (Flaps, Bursty,
//     Shrinks, Freezes, SwFails, PtFails, Storms), so picks are a pure
//     function of (plan, runSeed) regardless of shard count;
//   - repeat chains are expanded statically up to horizon (the run
//     never executes past it, so truncation is invisible);
//   - each effect is posted to the shard owning the mutated state: a
//     link outage splits into a source half (stop transmitting) and an
//     arrival half (black-hole the wire) on their respective shards;
//   - the switch-failure "already failed" guard is replayed on a
//     static control-plane timeline, and reroutes become per-switch
//     route installs carrying an immutable failed-set snapshot.
//
// Occurrence counters use the engine's slot table: the firing event
// marks its slot, and Counters sums marks after the run joins, so only
// occurrences that actually executed before the run ended are counted —
// matching the legacy at-fire-time increments.
//
// net must have been built with shard metadata (HostShard/SwitchShard
// and per-Tx shards); horizon bounds chain expansion and must equal the
// run's horizon.
func (p *Plan) ApplyResolved(net *topo.Network, runSeed int64, horizon sim.Time) (*Engine, error) {
	e := &Engine{
		s: net.ShardSim(0), net: net,
		rng: sim.NewRNG(p.Seed*0x9e3779b9 + runSeed + 0xc4a05),
	}
	if p.Empty() {
		return e, nil
	}
	if err := p.Validate(net); err != nil {
		return nil, err
	}
	for _, f := range p.Flaps {
		e.resolveFlap(f, horizon)
	}
	for _, b := range p.Bursty {
		e.resolveBursty(b)
	}
	for _, sh := range p.Shrinks {
		e.resolveShrink(sh, horizon)
	}
	for _, fr := range p.Freezes {
		e.resolveFreeze(fr, horizon)
	}
	e.resolveSwitchFails(p.SwFails, horizon)
	for _, f := range p.PtFails {
		e.resolvePortFail(f)
	}
	for _, st := range p.Storms {
		e.resolveStorm(st)
	}
	return e, nil
}

// Occurrence slot kinds (Engine.slotKind values).
const (
	slotFlap uint8 = iota
	slotShrink
	slotFreeze
	slotSwFail
	slotPortFail
	slotStorm
)

// newSlot allocates an occurrence slot and returns its index. Closures
// capture the index, never a pointer: the slices may still grow while
// later directives resolve.
func (e *Engine) newSlot(kind uint8) int {
	e.slotKind = append(e.slotKind, kind)
	e.slotFired = append(e.slotFired, false)
	return len(e.slotFired) - 1
}

// post schedules fn at time at on the simulator owning shard.
func (e *Engine) post(shard int, at sim.Time, fn func()) {
	e.net.ShardSim(shard).At(at, fn)
}

// switchShard returns switch i's shard, tolerating topologies that
// don't populate shard metadata (Star, dumbbell — everything lives on
// shard 0 there).
func (e *Engine) switchShard(i int) int {
	if i < len(e.net.SwitchShard) {
		return e.net.SwitchShard[i]
	}
	return 0
}

// hostShard is switchShard for hosts.
func (e *Engine) hostShard(i int) int {
	if i < len(e.net.HostShard) {
		return e.net.HostShard[i]
	}
	return 0
}

func (e *Engine) pickHost(idx int) int {
	if idx == RandomTarget {
		idx = e.rng.Intn(len(e.net.Hosts))
	}
	if idx < 0 || idx >= len(e.net.Hosts) {
		panic(fmt.Sprintf("chaos: host %d out of range [0, %d)", idx, len(e.net.Hosts)))
	}
	return idx
}

func (e *Engine) pickSwitch(idx int) int {
	if idx == RandomTarget {
		idx = e.rng.Intn(len(e.net.Switches))
	}
	if idx < 0 || idx >= len(e.net.Switches) {
		panic(fmt.Sprintf("chaos: switch %d out of range [0, %d)", idx, len(e.net.Switches)))
	}
	return idx
}

// linkOutage posts the four half-events taking both directions of link
// down at t, plus the matching up halves at up (skipped when up <= t,
// i.e. a permanent outage). The first down half also marks slot.
func (e *Engine) linkOutage(link int, t, up sim.Time, slot int) {
	a, b := e.net.Txs[2*link], e.net.Txs[2*link+1]
	e.txOutage(a, t, up, slot)
	e.txOutage(b, t, up, -1)
}

// txOutage downs one directional transmitter at t (split into source
// and arrival halves on their owning shards) and restores it at up when
// up > t. slot >= 0 marks that occurrence slot from the source half.
func (e *Engine) txOutage(tx *fabric.Tx, t, up sim.Time, slot int) {
	e.post(tx.Shard(), t, func() {
		tx.SetSrcDown(true)
		if slot >= 0 {
			e.slotFired[slot] = true
		}
	})
	e.post(tx.ArrivalShard(), t, func() { tx.SetArrivalDown(true) })
	if up > t {
		e.post(tx.Shard(), up, func() { tx.SetSrcDown(false) })
		e.post(tx.ArrivalShard(), up, func() { tx.SetArrivalDown(false) })
	}
}

// chainTimes expands a repeat chain (first occurrence at, period every,
// count occurrences, bounded by until and horizon) into explicit start
// times. The legacy engine checks Until at fire time with >=, so an
// occurrence starting at or after until is dropped along with the rest
// of its chain; occurrences past horizon can never execute and are
// dropped to keep unbounded chains finite.
func chainTimes(at, every sim.Time, count int, until, horizon sim.Time) []sim.Time {
	var out []sim.Time
	t := at
	for occ := 0; ; occ++ {
		if until > 0 && t >= until {
			break
		}
		if t > horizon {
			break
		}
		out = append(out, t)
		if every > 0 && (count == 0 || occ+1 < count) {
			t += every
			continue
		}
		break
	}
	return out
}

func (e *Engine) resolveFlap(f LinkFlap, horizon sim.Time) {
	for _, t := range chainTimes(f.At, f.Every, f.Count, f.Until, horizon) {
		link := e.pickLink(f.Link)
		if link < 0 {
			return
		}
		e.linkOutage(link, t, t+f.Down, e.newSlot(slotFlap))
	}
}

func (e *Engine) resolveBursty(b BurstyLoss) {
	var links []int
	if b.Link == AllTargets {
		for i := 0; i < NumLinks(e.net); i++ {
			links = append(links, i)
		}
	} else {
		links = []int{e.pickLink(b.Link)}
	}
	for _, l := range links {
		for dir := 0; dir < 2; dir++ {
			tx := e.net.Txs[2*l+dir]
			// Per-direction RNGs, drawn here in the legacy order
			// (direction a then b per link).
			rng := sim.NewRNG(e.rng.Int63())
			e.post(tx.Shard(), b.Start, func() {
				tx.InjectGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad, rng)
			})
			if b.Stop > b.Start {
				e.post(tx.Shard(), b.Stop, func() {
					tx.InjectGilbertElliott(0, 0, 0, 0, nil)
				})
			}
		}
	}
}

func (e *Engine) resolveShrink(sh BufferShrink, horizon sim.Time) {
	var sws []int
	if sh.Switch == AllTargets {
		for i := range e.net.Switches {
			sws = append(sws, i)
		}
	} else {
		sws = []int{sh.Switch}
	}
	for _, t := range chainTimes(sh.At, sh.Every, sh.Count, 0, horizon) {
		slot := e.newSlot(slotShrink)
		for k, i := range sws {
			sw := e.net.Switches[i]
			shard := e.switchShard(i)
			mark := k == 0
			// Same policy-routed mutation as legacy Apply: the fraction
			// is resolved here, the policy computes the byte limit from
			// its own capacity at fire time.
			e.post(shard, t, func() {
				sw.ShrinkBuffer(sh.Frac)
				if mark {
					e.slotFired[slot] = true
				}
			})
			e.post(shard, t+sh.Duration, func() { sw.ShrinkBuffer(0) })
		}
	}
}

func (e *Engine) resolveFreeze(fr NICFreeze, horizon sim.Time) {
	for _, t := range chainTimes(fr.At, fr.Every, fr.Count, 0, horizon) {
		idx := e.pickHost(fr.Host)
		shard := e.hostShard(idx)
		tx := e.net.Hosts[idx].NICTx()
		slot := e.newSlot(slotFreeze)
		e.post(shard, t, func() {
			tx.Freeze()
			e.slotFired[slot] = true
		})
		e.post(shard, t+fr.Duration, tx.Unfreeze)
	}
}

// cpEvent is one control-plane transition: at time t the controller
// learns switch sw failed (or recovered) and reinstalls routes.
type cpEvent struct {
	t      sim.Time
	sw     int
	failed bool
}

// resolveSwitchFails handles every SwitchFail directive together,
// because the legacy "if !sw.Failed()" guard couples them: an
// occurrence is a no-op while its target is already down. Random picks
// are drawn per directive in order (so the stream matches the overall
// directive-order convention); then occurrences are replayed in global
// (time, directive, occurrence) order against a static down/up timeline
// to decide which ones take effect.
func (e *Engine) resolveSwitchFails(fails []SwitchFail, horizon sim.Time) {
	type occ struct {
		t        sim.Time
		dir, seq int
		sw       int
		f        SwitchFail
	}
	var occs []occ
	for di, f := range fails {
		for si, t := range chainTimes(f.At, f.Every, f.Count, 0, horizon) {
			occs = append(occs, occ{t: t, dir: di, seq: si, sw: e.pickSwitch(f.Switch), f: f})
		}
	}
	sort.SliceStable(occs, func(i, j int) bool {
		if occs[i].t != occs[j].t {
			return occs[i].t < occs[j].t
		}
		if occs[i].dir != occs[j].dir {
			return occs[i].dir < occs[j].dir
		}
		return occs[i].seq < occs[j].seq
	})

	// Replay the guard: a switch is down during [t, t+Duration), or
	// forever when Duration == 0. An occurrence landing exactly at the
	// reboot instant takes effect (the legacy reboot event carries the
	// older sequence number, so it runs first).
	downUntil := make([]sim.Time, len(e.net.Switches))
	perm := make([]bool, len(e.net.Switches))
	var cps []cpEvent
	for _, o := range occs {
		if perm[o.sw] || o.t < downUntil[o.sw] {
			continue // guard: already failed, occurrence is a no-op
		}
		if o.f.Duration > 0 {
			downUntil[o.sw] = o.t + o.f.Duration
		} else {
			perm[o.sw] = true
		}
		sw := e.net.Switches[o.sw]
		shard := e.switchShard(o.sw)
		slot := e.newSlot(slotSwFail)
		e.post(shard, o.t, func() {
			sw.Fail()
			e.slotFired[slot] = true
		})
		if o.f.Reroute > 0 {
			cps = append(cps, cpEvent{t: o.t + o.f.Reroute, sw: o.sw, failed: true})
		}
		if o.f.Duration > 0 {
			e.post(shard, o.t+o.f.Duration, sw.Reboot)
			if o.f.Reroute > 0 {
				cps = append(cps, cpEvent{t: o.t + o.f.Duration + o.f.Reroute, sw: o.sw, failed: false})
			}
		}
	}

	// Control plane: fold transitions in (time, generation) order into
	// failed-set snapshots, one reroute wave per distinct instant. Each
	// switch gets its route install on its own shard, reading only the
	// immutable snapshot.
	sort.SliceStable(cps, func(i, j int) bool { return cps[i].t < cps[j].t })
	failed := make([]bool, len(e.net.Switches))
	for i := 0; i < len(cps); {
		t := cps[i].t
		for ; i < len(cps) && cps[i].t == t; i++ {
			failed[cps[i].sw] = cps[i].failed
		}
		snapshot := append([]bool(nil), failed...)
		for j := range e.net.Switches {
			sw := j
			e.post(e.switchShard(sw), t, func() {
				e.net.RerouteSwitch(sw, snapshot)
			})
		}
	}
}

func (e *Engine) resolvePortFail(f PortFail) {
	link := e.pickLink(f.Link)
	if link < 0 {
		return
	}
	tx := e.net.Txs[2*link+f.Dir]
	up := f.At
	if f.Duration > 0 {
		up = f.At + f.Duration
	}
	e.txOutage(tx, f.At, up, e.newSlot(slotPortFail))
}

func (e *Engine) resolveStorm(st PauseStorm) {
	refresh := st.Refresh
	if refresh <= 0 {
		refresh = 2 * sim.Microsecond
	}
	idx := e.pickHost(st.Host)
	h := e.net.Hosts[idx]
	hsim := e.net.ShardSim(e.hostShard(idx))
	slot := e.newSlot(slotStorm)
	frames := len(e.stormFrames)
	e.stormFrames = append(e.stormFrames, 0)
	// The whole storm — activation, emit chain, final resume — runs on
	// the host's shard, so the legacy lazy chain works unchanged.
	hsim.At(st.At, func() {
		end := hsim.Now() + st.Duration
		e.slotFired[slot] = true
		var emit func()
		emit = func() {
			pf := h.NewPacket()
			pf.Type = packet.Pause
			pf.Src = h.ID()
			h.NICTx().DeliverControl(pf)
			e.stormFrames[frames]++
			if hsim.Now()+refresh < end {
				hsim.After(refresh, emit)
				return
			}
			hsim.After(refresh, func() {
				rf := h.NewPacket()
				rf.Type = packet.Resume
				rf.Src = h.ID()
				h.NICTx().DeliverControl(rf)
			})
		}
		emit()
	})
}
