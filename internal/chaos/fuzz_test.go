package chaos

import (
	"math"
	"testing"
)

// FuzzParse asserts the spec grammar's contract on arbitrary input:
// Parse either returns a descriptive error or a plan whose every field
// is internally consistent — no panics, no NaN probabilities, no
// negative durations, no accepted-but-invalid plans. Run with
//
//	go test -fuzz=FuzzParse ./internal/chaos/
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"seed=42",
		"flap:link=rand,at=1ms,down=200us,every=2ms,count=5,until=20ms",
		"ge:link=all,pgb=0.001,pbg=0.1,loss=0.3,lossgood=0.01,start=1ms,stop=5ms",
		"shrink:switch=0,at=1ms,dur=500us,frac=0.25",
		"freeze:host=3,at=2ms,dur=1ms",
		"swfail:switch=12,at=1ms,dur=2ms,reroute=200us,every=5ms,count=2",
		"portfail:link=4,dir=1,at=1ms,dur=500us",
		"storm:host=0,at=1ms,dur=1ms,refresh=5us",
		"seed=7;flap:down=1ms;storm:host=rand,dur=2ms",
		"flap:down=-1ms",
		"ge:loss=NaN",
		"storm:dur=1ms,refresh=",
		";;;",
		"swfail:switch=rand",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned neither plan nor error", spec)
		}
		checkDur := func(what string, ds ...int64) {
			for _, d := range ds {
				if d < 0 {
					t.Fatalf("Parse(%q) accepted negative %s duration %d", spec, what, d)
				}
			}
		}
		checkProb := func(what string, ps ...float64) {
			for _, pr := range ps {
				if math.IsNaN(pr) || pr < 0 || pr > 1 {
					t.Fatalf("Parse(%q) accepted %s probability %v", spec, what, pr)
				}
			}
		}
		checkTarget := func(what string, v int) {
			if v < 0 && v != RandomTarget && v != AllTargets {
				t.Fatalf("Parse(%q) accepted %s target %d", spec, what, v)
			}
		}
		for _, fl := range p.Flaps {
			checkDur("flap", int64(fl.At), int64(fl.Down), int64(fl.Every), int64(fl.Until))
			checkTarget("flap", fl.Link)
			if fl.Down <= 0 {
				t.Fatalf("Parse(%q) accepted flap without down", spec)
			}
		}
		for _, b := range p.Bursty {
			checkDur("ge", int64(b.Start), int64(b.Stop))
			checkProb("ge", b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad)
			checkTarget("ge", b.Link)
		}
		for _, sh := range p.Shrinks {
			checkDur("shrink", int64(sh.At), int64(sh.Duration))
			checkTarget("shrink", sh.Switch)
			if sh.Frac <= 0 || sh.Frac >= 1 {
				t.Fatalf("Parse(%q) accepted shrink frac %v", spec, sh.Frac)
			}
		}
		for _, fr := range p.Freezes {
			checkDur("freeze", int64(fr.At), int64(fr.Duration))
			checkTarget("freeze", fr.Host)
			if fr.Duration <= 0 {
				t.Fatalf("Parse(%q) accepted freeze without dur", spec)
			}
		}
		for _, sf := range p.SwFails {
			checkDur("swfail", int64(sf.At), int64(sf.Duration), int64(sf.Reroute), int64(sf.Every))
			checkTarget("swfail", sf.Switch)
		}
		for _, pf := range p.PtFails {
			checkDur("portfail", int64(pf.At), int64(pf.Duration))
			checkTarget("portfail", pf.Link)
			if pf.Dir != 0 && pf.Dir != 1 {
				t.Fatalf("Parse(%q) accepted portfail dir %d", spec, pf.Dir)
			}
		}
		for _, st := range p.Storms {
			checkDur("storm", int64(st.At), int64(st.Duration), int64(st.Refresh))
			checkTarget("storm", st.Host)
			if st.Duration <= 0 {
				t.Fatalf("Parse(%q) accepted storm without dur", spec)
			}
		}
	})
}
