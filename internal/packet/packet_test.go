package packet

import "testing"

func TestMarkColorMapping(t *testing.T) {
	// Only Unimportant travels red; everything TLT tags is protected.
	cases := []struct {
		m    Mark
		want Color
	}{
		{Unimportant, Red},
		{ImportantData, Green},
		{ImportantEcho, Green},
		{ImportantClockData, Green},
		{ImportantClockEcho, Green},
		{ControlImportant, Green},
	}
	for _, c := range cases {
		if got := c.m.Color(); got != c.want {
			t.Errorf("%v.Color() = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestWireSize(t *testing.T) {
	p := &Packet{Type: Data, Len: 1000}
	if got := p.WireSize(); got != 1048 {
		t.Fatalf("WireSize = %d, want 1048", got)
	}
	ack := &Packet{Type: Ack}
	if got := ack.WireSize(); got != HeaderBytes {
		t.Fatalf("pure ACK WireSize = %d, want %d", got, HeaderBytes)
	}
	// INT hops consume header space.
	p.AppendINT(INTHop{})
	p.AppendINT(INTHop{})
	if got := p.WireSize(); got != 1048+16 {
		t.Fatalf("WireSize with 2 INT hops = %d, want %d", got, 1048+16)
	}
}

func TestINTInlineAndOverflow(t *testing.T) {
	p := &Packet{}
	for i := 0; i < MaxINTHops; i++ {
		if p.AppendINT(INTHop{QueueBytes: int64(i)}) {
			t.Fatalf("hop %d spilled before MaxINTHops", i)
		}
	}
	if p.NumINT() != MaxINTHops {
		t.Fatalf("NumINT = %d, want %d", p.NumINT(), MaxINTHops)
	}
	// One past capacity spills to the overflow slice, preserving order.
	if !p.AppendINT(INTHop{QueueBytes: 99}) {
		t.Fatal("overflow append did not report a spill")
	}
	hops := p.INTHops()
	if len(hops) != MaxINTHops+1 {
		t.Fatalf("len(INTHops) = %d, want %d", len(hops), MaxINTHops+1)
	}
	for i := 0; i < MaxINTHops; i++ {
		if hops[i].QueueBytes != int64(i) {
			t.Fatalf("hop %d = %+v after spill", i, hops[i])
		}
	}
	if hops[MaxINTHops].QueueBytes != 99 {
		t.Fatalf("spilled hop = %+v", hops[MaxINTHops])
	}
}

func TestCopyINTFrom(t *testing.T) {
	src := &Packet{}
	src.AppendINT(INTHop{QueueBytes: 1})
	src.AppendINT(INTHop{QueueBytes: 2})
	ack := &Packet{}
	ack.CopyINTFrom(src)
	// The copy must not alias the source: recycling src (full zero) may
	// not disturb the echoed hops.
	*src = Packet{}
	hops := ack.INTHops()
	if len(hops) != 2 || hops[0].QueueBytes != 1 || hops[1].QueueBytes != 2 {
		t.Fatalf("echoed hops = %+v", hops)
	}

	// Same property when the source spilled to the overflow slice.
	big := &Packet{}
	for i := 0; i < MaxINTHops+2; i++ {
		big.AppendINT(INTHop{QueueBytes: int64(i)})
	}
	ack2 := &Packet{}
	ack2.CopyINTFrom(big)
	*big = Packet{}
	hops = ack2.INTHops()
	if len(hops) != MaxINTHops+2 {
		t.Fatalf("echoed spilled hops = %d, want %d", len(hops), MaxINTHops+2)
	}
	for i, h := range hops {
		if h.QueueBytes != int64(i) {
			t.Fatalf("echoed hop %d = %+v", i, h)
		}
	}
}

func TestIsControl(t *testing.T) {
	for _, typ := range []Type{Ack, Nack, Cnp, Pause, Resume} {
		if !(&Packet{Type: typ}).IsControl() {
			t.Errorf("%v should be control", typ)
		}
	}
	if (&Packet{Type: Data}).IsControl() {
		t.Error("Data should not be control")
	}
}

func TestImportant(t *testing.T) {
	if (&Packet{Mark: Unimportant}).Important() {
		t.Error("unimportant packet reported important")
	}
	if !(&Packet{Mark: ImportantData}).Important() {
		t.Error("ImportantData not reported important")
	}
}

func TestStringers(t *testing.T) {
	// Every enum value needs a printable name for traces.
	for _, typ := range []Type{Data, Ack, Nack, Cnp, Pause, Resume} {
		if typ.String() == "?" {
			t.Errorf("Type %d has no name", typ)
		}
	}
	for _, m := range []Mark{Unimportant, ImportantData, ImportantEcho, ImportantClockData, ImportantClockEcho, ControlImportant} {
		if m.String() == "?" {
			t.Errorf("Mark %d has no name", m)
		}
	}
}
