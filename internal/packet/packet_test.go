package packet

import "testing"

func TestMarkColorMapping(t *testing.T) {
	// Only Unimportant travels red; everything TLT tags is protected.
	cases := []struct {
		m    Mark
		want Color
	}{
		{Unimportant, Red},
		{ImportantData, Green},
		{ImportantEcho, Green},
		{ImportantClockData, Green},
		{ImportantClockEcho, Green},
		{ControlImportant, Green},
	}
	for _, c := range cases {
		if got := c.m.Color(); got != c.want {
			t.Errorf("%v.Color() = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestWireSize(t *testing.T) {
	p := &Packet{Type: Data, Len: 1000}
	if got := p.WireSize(); got != 1048 {
		t.Fatalf("WireSize = %d, want 1048", got)
	}
	ack := &Packet{Type: Ack}
	if got := ack.WireSize(); got != HeaderBytes {
		t.Fatalf("pure ACK WireSize = %d, want %d", got, HeaderBytes)
	}
	// INT hops consume header space.
	p.INT = append(p.INT, INTHop{}, INTHop{})
	if got := p.WireSize(); got != 1048+16 {
		t.Fatalf("WireSize with 2 INT hops = %d, want %d", got, 1048+16)
	}
}

func TestIsControl(t *testing.T) {
	for _, typ := range []Type{Ack, Nack, Cnp, Pause, Resume} {
		if !(&Packet{Type: typ}).IsControl() {
			t.Errorf("%v should be control", typ)
		}
	}
	if (&Packet{Type: Data}).IsControl() {
		t.Error("Data should not be control")
	}
}

func TestImportant(t *testing.T) {
	if (&Packet{Mark: Unimportant}).Important() {
		t.Error("unimportant packet reported important")
	}
	if !(&Packet{Mark: ImportantData}).Important() {
		t.Error("ImportantData not reported important")
	}
}

func TestStringers(t *testing.T) {
	// Every enum value needs a printable name for traces.
	for _, typ := range []Type{Data, Ack, Nack, Cnp, Pause, Resume} {
		if typ.String() == "?" {
			t.Errorf("Type %d has no name", typ)
		}
	}
	for _, m := range []Mark{Unimportant, ImportantData, ImportantEcho, ImportantClockData, ImportantClockEcho, ControlImportant} {
		if m.String() == "?" {
			t.Errorf("Mark %d has no name", m)
		}
	}
}
