package packet

import "testing"

func TestPoolRecyclesZeroed(t *testing.T) {
	p := NewPool()
	a := p.Get()
	if p.News != 1 || p.Reuses != 0 {
		t.Fatalf("counters after first Get: news=%d reuses=%d", p.News, p.Reuses)
	}
	a.Flow = 7
	a.Type = Ack
	a.Sack = []SackBlock{{0, 10}}
	a.AppendINT(INTHop{QueueBytes: 1})
	sack := a.Sack
	p.Put(a)

	b := p.Get()
	if b != a {
		t.Fatal("Get did not reuse the freed packet")
	}
	if p.Reuses != 1 || p.Puts != 1 {
		t.Fatalf("reuses = %d puts = %d, want 1/1", p.Reuses, p.Puts)
	}
	if b.Flow != 0 || b.Type != Data || b.Sack != nil || b.NumINT() != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", b)
	}
	// The old backing array must be untouched: an in-flight alias (trace
	// event, echoed INT) may still read it.
	if sack[0].End != 10 {
		t.Fatalf("freed packet's slice backing array was mutated: %+v", sack)
	}
}

func TestPoolLIFO(t *testing.T) {
	p := NewPool()
	a, b := p.Get(), p.Get()
	p.Put(a)
	p.Put(b)
	if got := p.Get(); got != b {
		t.Fatal("expected LIFO reuse of most recently freed packet")
	}
	if got := p.Get(); got != a {
		t.Fatal("expected second Get to return the older freed packet")
	}
	if p.News != 2 || p.Reuses != 2 {
		t.Fatalf("counters: news=%d reuses=%d", p.News, p.Reuses)
	}
}
