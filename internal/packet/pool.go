package packet

// Pool is a free-list for Packet allocations on the simulation hot path.
// Hosts draw outbound packets from it and recycle inbound packets once
// the transport handler returns, so steady-state traffic reuses a small
// working set of structs instead of pressuring the GC with one
// allocation per segment and ACK.
//
// A Pool belongs to exactly one simulation (one *sim.Sim event loop) and
// is NOT safe for concurrent use; parallel experiment runs each build
// their own network and therefore their own pool.
type Pool struct {
	free []*Packet

	// News counts fresh heap allocations, Reuses recycled ones; their
	// ratio is the pool hit rate reported by benchmarks.
	News   uint64
	Reuses uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycling a freed one when available.
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Reuses++
		return pkt
	}
	p.News++
	return &Packet{}
}

// Put recycles pkt. The struct is fully zeroed — including the Sack and
// INT slice headers — so no stale field leaks into the next Get and any
// backing array still aliased by an in-flight reader (an HPCC ACK echoes
// the data packet's INT slice; trace events copy slice headers) remains
// solely theirs: the pool never reuses slice capacity.
func (p *Pool) Put(pkt *Packet) {
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}
