package packet

// Pool is a free-list for Packet allocations on the simulation hot path.
// Hosts draw outbound packets from it and recycle inbound packets once
// the transport handler returns; switches recycle packets they drop at
// admission and draw PFC control frames from it. Steady-state traffic
// therefore reuses a small working set of structs instead of pressuring
// the GC with one allocation per segment, ACK, drop and PAUSE frame.
//
// A Pool belongs to exactly one simulation (one *sim.Sim event loop) and
// is NOT safe for concurrent use; parallel experiment runs each build
// their own network and therefore their own pool.
type Pool struct {
	free []*Packet

	// News counts fresh heap allocations, Reuses recycled ones; their
	// ratio is the pool hit rate reported by benchmarks.
	News   uint64
	Reuses uint64

	// Puts counts recycles (News+Reuses-Puts = live packets, assuming
	// no leaks); the runtime invariant tests assert on it.
	Puts uint64

	// onFree is non-nil when audit mode is on: it tracks free-list
	// membership so a double Put panics instead of corrupting the list.
	onFree map[*Packet]bool
}

// poisonSeq is stamped into freed packets under audit mode; a packet
// whose poison was clobbered between Put and Get was written through a
// stale pointer (use-after-put).
const poisonSeq int64 = -0x7057_dead_beef

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// EnableAudit turns on free-list invariant checking (tests only): Put
// panics on a double-put, and Get panics when a freed packet was
// mutated while on the free list (use-after-put). The checks cost a map
// operation per Get/Put, so production pools leave this off.
func (p *Pool) EnableAudit() { p.onFree = make(map[*Packet]bool) }

// Get returns a zeroed packet, recycling a freed one when available.
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Reuses++
		if p.onFree != nil {
			if pkt.Seq != poisonSeq {
				panic("packet.Pool: freed packet was mutated on the free list (use-after-put)")
			}
			pkt.Seq = 0
			delete(p.onFree, pkt)
		}
		return pkt
	}
	p.News++
	return &Packet{}
}

// Put recycles pkt. The struct is fully zeroed — including the Sack
// slice header and the inline INT state — so no stale field leaks into
// the next Get and any backing array still aliased by an in-flight
// reader (trace events copy slice headers) remains solely theirs: the
// pool never reuses slice capacity.
func (p *Pool) Put(pkt *Packet) {
	if p.onFree != nil {
		if p.onFree[pkt] {
			panic("packet.Pool: double Put of the same packet")
		}
		p.onFree[pkt] = true
	}
	*pkt = Packet{}
	if p.onFree != nil {
		pkt.Seq = poisonSeq
	}
	p.Puts++
	p.free = append(p.free, pkt)
}

// FreeLen returns the current free-list length (tests).
func (p *Pool) FreeLen() int { return len(p.free) }
