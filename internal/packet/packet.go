// Package packet defines the on-wire unit exchanged by hosts and switches.
//
// A single Packet struct covers every protocol in the repository: TCP-family
// byte-stream segments, RoCE-family PSN-numbered messages, and the control
// plane (ACK, NACK, CNP, PFC PAUSE/RESUME). Switches only inspect the
// fields a commodity chip could see: size, priority, color (derived from a
// DSCP-like mark), and ECN bits.
package packet

import "tlt/internal/sim"

// FlowID uniquely identifies a flow (connection) in a run.
type FlowID uint64

// NodeID identifies a host or switch in the topology.
type NodeID int32

// Type enumerates packet kinds.
type Type uint8

// Packet types.
const (
	Data   Type = iota // payload-carrying segment
	Ack                // cumulative/selective acknowledgment (TCP family, IRN)
	Nack               // RoCE out-of-order notification (expected PSN)
	Cnp                // DCQCN congestion notification packet
	Pause              // PFC XOFF for a priority
	Resume             // PFC XON for a priority
)

// String returns a short human-readable name.
func (t Type) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case Cnp:
		return "CNP"
	case Pause:
		return "PAUSE"
	case Resume:
		return "RESUME"
	}
	return "?"
}

// Color is the switch-visible drop class, assigned at the host from the
// TLT mark (via a DSCP-to-color ACL, as on Broadcom chips). Green packets
// ("important") may occupy the queue up to the dynamic threshold; red
// packets ("unimportant") are dropped beyond the color-aware threshold.
type Color uint8

// Colors.
const (
	Green Color = iota // important: protected
	Red                // unimportant: subject to color-aware dropping
)

// Mark is the TLT transport-layer message tag (paper §5, Appendix A).
type Mark uint8

// TLT marks. Everything except Unimportant maps to Green on the wire.
const (
	Unimportant        Mark = iota
	ImportantData           // important payload packet
	ImportantEcho           // ACK acknowledging an ImportantData
	ImportantClockData      // payload injected by important ACK-clocking
	ImportantClockEcho      // ACK for ImportantClockData (filtered at TLT layer)
	ControlImportant        // pure control (ACK/NACK/CNP): always important
)

// Color returns the wire color for the mark.
func (m Mark) Color() Color {
	if m == Unimportant {
		return Red
	}
	return Green
}

// String returns a short mark name for traces.
func (m Mark) String() string {
	switch m {
	case Unimportant:
		return "uimp"
	case ImportantData:
		return "IMP-D"
	case ImportantEcho:
		return "IMP-E"
	case ImportantClockData:
		return "IMPC-D"
	case ImportantClockEcho:
		return "IMPC-E"
	case ControlImportant:
		return "IMP-CTL"
	}
	return "?"
}

// SackBlock is a half-open received byte range [Start, End) reported by a
// selective acknowledgment.
type SackBlock struct {
	Start, End int64
}

// INTHop carries in-band network telemetry appended by each switch hop,
// used by HPCC.
type INTHop struct {
	QueueBytes int64    // egress queue depth at transmit time
	TxBytes    int64    // cumulative bytes transmitted by the egress port
	Timestamp  sim.Time // when the packet left the port
	RateBps    int64    // port line rate
}

// MaxINTHops is the inline telemetry capacity of a packet. Leaf-spine
// paths traverse at most three switches (ToR→spine→ToR), so five inline
// slots cover every topology in the repository with headroom; deeper
// fabrics spill to a heap-allocated overflow slice (counted by the
// switch so the fallback never hides silently).
const MaxINTHops = 5

// HeaderBytes is the modeled per-packet overhead (Ethernet+IP+TCP-ish).
const HeaderBytes = 48

// Packet is the unit moved through the fabric. Packets are passed by
// pointer and owned by the receiver once delivered.
type Packet struct {
	Flow     FlowID
	Src, Dst NodeID

	Type Type
	Mark Mark

	// TC is the traffic class (egress queue) on multi-queue switch
	// ports; class 0 is the TLT class in incremental deployments (§5.3).
	TC uint8

	// intN is the inline INT hop count, or intSpilled once the stack
	// overflowed into intOv. It lives up here, packed with the other
	// byte-wide fields, so WireSize resolves the common no-spill case
	// from the packet's first cache line without touching intOv.
	intN uint8

	// Seq/Len: for TCP-family Data, the byte offset and payload length.
	// For RoCE-family Data, Seq is the PSN and Len the payload bytes.
	Seq int64
	Len int

	// Ack: cumulative acknowledgment (TCP: next expected byte; RoCE
	// SACK/IRN: next expected PSN). For Nack, the expected PSN.
	Ack  int64
	Sack []SackBlock

	// ECN state.
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced (set by switches)
	ECE bool // echo of CE back to the sender (in ACKs)

	// CnpFlow: for Cnp packets, which flow to throttle (RoCE).
	// PFC fields: PausePrio/PauseOn for Pause/Resume.
	PausePrio int

	// Echoed timestamp for RTT sampling: receiver copies SentAt of the
	// packet that triggered this ACK.
	SentAt  sim.Time
	EchoTS  sim.Time
	IsRetx  bool // retransmission (diagnostics)
	LastPkt bool // RoCE: last packet of the message

	// EnqIngress records the switch ingress port while buffered, for
	// per-ingress PFC accounting. Internal to fabric.
	EnqIngress int

	// INT telemetry (HPCC). Appended per hop on Data, echoed on Ack.
	// The hot path stores hops in the fixed inline array (no heap
	// traffic); paths deeper than MaxINTHops spill to intOv (and intN,
	// declared near the top of the struct, becomes intSpilled). Access
	// goes through AppendINT/INTHops/CopyINTFrom so the representation
	// stays private. The bulky hop array sits last so the
	// frequently-read header fields stay within the struct's first two
	// cache lines.
	intOv   []INTHop
	intHops [MaxINTHops]INTHop
}

// intSpilled in intN marks a packet whose INT stack overflowed the
// inline array; the authoritative hop list is then intOv.
const intSpilled = MaxINTHops + 1

// AppendINT records one telemetry hop, reporting whether the packet had
// to spill to the heap-allocated overflow slice (path deeper than
// MaxINTHops).
func (p *Packet) AppendINT(h INTHop) (spilled bool) {
	if p.intN < MaxINTHops {
		p.intHops[p.intN] = h
		p.intN++
		return false
	}
	if p.intN == MaxINTHops {
		p.intOv = append(make([]INTHop, 0, 2*MaxINTHops), p.intHops[:]...)
		p.intN = intSpilled
	}
	p.intOv = append(p.intOv, h)
	return true
}

// NumINT returns the number of telemetry hops carried.
func (p *Packet) NumINT() int {
	if p.intN <= MaxINTHops {
		return int(p.intN)
	}
	return len(p.intOv)
}

// INTHops returns the telemetry hops in path order. The returned slice
// aliases packet-internal storage: handlers copy what they keep, exactly
// as with the packet itself.
func (p *Packet) INTHops() []INTHop {
	if p.intN <= MaxINTHops {
		return p.intHops[:p.intN]
	}
	return p.intOv
}

// CopyINTFrom copies src's telemetry into p (an ACK echoing the data
// packet's INT stack). Inline hops copy by value — only the occupied
// slots, so an INT-free echo costs nothing; only a spilled source forces
// a fresh overflow allocation. Either way the echo path stays safe under
// packet recycling without sharing backing arrays.
func (p *Packet) CopyINTFrom(src *Packet) {
	if src.intN > MaxINTHops {
		p.intOv = append(p.intOv[:0], src.intOv...)
		p.intN = intSpilled
		return
	}
	for i := 0; i < int(src.intN); i++ {
		p.intHops[i] = src.intHops[i]
	}
	p.intN = src.intN
	p.intOv = nil
}

// WireSize returns the packet's size on the wire in bytes.
func (p *Packet) WireSize() int {
	n := p.Len + HeaderBytes
	// INT metadata occupies real header space (HPCC: ~8B per hop).
	n += 8 * p.NumINT()
	return n
}

// IsControl reports whether the packet is a pure control packet (no
// payload): ACK/NACK/CNP/PFC. TLT always marks these important.
func (p *Packet) IsControl() bool {
	return p.Type != Data
}

// Important reports whether the packet travels as green (protected).
func (p *Packet) Important() bool { return p.Mark.Color() == Green }
