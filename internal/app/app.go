// Package app provides a message layer over persistent transport
// connections, emulating the paper's application benchmarks (§7.3): an
// HTTP client, web servers, and a Redis-like in-memory cache exchanging
// requests and 32 kB SET operations over pre-established connections.
package app

import (
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// dirState tracks message boundaries for one direction of a channel.
type dirState struct {
	sender    *tcp.Sender
	boundary  []int64  // absolute stream offsets ending each message
	callbacks []func() // fired when the matching boundary is delivered
	fired     int      // messages delivered
	written   int64    // bytes written so far
}

// Channel is a bidirectional persistent connection between two hosts,
// built from two unidirectional transport flows. Messages are length-
// delimited spans of the byte stream; the receiver-side callback fires
// when a full message has been delivered in order.
type Channel struct {
	s  *sim.Sim
	ab *dirState // hostA -> hostB
	ba *dirState // hostB -> hostA
}

// NewChannel establishes a channel between a and b using two flows with
// IDs id and id+1. Flow records are created on rec (they never complete —
// persistent connections carry many messages; application latency is
// measured by the caller via callbacks).
func NewChannel(s *sim.Sim, a, b *fabric.Host, id packet.FlowID, cfg tcp.Config, recorder *stats.Recorder) *Channel {
	mk := func(src, dst *fabric.Host, fid packet.FlowID) (*dirState, *tcp.Receiver) {
		flow := &transport.Flow{ID: fid, Src: src.ID(), Dst: dst.ID(), Size: 0}
		rec := recorder.NewFlowRecord(flow)
		conn := tcp.NewConn(s, src, dst, flow, cfg, rec, recorder)
		return &dirState{sender: conn.Sender}, conn.Receiver
	}
	ch := &Channel{s: s}
	var rcvAB, rcvBA *tcp.Receiver
	ch.ab, rcvAB = mk(a, b, id)
	ch.ba, rcvBA = mk(b, a, id+1)
	rcvAB.OnDeliver = func(total int64) { ch.ab.deliver(total) }
	rcvBA.OnDeliver = func(total int64) { ch.ba.deliver(total) }
	return ch
}

func (d *dirState) deliver(total int64) {
	for d.fired < len(d.boundary) && total >= d.boundary[d.fired] {
		cb := d.callbacks[d.fired]
		d.fired++
		if cb != nil {
			cb()
		}
	}
}

func (d *dirState) send(n int64, onDelivered func()) {
	d.written += n
	d.boundary = append(d.boundary, d.written)
	d.callbacks = append(d.callbacks, onDelivered)
	d.sender.Write(n)
}

// SendAB writes an n-byte message from host A to host B; onDelivered
// fires when B has the complete message.
func (ch *Channel) SendAB(n int64, onDelivered func()) { ch.ab.send(n, onDelivered) }

// SendBA writes an n-byte message from host B to host A.
func (ch *Channel) SendBA(n int64, onDelivered func()) { ch.ba.send(n, onDelivered) }
