package app

import (
	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/transport"
	"tlt/internal/transport/tcp"
)

// Message sizes modeled after the paper's Redis benchmark: an HTTP
// request fans out to a web server, which issues a 32 kB SET to the
// cache node and returns a small response.
const (
	HTTPRequestBytes  = 200
	HTTPResponseBytes = 300
	SetBytes          = 32 * 1024
	SetReplyBytes     = 100
)

// setReq is one pending SET request: scheduled through kindStartSet so
// a burst of thousands of requests costs one small struct each instead
// of a deep closure per request.
type setReq struct {
	c        *CacheCluster
	clientCh *Channel // nil for mixed-mode requests (no HTTP leg)
	redisCh  *Channel
	rts      []sim.Time
	idx      int
	start    sim.Time
}

var kindStartSet sim.EventKind

func init() {
	kindStartSet = sim.NewKind(func(_, arg any) { arg.(*setReq).run() })
}

func (rq *setReq) run() {
	rq.start = rq.c.s.Now()
	if rq.clientCh != nil {
		rq.clientCh.SendAB(HTTPRequestBytes, func() {
			rq.redisCh.SendAB(SetBytes, func() {
				rq.redisCh.SendBA(SetReplyBytes, func() {
					rq.clientCh.SendBA(HTTPResponseBytes, func() {
						rq.rts[rq.idx] = rq.c.s.Now() - rq.start
					})
				})
			})
		})
		return
	}
	rq.redisCh.SendAB(SetBytes, func() {
		rq.redisCh.SendBA(SetReplyBytes, func() {
			rq.rts[rq.idx] = rq.c.s.Now() - rq.start
		})
	})
}

// CacheCluster wires the paper's 10-node testbed roles onto hosts:
// hosts[0] is the HTTP client, hosts[1..n-2] are web servers, and the
// last host is the Redis node.
type CacheCluster struct {
	s        *sim.Sim
	Client   *fabric.Host
	Servers  []*fabric.Host
	Redis    *fabric.Host
	cfg      tcp.Config
	recorder *stats.Recorder
	nextID   packet.FlowID
}

// NewCacheCluster builds the role assignment.
func NewCacheCluster(s *sim.Sim, hosts []*fabric.Host, cfg tcp.Config, recorder *stats.Recorder, firstID packet.FlowID) *CacheCluster {
	return &CacheCluster{
		s:        s,
		Client:   hosts[0],
		Servers:  hosts[1 : len(hosts)-1],
		Redis:    hosts[len(hosts)-1],
		cfg:      cfg,
		recorder: recorder,
		nextID:   firstID,
	}
}

func (c *CacheCluster) newID() packet.FlowID {
	id := c.nextID
	c.nextID += 2
	return id
}

// RunSetBurst issues numRequests simultaneous HTTP requests spread
// evenly over the web servers; each request triggers a 32 kB SET to the
// Redis node over its own persistent connection (the incast the paper's
// Fig. 12 measures). It returns a slice that will hold the client-
// perceived response time of each request once the simulation runs.
func (c *CacheCluster) RunSetBurst(numRequests int, at sim.Time) []sim.Time {
	rts := make([]sim.Time, numRequests)
	for r := 0; r < numRequests; r++ {
		ws := c.Servers[r%len(c.Servers)]
		rq := &setReq{
			c:        c,
			clientCh: NewChannel(c.s, c.Client, ws, c.newID(), c.cfg, c.recorder),
			redisCh:  NewChannel(c.s, ws, c.Redis, c.newID(), c.cfg, c.recorder),
			rts:      rts,
			idx:      r,
		}
		c.s.PostKind(at, kindStartSet, 0, rq)
	}
	return rts
}

// MixedResult reports the paper's Fig. 13 metrics.
type MixedResult struct {
	FgRTs      []sim.Time // per-SET completion times
	BgGoodput  float64    // bytes/sec of the background flow
	BgFCT      sim.Time
	BgComplete bool
}

// RunMixed runs the §7.3 mixed-traffic experiment: one large background
// flow to the Redis node competing with fgFlows 32 kB SETs from the web
// servers. bgSrc should be a host that is not a web server.
func (c *CacheCluster) RunMixed(fgFlows int, bgSrc *fabric.Host, bgBytes int64, at sim.Time) *MixedResult {
	res := &MixedResult{FgRTs: make([]sim.Time, fgFlows)}

	bgFlow := &transport.Flow{
		ID: c.newID(), Src: bgSrc.ID(), Dst: c.Redis.ID(),
		Size: bgBytes, Start: at,
	}
	tcp.StartFlow(c.s, bgSrc, c.Redis, bgFlow, c.cfg, c.recorder, func(fr *stats.FlowRecord) {
		res.BgComplete = true
		res.BgFCT = fr.FCT()
		if fr.FCT() > 0 {
			res.BgGoodput = float64(bgBytes) / fr.FCT().Seconds()
		}
	})

	// Foreground SETs start shortly after the background flow is at
	// full rate.
	fgStart := at + 2*sim.Millisecond
	for r := 0; r < fgFlows; r++ {
		ws := c.Servers[r%len(c.Servers)]
		rq := &setReq{
			c:       c,
			redisCh: NewChannel(c.s, ws, c.Redis, c.newID(), c.cfg, c.recorder),
			rts:     res.FgRTs,
			idx:     r,
		}
		c.s.PostKind(fgStart, kindStartSet, 0, rq)
	}
	return res
}
