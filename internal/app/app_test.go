package app

import (
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/sim"
	"tlt/internal/stats"
	"tlt/internal/topo"
	"tlt/internal/transport/tcp"
)

func appStar(hosts int) (*sim.Sim, *topo.Network) {
	s := sim.New()
	n := topo.Star(s, topo.StarConfig{
		Hosts:       hosts,
		LinkRateBps: 40e9,
		LinkDelay:   2 * sim.Microsecond,
		Switch:      fabric.SwitchConfig{BufferBytes: 4 << 20, ECN: fabric.ECNStep, KEcn: 200_000},
	})
	return s, n
}

func TestChannelMessageBoundaries(t *testing.T) {
	s, n := appStar(2)
	rec := stats.NewRecorder()
	ch := NewChannel(s, n.Hosts[0], n.Hosts[1], 1, tcp.DCTCPConfig(), rec)
	var order []string
	ch.SendAB(1000, func() { order = append(order, "m1") })
	ch.SendAB(32*1024, func() { order = append(order, "m2") })
	ch.SendBA(500, func() { order = append(order, "r1") })
	s.RunAll()
	if len(order) != 3 {
		t.Fatalf("delivered %d messages: %v", len(order), order)
	}
	// The two directions are independent; within A->B, m1 precedes m2.
	pos := map[string]int{}
	for i, m := range order {
		pos[m] = i
	}
	if pos["m1"] > pos["m2"] {
		t.Fatalf("A->B messages out of order: %v", order)
	}
}

func TestChannelPipelinedRequests(t *testing.T) {
	// Messages queued back-to-back must each fire exactly once, in order.
	s, n := appStar(2)
	rec := stats.NewRecorder()
	ch := NewChannel(s, n.Hosts[0], n.Hosts[1], 1, tcp.DCTCPConfig(), rec)
	got := 0
	for i := 0; i < 20; i++ {
		i := i
		ch.SendAB(10_000, func() {
			if i != got {
				t.Errorf("message %d fired at position %d", i, got)
			}
			got++
		})
	}
	s.RunAll()
	if got != 20 {
		t.Fatalf("delivered %d messages", got)
	}
}

func TestRequestResponseChain(t *testing.T) {
	// The full client -> web server -> cache -> back chain of Fig. 12.
	s, n := appStar(4)
	rec := stats.NewRecorder()
	cl := NewCacheCluster(s, n.Hosts, tcp.DCTCPConfig(), rec, 1)
	rts := cl.RunSetBurst(4, 0)
	s.RunAll()
	for i, rt := range rts {
		if rt <= 0 {
			t.Fatalf("request %d never completed", i)
		}
		// One 32kB transfer at 40Gbps is ~7us; with the request hops
		// anything beyond a millisecond would indicate a stall.
		if rt > sim.Millisecond {
			t.Fatalf("request %d took %v", i, rt)
		}
	}
}

func TestSetBurstIncastCompletes(t *testing.T) {
	s, n := appStar(10)
	rec := stats.NewRecorder()
	cl := NewCacheCluster(s, n.Hosts, tcp.DCTCPConfig(), rec, 1)
	rts := cl.RunSetBurst(80, 0)
	s.Run(10 * sim.Second)
	done := 0
	for _, rt := range rts {
		if rt > 0 {
			done++
		}
	}
	if done != 80 {
		t.Fatalf("completed %d/80 requests", done)
	}
}

func TestRunMixed(t *testing.T) {
	s, n := appStar(10)
	rec := stats.NewRecorder()
	cl := NewCacheCluster(s, n.Hosts, tcp.DCTCPConfig(), rec, 1)
	res := cl.RunMixed(40, n.Hosts[0], 8_000_000, 0)
	s.Run(10 * sim.Second)
	if !res.BgComplete {
		t.Fatal("background flow incomplete")
	}
	if res.BgGoodput <= 0 {
		t.Fatal("no goodput recorded")
	}
	// 8MB at 40Gbps lower-bounds the FCT at 1.6ms.
	if res.BgFCT < 1600*sim.Microsecond {
		t.Fatalf("bg FCT %v implausibly fast", res.BgFCT)
	}
	for i, rt := range res.FgRTs {
		if rt <= 0 {
			t.Fatalf("fg SET %d incomplete", i)
		}
	}
}
