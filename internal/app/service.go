package app

import (
	"tlt/internal/sim"
	"tlt/internal/workload"
)

// ServiceConfig parametrizes the scale experiments' service mode: an
// open-loop population of clients issuing RPCs against a replicated
// server pool with Zipf-skewed key popularity. Each request fans in
// Fanout response flows (one per key touched) from servers to the
// requesting client — the churn- and incast-heavy shape the paper's
// closed-loop CDF workloads never exercise.
type ServiceConfig struct {
	Hosts    int     // total fabric hosts; servers first, clients after
	Servers  int     // replicated server pool size (hosts 0..Servers-1)
	Keys     int     // distinct keys
	Replicas int     // copies of each key, spread over servers
	Skew     float64 // Zipf exponent of key popularity (1.1 typical)

	Requests int      // open-loop request arrivals
	MeanGap  sim.Time // mean request inter-arrival (Poisson)
	Fanout   int      // keys touched (= response flows) per request
	Dist     *workload.SizeDist
	Seed     int64
}

// Service precomputes the key→replica placement and popularity model.
// Stream() then yields the deterministic open-loop arrival schedule;
// every shard builds an identical Service and walks the same stream.
type Service struct {
	cfg  ServiceConfig
	zipf *workload.Zipf
	// replica[key*Replicas+r] is the server holding copy r of key.
	replica []int
	// share[s] is the fraction of response traffic served by server s,
	// implied by key popularity and uniform replica choice.
	share []float64
}

// NewService builds the placement. Keys are placed by deterministic
// hashing (key copy r on server (key*Replicas+r*stride) mod Servers),
// so construction needs no RNG and is identical on every shard.
func NewService(cfg ServiceConfig) *Service {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Servers {
		cfg.Replicas = cfg.Servers
	}
	sv := &Service{
		cfg:     cfg,
		zipf:    workload.NewZipf(cfg.Keys, cfg.Skew),
		replica: make([]int, cfg.Keys*cfg.Replicas),
		share:   make([]float64, cfg.Servers),
	}
	// stride spreads a key's replicas across the pool instead of
	// clustering them on adjacent servers.
	stride := cfg.Servers/cfg.Replicas + 1
	for k := 0; k < cfg.Keys; k++ {
		for r := 0; r < cfg.Replicas; r++ {
			s := (k + r*stride) % cfg.Servers
			sv.replica[k*cfg.Replicas+r] = s
			sv.share[s] += sv.zipf.P(k) / float64(cfg.Replicas)
		}
	}
	return sv
}

// MaxServerShare returns the hottest server's fraction of response
// traffic. The scale sweep calibrates its arrival rate so that this
// server — not the fabric average — runs at the target load.
func (sv *Service) MaxServerShare() float64 {
	var m float64
	for _, s := range sv.share {
		if s > m {
			m = s
		}
	}
	return m
}

// stream walks the open-loop request schedule: each request picks a
// client uniformly, Fanout keys by popularity, one replica per key
// uniformly, and a response size per flow from Dist.
type stream struct {
	sv   *Service
	rng  *sim.RNG
	now  sim.Time
	left int // requests remaining
	// pending fan-in flows of the current request, emitted one per Next.
	pending []workload.Arrival
	npend   int
}

// Stream returns a fresh iterator over the service's arrival schedule.
// All Fanout flows of one request share an arrival instant.
func (sv *Service) Stream() workload.Source {
	return &stream{
		sv:      sv,
		rng:     sim.NewRNG(sv.cfg.Seed),
		left:    sv.cfg.Requests,
		pending: make([]workload.Arrival, sv.cfg.Fanout),
	}
}

func (st *stream) Next() (workload.Arrival, bool) {
	if st.npend > 0 {
		st.npend--
		return st.pending[len(st.pending)-1-st.npend], true
	}
	if st.left <= 0 {
		return workload.Arrival{}, false
	}
	st.left--
	cfg := st.sv.cfg
	st.now += st.rng.ExpDuration(cfg.MeanGap)
	client := cfg.Servers + st.rng.Intn(cfg.Hosts-cfg.Servers)
	for i := 0; i < cfg.Fanout; i++ {
		key := st.sv.zipf.Sample(st.rng)
		server := st.sv.replica[key*cfg.Replicas+st.rng.Intn(cfg.Replicas)]
		st.pending[i] = workload.Arrival{
			At:   st.now,
			Src:  server,
			Dst:  client,
			Size: cfg.Dist.Sample(st.rng),
			FG:   true,
		}
	}
	st.npend = cfg.Fanout - 1
	return st.pending[0], true
}
