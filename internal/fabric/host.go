package fabric

import (
	"fmt"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// PacketHandler consumes packets delivered to a host for one flow.
type PacketHandler interface {
	Handle(pkt *packet.Packet)
}

// Host is an end host with a single NIC port. Transport endpoints
// register per-flow handlers; outbound packets share one FIFO NIC queue
// that honors PFC pause from the ToR.
type Host struct {
	id  packet.NodeID
	sim *sim.Sim

	tx    *Tx
	queue []*packet.Packet
	pop   int

	handlers map[packet.FlowID]PacketHandler

	// pool, when set, supplies outbound packets and recycles inbound
	// ones after dispatch. Shared by every host of one network (the sim
	// is single-threaded, so no locking is needed).
	pool *packet.Pool

	// Trace, when set, observes every packet the host sends ("tx") and
	// receives ("rx"). Used by the trace package; nil in normal runs.
	Trace func(now sim.Time, dir string, pkt *packet.Packet)
}

// NewHost constructs a host.
func NewHost(s *sim.Sim, id packet.NodeID) *Host {
	return &Host{id: id, sim: s, handlers: make(map[packet.FlowID]PacketHandler)}
}

// ID returns the host's node ID.
func (h *Host) ID() packet.NodeID { return h.id }

// NICTx returns the host's transmitter (for pause accounting in tests).
func (h *Host) NICTx() *Tx { return h.tx }

// SetPool installs the packet free-list this host allocates from.
func (h *Host) SetPool(p *packet.Pool) { h.pool = p }

// NewPacket returns a zeroed packet for the transport to fill and Send.
// Pooled when a free-list is installed, heap-allocated otherwise.
func (h *Host) NewPacket() *packet.Packet {
	if h.pool != nil {
		return h.pool.Get()
	}
	return &packet.Packet{}
}

// QueuedPackets returns the NIC backlog length.
func (h *Host) QueuedPackets() int { return len(h.queue) - h.pop }

// Register installs the handler for a flow's packets arriving at this host.
func (h *Host) Register(flow packet.FlowID, ep PacketHandler) {
	h.handlers[flow] = ep
}

// Unregister removes a flow's handler.
func (h *Host) Unregister(flow packet.FlowID) {
	delete(h.handlers, flow)
}

// Send stamps the source and queues the packet on the NIC.
func (h *Host) Send(pkt *packet.Packet) {
	pkt.Src = h.id
	if h.Trace != nil {
		h.Trace(h.sim.Now(), "tx", pkt)
	}
	h.queue = append(h.queue, pkt)
	h.tx.Kick()
}

func (h *Host) attach(port int, tx *Tx) {
	if port != 0 {
		panic(fmt.Sprintf("host %d: only port 0 exists, got %d", h.id, port))
	}
	h.tx = tx
	tx.dequeue = h.dequeue
}

func (h *Host) dequeue() *packet.Packet {
	if h.pop >= len(h.queue) {
		h.queue = h.queue[:0]
		h.pop = 0
		return nil
	}
	pkt := h.queue[h.pop]
	h.queue[h.pop] = nil
	h.pop++
	if h.pop == len(h.queue) {
		h.queue = h.queue[:0]
		h.pop = 0
	} else if h.pop > 1024 && h.pop*2 > len(h.queue) {
		n := copy(h.queue, h.queue[h.pop:])
		h.queue = h.queue[:n]
		h.pop = 0
	}
	return pkt
}

// Receive implements Device: demultiplex to the flow's endpoint, or react
// to PFC control frames.
func (h *Host) Receive(pkt *packet.Packet, inPort int) {
	switch pkt.Type {
	case packet.Pause:
		h.tx.Pause()
		return
	case packet.Resume:
		h.tx.Resume()
		return
	}
	if h.Trace != nil {
		h.Trace(h.sim.Now(), "rx", pkt)
	}
	if ep, ok := h.handlers[pkt.Flow]; ok {
		ep.Handle(pkt)
	}
	// Packets for unknown flows (e.g. stragglers after a flow finished)
	// are dropped silently, as a real stack would RST/ignore.
	//
	// Either way the packet's life ends here: handlers copy what they
	// keep (no transport retains the pointer past Handle), so it can go
	// back on the free-list. Packets dropped mid-fabric simply fall to
	// the GC.
	if h.pool != nil {
		h.pool.Put(pkt)
	}
}
