package fabric

import (
	"fmt"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// PacketHandler consumes packets delivered to a host for one flow.
type PacketHandler interface {
	Handle(pkt *packet.Packet)
}

// maxDenseFlow bounds the dense dispatch table: flow IDs below it index
// a per-host slot table directly; anything above falls back to the map.
// The workload generator allocates IDs sequentially from 1, so every
// normal run stays dense; the cap only guards pathological IDs from
// hand-built tests.
const maxDenseFlow = 1 << 22

// Host is an end host with a single NIC port. Transport endpoints
// register per-flow handlers; outbound packets share one FIFO NIC queue
// that honors PFC pause from the ToR.
type Host struct {
	id  packet.NodeID
	sim *sim.Sim

	tx    *Tx
	queue []*packet.Packet
	sizes []int // wire size of queue[i], recorded while the packet is cache-warm
	pop   int

	// Dense dispatch: flow IDs get a compact per-run slot index at
	// registration, so demux on the per-packet path is two slice
	// indexes. idx maps FlowID → slot+1 (0 = unregistered); slots holds
	// the handlers. handlers is the slow path for IDs past maxDenseFlow
	// and stays nil until one appears.
	idx       []int32
	slots     []PacketHandler
	freeSlots []int32
	handlers  map[packet.FlowID]PacketHandler

	// pool, when set, supplies outbound packets and recycles inbound
	// ones after dispatch. Shared by every host of one network (the sim
	// is single-threaded, so no locking is needed).
	pool *packet.Pool

	// Trace, when set, observes every packet the host sends ("tx") and
	// receives ("rx"). Used by the trace package; it MUST stay nil when
	// tracing is disabled so the hot path pays only a nil check.
	Trace func(now sim.Time, dir string, pkt *packet.Packet)
}

// NewHost constructs a host.
func NewHost(s *sim.Sim, id packet.NodeID) *Host {
	return &Host{id: id, sim: s}
}

// ID returns the host's node ID.
func (h *Host) ID() packet.NodeID { return h.id }

// Sim returns the scheduler this host's events run on — in a sharded
// network, its shard's. Transports derive every timer from it so flow
// state machines land on the shard owning their endpoint.
func (h *Host) Sim() *sim.Sim { return h.sim }

// NICTx returns the host's transmitter (for pause accounting in tests).
func (h *Host) NICTx() *Tx { return h.tx }

// SetPool installs the packet free-list this host allocates from.
func (h *Host) SetPool(p *packet.Pool) { h.pool = p }

// NewPacket returns a zeroed packet for the transport to fill and Send.
// Pooled when a free-list is installed, heap-allocated otherwise.
func (h *Host) NewPacket() *packet.Packet {
	if h.pool != nil {
		return h.pool.Get()
	}
	return &packet.Packet{}
}

// QueuedPackets returns the NIC backlog length.
func (h *Host) QueuedPackets() int { return len(h.queue) - h.pop }

// Register installs the handler for a flow's packets arriving at this host.
func (h *Host) Register(flow packet.FlowID, ep PacketHandler) {
	if flow < maxDenseFlow {
		for int(flow) >= len(h.idx) {
			h.idx = append(h.idx, 0)
		}
		if s := h.idx[flow]; s != 0 {
			h.slots[s-1] = ep
			return
		}
		if n := len(h.freeSlots); n > 0 {
			// Reuse a slot retired by Unregister so churn-heavy
			// runs keep the table O(live flows), not O(ever seen).
			s := h.freeSlots[n-1]
			h.freeSlots = h.freeSlots[:n-1]
			h.slots[s-1] = ep
			h.idx[flow] = s
			return
		}
		h.slots = append(h.slots, ep)
		h.idx[flow] = int32(len(h.slots))
		return
	}
	if h.handlers == nil {
		h.handlers = make(map[packet.FlowID]PacketHandler)
	}
	h.handlers[flow] = ep
}

// Unregister removes a flow's handler. The slot index is retired, so
// straggler packets for the flow (e.g. after it finished) fall through
// to the drop path.
func (h *Host) Unregister(flow packet.FlowID) {
	if flow < maxDenseFlow {
		if int(flow) < len(h.idx) {
			if s := h.idx[flow]; s != 0 {
				h.slots[s-1] = nil // release the handler reference
				h.idx[flow] = 0
				h.freeSlots = append(h.freeSlots, s)
			}
		}
		return
	}
	delete(h.handlers, flow)
}

// handlerFor demuxes a flow ID: dense slot table first, map slow path
// for out-of-range IDs.
func (h *Host) handlerFor(flow packet.FlowID) PacketHandler {
	if uint64(flow) < uint64(len(h.idx)) {
		if s := h.idx[flow]; s != 0 {
			return h.slots[s-1]
		}
		return nil
	}
	if h.handlers != nil {
		return h.handlers[flow]
	}
	return nil
}

// Send stamps the source and queues the packet on the NIC.
func (h *Host) Send(pkt *packet.Packet) {
	pkt.Src = h.id
	if h.Trace != nil {
		h.Trace(h.sim.Now(), "tx", pkt)
	}
	h.queue = append(h.queue, pkt)
	// WireSize is computed here, right after the transport filled the
	// packet, and carried alongside: at dequeue time the struct would be
	// cache-cold. Switches never add INT while the packet sits in the
	// NIC queue, so the size cannot go stale.
	h.sizes = append(h.sizes, pkt.WireSize())
	h.tx.Kick()
}

func (h *Host) attach(port int, tx *Tx) {
	if port != 0 {
		panic(fmt.Sprintf("host %d: only port 0 exists, got %d", h.id, port))
	}
	h.tx = tx
	tx.dequeue = h.dequeue
}

func (h *Host) dequeue() (*packet.Packet, int) {
	if h.pop >= len(h.queue) {
		h.queue = h.queue[:0]
		h.sizes = h.sizes[:0]
		h.pop = 0
		return nil, 0
	}
	pkt := h.queue[h.pop]
	size := h.sizes[h.pop]
	h.queue[h.pop] = nil
	h.pop++
	if h.pop == len(h.queue) {
		h.queue = h.queue[:0]
		h.sizes = h.sizes[:0]
		h.pop = 0
	} else if h.pop > 1024 && h.pop*2 > len(h.queue) {
		n := copy(h.queue, h.queue[h.pop:])
		h.queue = h.queue[:n]
		copy(h.sizes, h.sizes[h.pop:])
		h.sizes = h.sizes[:n]
		h.pop = 0
	}
	return pkt, size
}

// recycle returns a fully-consumed packet to the free list.
func (h *Host) recycle(pkt *packet.Packet) {
	if h.pool != nil {
		h.pool.Put(pkt)
	}
}

// Receive implements Device: demultiplex to the flow's endpoint, or react
// to PFC control frames.
func (h *Host) Receive(pkt *packet.Packet, inPort int) {
	switch pkt.Type {
	case packet.Pause:
		h.tx.Pause()
		h.recycle(pkt)
		return
	case packet.Resume:
		h.tx.Resume()
		h.recycle(pkt)
		return
	}
	if h.Trace != nil {
		h.Trace(h.sim.Now(), "rx", pkt)
	}
	if ep := h.handlerFor(pkt.Flow); ep != nil {
		ep.Handle(pkt)
	}
	// Packets for unknown flows (e.g. stragglers after a flow finished)
	// are dropped silently, as a real stack would RST/ignore.
	//
	// Either way the packet's life ends here: handlers copy what they
	// keep (no transport retains the pointer past Handle), so it can go
	// back on the free-list.
	h.recycle(pkt)
}
