package fabric

import (
	"fmt"
	"sort"
	"strings"

	"tlt/internal/packet"
)

// This file is the pluggable MMU boundary: the admission/drop decision
// (BufferPolicy) and the pause/resume/credit signaling (FlowControl)
// are strategy interfaces, with the paper's model — Choudhury–Hahne
// dynamic thresholds + TLT color-aware dropping, and PFC — as the
// built-in defaults. Competitor policies (BShare, the tiny-buffer
// regime, per-hop Backpressure Flow Control) live in
// internal/fabric/mmu and register themselves by name.
//
// Hot-path design: the switch calls the interfaces through pre-bound
// fields (sw.policy, sw.fc) with scalar arguments only, so the default
// per-packet path stays allocation-free — interface dispatch on a
// stored value boxes nothing, and every argument is an int, int64 or
// bool. BenchmarkSwitchForward gates this at 0 allocs/op in CI
// *through* the interface (the default policy is not special-cased out
// of the dispatch).

// BufferPolicy decides admission for the shared-buffer MMU. One policy
// instance serves one switch (policies may keep per-switch state); Bind
// is called exactly once, from NewSwitch, before any traffic.
//
// Admit and CheckDrop receive the decision-time state the switch
// derived for the arriving packet: qBytes is the target class queue's
// depth, free the remaining effective capacity (Capacity() − occupied),
// size the packet's wire size, green whether the packet is marked
// important, and (egress, tc) the target queue. Per-port and shared-
// pool state beyond that is available through the bound switch
// (QueueBytes, BufferUsed, Tx).
type BufferPolicy interface {
	// Name returns the policy's registered name (reports, BenchRecord).
	Name() string
	// Bind attaches the policy to the switch it governs.
	Bind(sw *Switch)
	// Capacity returns the effective shared-buffer admission capacity in
	// bytes (after any chaos shrink).
	Capacity() int64
	// Shrink caps the effective capacity to frac of the policy's
	// configured capacity — the chaos engine's MMU-reconfiguration
	// fault. frac outside (0, 1) restores the full capacity. The shrink
	// window is owned by the fault schedule, so Reset (switch reboot)
	// must NOT undo it; the schedule's restore event does.
	Shrink(frac float64)
	// Admit decides whether to admit the packet. ok=true admits; ok=false
	// drops with the returned reason (the switch maps reasons to
	// counters and recycles the packet).
	Admit(egress, tc int, qBytes, free, size int64, green bool) (reason DropReason, ok bool)
	// CheckDrop re-evaluates a recorded admission drop against the
	// policy's own view of the decision-time state, returning "" when
	// the drop was justified and a violation description otherwise. The
	// runtime auditor (internal/audit) calls this so its shadow
	// accounting validates against the installed policy rather than a
	// hardcoded Choudhury–Hahne model.
	CheckDrop(reason DropReason, tc int, qBytes, free, size int64, green bool) string
	// Reset clears per-run policy state when the switch reboots with a
	// factory-fresh MMU. It must not undo a chaos Shrink (see Shrink).
	Reset()
}

// FlowControl is the pause/resume/credit signaling strategy. OnEnqueue
// and OnDequeue observe every admitted packet (inPort is the packet's
// arrival port; for OnDequeue, the port it originally arrived on), and
// implementations emit PAUSE/RESUME frames upstream via the switch's
// EmitPause/EmitResume helpers. The PFC watchdog stays in the switch:
// it reacts to *received* pause frames, which every pause-based policy
// shares, and is inert when the local policy never emits any.
type FlowControl interface {
	// Name returns the policy's registered name.
	Name() string
	// Bind attaches the policy to the switch it governs.
	Bind(sw *Switch)
	// Lossless reports whether admission must not drop for threshold
	// reasons (flow control takes over congestion backpressure). The
	// default buffer policy disables its dynamic threshold when the
	// bound flow control is lossless, exactly as the hardcoded model
	// disabled it under PFC.
	Lossless() bool
	// OnEnqueue observes a packet admitted from inPort to (egress, tc).
	OnEnqueue(inPort, egress, tc int, size int64)
	// OnDequeue releases accounting for a departed packet that had
	// arrived on inPort. The watchdog's drop-and-unpause flush credits
	// through here too, one call per flushed packet.
	OnDequeue(inPort, egress, tc int, size int64)
	// Reset clears per-run state at switch reboot. Upstream peers the
	// policy had paused are NOT resumed — that state died with the
	// switch; their own pause timeout or watchdog must release them.
	Reset()
}

// Factories build one policy instance per switch from its config.
type (
	BufferPolicyFactory func(cfg SwitchConfig) BufferPolicy
	FlowControlFactory  func(cfg SwitchConfig) FlowControl
)

var (
	bufferPolicies = map[string]BufferPolicyFactory{}
	flowControls   = map[string]FlowControlFactory{}
)

// RegisterBufferPolicy makes a buffer policy selectable by
// SwitchConfig.MMU. Call from init(); not safe during runs.
func RegisterBufferPolicy(name string, f BufferPolicyFactory) {
	if _, dup := bufferPolicies[name]; dup {
		panic("fabric: duplicate buffer policy " + name)
	}
	bufferPolicies[name] = f
}

// RegisterFlowControl makes a flow-control policy selectable by
// SwitchConfig.FC. Call from init(); not safe during runs.
func RegisterFlowControl(name string, f FlowControlFactory) {
	if _, dup := flowControls[name]; dup {
		panic("fabric: duplicate flow control " + name)
	}
	flowControls[name] = f
}

func registered[T any](m map[string]T) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// newBufferPolicy resolves cfg.MMU ("" and "ch" are the built-in
// Choudhury–Hahne + color-threshold default).
func newBufferPolicy(cfg SwitchConfig) BufferPolicy {
	switch cfg.MMU {
	case "", "ch":
		return NewCHPolicy("ch", cfg, cfg.BufferBytes)
	}
	f, ok := bufferPolicies[cfg.MMU]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown buffer policy %q (registered: ch, %s)",
			cfg.MMU, registered(bufferPolicies)))
	}
	return f(cfg)
}

// newFlowControl resolves cfg.FC. The empty name keeps the legacy
// meaning of the PFC flag: PFC when cfg.PFC is set, nothing otherwise.
// "none" disables flow control even when cfg.PFC is set.
func newFlowControl(cfg SwitchConfig) FlowControl {
	switch cfg.FC {
	case "":
		if !cfg.PFC {
			return nil
		}
		return newPFCControl(cfg)
	case "none":
		return nil
	case "pfc":
		return newPFCControl(cfg)
	}
	f, ok := flowControls[cfg.FC]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown flow control %q (registered: pfc, none, %s)",
			cfg.FC, registered(flowControls)))
	}
	return f(cfg)
}

// chPolicy is the built-in buffer policy: Choudhury–Hahne dynamic
// thresholds plus TLT color-aware dropping, extracted verbatim from the
// pre-refactor switch admission path. NewCHPolicy exposes it so
// derived regimes (the tiny-buffer policy) can reuse the admission
// logic with a different capacity.
type chPolicy struct {
	name     string
	alpha    float64
	k        int64 // color threshold (0 disables)
	colorAll bool  // color dropping on every class, not just class 0
	lossless bool  // bound flow control is lossless: no dynamic drops

	capacity int64 // configured admission capacity
	eff      int64 // effective capacity (chaos shrink)
}

// NewCHPolicy builds the default Choudhury–Hahne + color-threshold
// policy with an explicit admission capacity (the tiny-buffer regime
// passes a fraction of the physical buffer).
func NewCHPolicy(name string, cfg SwitchConfig, capacity int64) BufferPolicy {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1
	}
	return &chPolicy{
		name:     name,
		alpha:    alpha,
		k:        cfg.ColorThreshold,
		colorAll: cfg.ColorAllClasses,
		capacity: capacity,
		eff:      capacity,
	}
}

func (p *chPolicy) Name() string { return p.name }

func (p *chPolicy) Bind(sw *Switch) { p.lossless = sw.lossless }

func (p *chPolicy) Capacity() int64 { return p.eff }

func (p *chPolicy) Shrink(frac float64) {
	if frac <= 0 || frac >= 1 {
		p.eff = p.capacity
		return
	}
	p.eff = int64(frac * float64(p.capacity))
}

func (p *chPolicy) Admit(egress, tc int, qBytes, free, size int64, green bool) (DropReason, bool) {
	switch {
	case free < size:
		return DropReasonBufferFull, false
	case (tc == 0 || p.colorAll) && p.k > 0 && !green && qBytes >= p.k:
		// Color-aware dropping: the red class may not grow the queue
		// past K. Green packets pass and use the headroom.
		return DropReasonColor, false
	case !p.lossless && float64(qBytes)+float64(size) > p.alpha*float64(free):
		// Dynamic shared-buffer threshold (lossy operation only; a
		// lossless class relies on flow control instead of dropping).
		return DropReasonDynamic, false
	}
	return 0, true
}

func (p *chPolicy) CheckDrop(reason DropReason, tc int, qBytes, free, size int64, green bool) string {
	switch reason {
	case DropReasonBufferFull:
		if free >= size {
			return "buffer-full drop with headroom"
		}
	case DropReasonColor:
		// The paper's protection guarantee: color-aware dropping may
		// only ever discard red (unimportant) packets.
		if green {
			return "green packet dropped by color threshold"
		}
		if tc != 0 && !p.colorAll {
			return "color drop on a class the threshold does not govern"
		}
		if p.k <= 0 || qBytes < p.k {
			return "color drop below threshold K"
		}
	case DropReasonDynamic:
		if p.lossless {
			return "dynamic-threshold drop in lossless (PFC) mode"
		}
		if float64(qBytes)+float64(size) <= p.alpha*float64(free) {
			return "dynamic-threshold drop with headroom"
		}
	case DropReasonPolicy:
		return "policy drop from a policy that never issues them"
	}
	return ""
}

// Reset is a no-op: the default policy keeps no per-run state, and the
// effective capacity belongs to the chaos schedule (see Shrink).
func (p *chPolicy) Reset() {}

// pfcControl is priority flow control, extracted verbatim from the
// pre-refactor switch: per-ingress-port byte accounting with XOFF/XON
// thresholds, pausing the upstream transmitter of any ingress port
// whose buffered bytes exceed XOFF.
type pfcControl struct {
	sw        *Switch
	xoff, xon int64
	ingress   []int64 // bytes buffered that arrived via each port
	sentXOff  []bool
}

func newPFCControl(cfg SwitchConfig) FlowControl {
	xoff, xon := cfg.XOff, cfg.XOn
	if xoff <= 0 {
		// Direct fabric users that select "pfc" without sizing
		// thresholds: static per-ingress XOFF so all ports can hit XOFF
		// with headroom left, XON one MTU-ish step below.
		ports := int64(cfg.Ports)
		if ports < 1 {
			ports = 1
		}
		xoff = cfg.BufferBytes / (2 * ports)
		xon = xoff - xoff/8
	}
	return &pfcControl{xoff: xoff, xon: xon}
}

func (f *pfcControl) Name() string { return "pfc" }

func (f *pfcControl) Bind(sw *Switch) {
	f.sw = sw
	f.ingress = make([]int64, len(sw.ports))
	f.sentXOff = make([]bool, len(sw.ports))
}

func (f *pfcControl) Lossless() bool { return true }

func (f *pfcControl) OnEnqueue(inPort, egress, tc int, size int64) {
	f.ingress[inPort] += size
	if !f.sentXOff[inPort] && f.ingress[inPort] > f.xoff {
		f.sentXOff[inPort] = true
		f.sw.EmitPause(inPort)
	}
}

func (f *pfcControl) OnDequeue(inPort, egress, tc int, size int64) {
	f.ingress[inPort] -= size
	if f.sentXOff[inPort] && f.ingress[inPort] <= f.xon {
		f.sentXOff[inPort] = false
		f.sw.EmitResume(inPort)
	}
}

func (f *pfcControl) Reset() {
	for i := range f.ingress {
		f.ingress[i] = 0
		f.sentXOff[i] = false
	}
}

// EmitPause sends a PAUSE frame to the upstream neighbor on port,
// updating counters and the audit hook. FlowControl implementations
// emit all pause signaling through this and EmitResume so accounting
// and pooling stay uniform across policies.
func (sw *Switch) EmitPause(port int) {
	sw.Ctr.PauseFrames++
	if sw.Audit != nil {
		sw.Audit.OnPFC(sw, port, true)
	}
	pf := sw.newControl()
	pf.Type = packet.Pause
	pf.Src = sw.id
	sw.ports[port].tx.DeliverControl(pf)
}

// EmitResume sends a RESUME frame to the upstream neighbor on port.
func (sw *Switch) EmitResume(port int) {
	sw.Ctr.ResumeFrames++
	if sw.Audit != nil {
		sw.Audit.OnPFC(sw, port, false)
	}
	pf := sw.newControl()
	pf.Type = packet.Resume
	pf.Src = sw.id
	sw.ports[port].tx.DeliverControl(pf)
}
