// Package fabric models the network data plane: point-to-point links,
// shared-buffer switches with color-aware dropping, ECN marking and PFC,
// and host NICs. All behaviour is restricted to what commodity switching
// chips (Broadcom Trident/Tomahawk class) expose, per the paper's
// deployment-friendliness goal.
package fabric

import (
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Device is anything with ports that can receive packets: a Switch or a Host.
type Device interface {
	ID() packet.NodeID
	// Receive is called when a packet has fully arrived on inPort.
	Receive(pkt *packet.Packet, inPort int)
	// attach registers the transmitter serving outbound traffic on port.
	attach(port int, tx *Tx)
}

// SerTime returns the serialization delay of size bytes at rateBps.
func SerTime(size int, rateBps int64) sim.Time {
	// ceil(size*8*1e9 / rateBps) in ns.
	bits := int64(size) * 8
	return sim.Time((bits*int64(sim.Second) + rateBps - 1) / rateBps)
}

// Typed event kinds for the fabric hot paths: every wire arrival, Tx
// serialization completion and pause expiry in the network fires through
// one of these static handlers instead of a per-object closure. Kind
// values play no part in (time, seq) ordering, so registration order is
// irrelevant to determinism.
var (
	kindWireArrive = sim.NewKind(func(tgt, arg any) {
		tgt.(*Wire).arrive(arg.(*packet.Packet))
	})
	kindTxSerDone = sim.NewKind(func(_, arg any) {
		arg.(*Tx).serDone()
	})
	kindTxPauseExpiry = sim.NewKind(func(_, arg any) {
		arg.(*Tx).pauseExpiryCheck()
	})
	kindWatchdogCheck = sim.NewKind(func(_, arg any) {
		r := arg.(*wdRef)
		r.sw.watchdogCheck(r.port)
	})
)

// geLoss is a two-state Gilbert–Elliott Markov loss process: the channel
// alternates between a good and a bad state with per-packet transition
// probabilities, and drops packets with a state-dependent probability.
// It generalizes uniform InjectLoss to the bursty losses of marginal
// optics and dirty connectors.
type geLoss struct {
	bad      bool
	pGoodBad float64 // P(good→bad) evaluated per packet
	pBadGood float64 // P(bad→good) evaluated per packet
	lossGood float64 // drop probability in the good state (usually 0)
	lossBad  float64 // drop probability in the bad state
	rng      *sim.RNG
}

// drop advances the channel state for one packet and reports loss.
func (g *geLoss) drop() bool {
	if g.bad {
		if g.rng.Float64() < g.pBadGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.pGoodBad {
		g.bad = true
	}
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	return p > 0 && g.rng.Float64() < p
}

// Wire is a unidirectional propagation-delay element between two ports.
//
// Each in-flight packet rides one pooled scheduler node with a stored
// monomorphic handler, so the arrival path allocates nothing. A fully
// fused single arrival event per wire (a FIFO of in-flight packets behind
// one self-rescheduling event) was tried and rejected: it assigns event
// sequence numbers at re-schedule time instead of hand-off time, which
// permutes same-instant arrivals relative to the seed scheduler and
// breaks the byte-identical-reports contract.
type Wire struct {
	// Field order is deliberate: everything Deliver touches per packet
	// (sim, delay, group routing state, the down/hasLoss gates) packs
	// into the leading cache line; loss-model details and counters live
	// behind the hasLoss gate and stay cold.
	sim   *sim.Sim
	delay sim.Time

	// group, when set, routes arrivals through the shard group's
	// mailboxes instead of posting directly: the destination device
	// lives on shard dstShard, and the (id, seq) pair gives every
	// hand-off a unique key so barrier injection order — and therefore
	// the destination's event sequence — is independent of how the
	// topology was partitioned. Topology builders mailbox ALL
	// inter-switch wires at every shard count (including one) so the
	// canonical order is the only order that ever exists.
	group    *sim.Group
	srcShard int
	dstShard int

	// tgt is the wire's dispatch-target id, registered on the simulator
	// that executes its arrivals (the destination shard's sim when the
	// wire crosses the group mailboxes).
	tgt uint32
	id  uint32
	seq uint32

	// down marks the source half of a dead link: everything handed to
	// the wire is lost. It is owned by the source shard.
	down bool
	// arrDown marks the arrival half: packets still propagating when
	// the link went down are lost at their arrival instant. It is owned
	// by the destination shard, so a cross-shard link can be killed at
	// the same simulated instant on both sides without a data race.
	arrDown bool
	// hasLoss caches whether ANY loss model (uniform, Gilbert–Elliott,
	// drop filter) is installed, so the common lossless wire pays one
	// boolean test instead of three cold-field checks per delivery.
	hasLoss bool

	to     Device
	toPort int

	// Random non-congestion loss injection (cabling faults, silent
	// corruption): every packet is dropped with probability lossRate.
	lossRate float64
	lossRng  *sim.RNG
	// ge, when set, applies bursty Gilbert–Elliott loss.
	ge *geLoss
	// dropFilter, when set, drops every packet it returns true for
	// (deterministic fault injection for scenario tests).
	dropFilter func(*packet.Packet) bool
	// Dropped counts injected losses (uniform + filter).
	Dropped int64
	// DownDropped counts packets lost to a dead link at hand-off
	// (source side).
	DownDropped int64
	// arrDownDropped counts packets lost in flight at their arrival
	// instant (destination side).
	arrDownDropped int64
	// GEDropped counts Gilbert–Elliott losses.
	GEDropped int64
}

func newWire(s *sim.Sim, delay sim.Time, to Device, toPort int) *Wire {
	return &Wire{sim: s, delay: delay, to: to, toPort: toPort}
}

// dropLossy runs the configured loss models against one packet and
// reports whether it was consumed. Only called when hasLoss is set.
func (w *Wire) dropLossy(pkt *packet.Packet) bool {
	if w.lossRate > 0 && w.lossRng.Float64() < w.lossRate {
		w.Dropped++
		return true
	}
	if w.ge != nil && w.ge.drop() {
		w.GEDropped++
		return true
	}
	if w.dropFilter != nil && w.dropFilter(pkt) {
		w.Dropped++
		return true
	}
	return false
}

// syncHasLoss recomputes the Deliver fast-path gate after a loss-model
// setter runs.
func (w *Wire) syncHasLoss() {
	w.hasLoss = w.lossRate > 0 || w.ge != nil || w.dropFilter != nil
}

// arrive lands a fully-propagated packet on the destination port. It is
// the kindWireArrive handler body and always runs on the simulator the
// wire registered with (the destination shard for mailboxed wires).
func (w *Wire) arrive(pkt *packet.Packet) {
	if w.arrDown {
		// The link died while this packet was in flight.
		w.arrDownDropped++
		return
	}
	w.to.Receive(pkt, w.toPort)
}

// Deliver schedules arrival of a fully-serialized packet after the
// propagation delay (store-and-forward at the next hop). The node is
// taken from the scheduler pool and the sequence number is assigned here,
// at hand-off time, which is what keeps same-instant arrival order
// byte-identical to the seed scheduler.
func (w *Wire) Deliver(pkt *packet.Packet) {
	if w.down {
		w.DownDropped++
		return
	}
	if w.hasLoss && w.dropLossy(pkt) {
		return
	}
	if w.group != nil {
		w.seq++
		key := uint64(w.id)<<32 | uint64(w.seq)
		w.group.SendKind(w.srcShard, w.dstShard, w.sim.Now()+w.delay, key, kindWireArrive, w.tgt, pkt)
		return
	}
	w.sim.PostKind(w.sim.Now()+w.delay, kindWireArrive, w.tgt, pkt)
}

// Tx serializes packets onto a wire at a fixed line rate, honoring PFC
// pause. It pulls packets from its owner through the dequeue callback.
type Tx struct {
	sim     *sim.Sim
	RateBps int64
	wire    *Wire
	shard   int // shard owning this transmitter (0 outside groups)

	busy   bool
	paused bool
	down   bool // link administratively/physically dead (fault injection)
	frozen bool // transmitter stalled with the wire intact (NIC freeze)

	pausedSince sim.Time
	// PausedTotal accumulates wall-clock time this transmitter spent in
	// the PFC-paused state (for the paper's Fig. 7c).
	PausedTotal sim.Time

	// pauseTimeout, when non-zero, bounds how long a pause stays latched
	// without being refreshed: PFC PAUSE frames carry finite quanta, so a
	// transmitter paused by a peer that then dies must not stay wedged
	// forever. Each Pause() refreshes the expiry. Zero keeps the seed
	// model's latched semantics (pause until explicit RESUME).
	pauseTimeout sim.Time
	pauseExpiry  sim.Time
	expiryArmed  bool
	pauseEv      *sim.Event // preallocated expiry event (lazily created)
	// PauseExpires counts pauses released by the timeout rather than an
	// explicit RESUME.
	PauseExpires int64

	// TxBytes counts cumulative bytes serialized, exposed via INT.
	TxBytes int64

	// dequeue returns the next packet to transmit (nil if none) and its
	// wire size. Owners track sizes at enqueue time, so serialization
	// never recomputes WireSize on a cache-cold packet.
	dequeue func() (*packet.Packet, int)
	// onTransmit, if set, runs when a packet begins serialization (used
	// by switches to stamp INT telemetry).
	onTransmit func(*packet.Packet)

	cur *packet.Packet // packet currently serializing
	ev  *sim.Event     // preallocated serialization-done event

	// ser0/ser1 memoize SerTime for the two wire sizes that dominate
	// any run (MSS-sized data and minimum-size ACKs), replacing a
	// 64-bit division per frame with an integer compare. serRate guards
	// the cache against a caller changing RateBps mid-run.
	ser0Size, ser1Size int
	ser0, ser1         sim.Time
	serRate            int64
}

// serTimeFor returns SerTime(size, tx.RateBps) through the two-entry
// memo. Wire sizes are never zero, so the zero value is an empty cache.
func (tx *Tx) serTimeFor(size int) sim.Time {
	if tx.serRate != tx.RateBps {
		tx.serRate = tx.RateBps
		tx.ser0Size, tx.ser1Size = 0, 0
	}
	if size == tx.ser0Size {
		return tx.ser0
	}
	if size == tx.ser1Size {
		tx.ser0Size, tx.ser1Size = tx.ser1Size, tx.ser0Size
		tx.ser0, tx.ser1 = tx.ser1, tx.ser0
		return tx.ser0
	}
	tx.ser1Size, tx.ser1 = tx.ser0Size, tx.ser0
	tx.ser0Size = size
	tx.ser0 = SerTime(size, tx.RateBps)
	return tx.ser0
}

// wdRef binds a switch's PFC watchdog check to one port; one is created
// per watched port so the recurring check fires through kindWatchdogCheck
// without a closure per arm.
type wdRef struct {
	sw   *Switch
	port int
}

// blocked reports whether the transmitter may not start a new frame.
func (tx *Tx) blocked() bool { return tx.paused || tx.down || tx.frozen }

// Kick starts transmission if the link is idle, up, and not paused.
func (tx *Tx) Kick() {
	if !tx.busy && !tx.blocked() {
		tx.startNext()
	}
}

func (tx *Tx) startNext() {
	pkt, size := tx.dequeue()
	if pkt == nil {
		return
	}
	tx.TxBytes += int64(size)
	if tx.onTransmit != nil {
		tx.onTransmit(pkt)
	}
	tx.busy = true
	tx.cur = pkt
	tx.sim.Schedule(tx.ev, tx.sim.Now()+tx.serTimeFor(size))
}

func (tx *Tx) serDone() {
	tx.busy = false
	pkt := tx.cur
	tx.cur = nil
	tx.wire.Deliver(pkt)
	if !tx.blocked() {
		tx.startNext()
	}
}

// Pause stops the transmitter after the in-flight packet, per PFC
// semantics (the current frame completes). With a pause timeout set,
// every Pause refreshes the quanta; a stream of PAUSE frames keeps the
// port stopped, silence lets it expire.
func (tx *Tx) Pause() {
	if tx.pauseTimeout > 0 {
		tx.pauseExpiry = tx.sim.Now() + tx.pauseTimeout
		if !tx.expiryArmed {
			tx.expiryArmed = true
			tx.sim.Schedule(tx.pauseEv, tx.pauseExpiry)
		}
	}
	if tx.paused {
		return
	}
	tx.paused = true
	tx.pausedSince = tx.sim.Now()
}

// Resume restarts a paused transmitter.
func (tx *Tx) Resume() {
	if !tx.paused {
		return
	}
	tx.paused = false
	tx.PausedTotal += tx.sim.Now() - tx.pausedSince
	if !tx.busy && !tx.blocked() {
		tx.startNext()
	}
}

// Paused reports the PFC state.
func (tx *Tx) Paused() bool { return tx.paused }

// PausedSince returns when the current pause stretch began (meaningful
// only while Paused() is true). The PFC watchdog uses it to measure the
// continuous pause duration of a port.
func (tx *Tx) PausedSince() sim.Time { return tx.pausedSince }

// SetPauseTimeout enables pause auto-expiry with the given quanta
// duration (0 restores latched semantics). Intended for host NICs in
// failure experiments: a NIC paused by a ToR that then dies would
// otherwise never transmit again.
func (tx *Tx) SetPauseTimeout(d sim.Time) {
	tx.pauseTimeout = d
	if d > 0 && tx.pauseEv == nil {
		tx.pauseEv = tx.sim.NewKindEvent(kindTxPauseExpiry, 0, tx)
	}
}

// pauseExpiryCheck runs at the earliest possible expiry instant; if the
// quanta were refreshed meanwhile it re-arms for the new expiry.
func (tx *Tx) pauseExpiryCheck() {
	tx.expiryArmed = false
	if !tx.paused || tx.pauseTimeout == 0 {
		return
	}
	now := tx.sim.Now()
	if now < tx.pauseExpiry {
		tx.expiryArmed = true
		tx.sim.Schedule(tx.pauseEv, tx.pauseExpiry)
		return
	}
	tx.PauseExpires++
	tx.Resume()
}

// InjectLoss makes this direction of the link drop packets with the
// given probability, modeling non-congestion losses (faulty optics,
// silent corruption) that TLT explicitly does not protect against (§5).
// A nil rng falls back to a fixed-seed source so the run stays
// deterministic instead of panicking on the first delivery.
func (tx *Tx) InjectLoss(rate float64, rng *sim.RNG) {
	if rng == nil && rate > 0 {
		rng = sim.NewRNG(0x10c5)
	}
	tx.wire.lossRate = rate
	tx.wire.lossRng = rng
	tx.wire.syncHasLoss()
}

// InjectGilbertElliott puts a two-state bursty loss channel on this
// direction of the link: per-packet transitions good→bad with pGoodBad
// and bad→good with pBadGood, dropping with probability lossGood /
// lossBad in the respective state. A nil rng falls back to a fixed-seed
// source. Passing lossBad <= 0 removes the channel.
func (tx *Tx) InjectGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64, rng *sim.RNG) {
	if lossBad <= 0 && lossGood <= 0 {
		tx.wire.ge = nil
		tx.wire.syncHasLoss()
		return
	}
	if rng == nil {
		rng = sim.NewRNG(0x6e11)
	}
	tx.wire.ge = &geLoss{
		pGoodBad: pGoodBad, pBadGood: pBadGood,
		lossGood: lossGood, lossBad: lossBad,
		rng: rng,
	}
	tx.wire.syncHasLoss()
}

// SetLinkDown kills this direction of the link: serialization stops
// after the current frame and every packet in flight on the wire is lost
// at its would-be arrival instant. Both halves of the link state flip
// here, so it is only safe when source and destination share a shard
// (always true outside groups); cross-shard fault injection uses the
// SetSrcDown / SetArrivalDown halves on their owning shards.
func (tx *Tx) SetLinkDown() {
	tx.SetSrcDown(true)
	tx.SetArrivalDown(true)
}

// SetLinkUp revives a downed link and restarts transmission.
func (tx *Tx) SetLinkUp() {
	if !tx.down {
		return
	}
	tx.SetArrivalDown(false)
	tx.SetSrcDown(false)
}

// SetSrcDown flips the source half of the link state: the transmitter
// and the wire's hand-off check. It is owned by — and must only run on
// — the shard of the transmitting device. Raising the link restarts
// transmission.
func (tx *Tx) SetSrcDown(down bool) {
	if down {
		tx.down = true
		tx.wire.down = true
		return
	}
	if !tx.down {
		return
	}
	tx.down = false
	tx.wire.down = false
	if !tx.busy && !tx.blocked() {
		tx.startNext()
	}
}

// SetArrivalDown flips the arrival half of the link state: whether
// packets still in flight are lost at their arrival instant. It is
// owned by — and must only run on — the shard of the receiving device.
func (tx *Tx) SetArrivalDown(down bool) {
	tx.wire.arrDown = down
}

// SetShards records the shard owning this transmitter and the shard its
// wire delivers to. Topology builders call it for every link of a
// sharded network (equal shards for intra-shard links).
func (tx *Tx) SetShards(src, dst int) {
	tx.shard = src
	tx.wire.srcShard = src
	tx.wire.dstShard = dst
}

// Shard returns the shard owning this transmitter.
func (tx *Tx) Shard() int { return tx.shard }

// ArrivalShard returns the shard owning this transmitter's arrival side.
func (tx *Tx) ArrivalShard() int { return tx.wire.dstShard }

// Freeze stalls the transmitter while leaving the wire intact: packets
// already propagating still arrive (a host NIC stall — PCIe hiccup,
// firmware wedge — rather than a dead cable).
func (tx *Tx) Freeze() { tx.frozen = true }

// Unfreeze releases a frozen transmitter and restarts transmission.
func (tx *Tx) Unfreeze() {
	if !tx.frozen {
		return
	}
	tx.frozen = false
	if !tx.busy && !tx.blocked() {
		tx.startNext()
	}
}

// Frozen reports the freeze state.
func (tx *Tx) Frozen() bool { return tx.frozen }

// LinkDown reports whether the link is currently dead.
func (tx *Tx) LinkDown() bool { return tx.down }

// InjectedDrops returns the number of randomly dropped packets
// (uniform loss and drop filters).
func (tx *Tx) InjectedDrops() int64 { return tx.wire.Dropped }

// DownDrops returns packets lost because the link was down, summing the
// hand-off (source) and in-flight (arrival) halves.
func (tx *Tx) DownDrops() int64 { return tx.wire.DownDropped + tx.wire.arrDownDropped }

// BurstyDrops returns packets lost to the Gilbert–Elliott channel.
func (tx *Tx) BurstyDrops() int64 { return tx.wire.GEDropped }

// DropWhen installs a deterministic drop predicate on this direction of
// the link (nil clears it). Packets for which fn returns true vanish, as
// if corrupted in flight. Scenario tests use it to reproduce the paper's
// Figure 3/4 loss sequences exactly.
func (tx *Tx) DropWhen(fn func(*packet.Packet) bool) {
	tx.wire.dropFilter = fn
	tx.wire.syncHasLoss()
}

// FinishPausedClock folds an open pause interval into PausedTotal at the
// end of a run so accounting is complete.
func (tx *Tx) FinishPausedClock() {
	if tx.paused {
		tx.PausedTotal += tx.sim.Now() - tx.pausedSince
		tx.pausedSince = tx.sim.Now()
	}
}

// DeliverControl bypasses the queue and serialization for link-level
// control frames (PFC PAUSE/RESUME are 64-byte frames with preemptive
// priority; their serialization time is negligible at 40 Gbps).
func (tx *Tx) DeliverControl(pkt *packet.Packet) {
	tx.wire.Deliver(pkt)
}

// Connect joins a's port ap and b's port bp with a full-duplex link of the
// given rate and one-way propagation delay, returning the two directional
// transmitters (a→b, b→a).
func Connect(s *sim.Sim, a Device, ap int, b Device, bp int, rateBps int64, delay sim.Time) (atx, btx *Tx) {
	atx = &Tx{sim: s, RateBps: rateBps, wire: newWire(s, delay, b, bp)}
	btx = &Tx{sim: s, RateBps: rateBps, wire: newWire(s, delay, a, ap)}
	atx.wire.tgt = s.RegisterTarget(atx.wire)
	btx.wire.tgt = s.RegisterTarget(btx.wire)
	atx.ev = s.NewKindEvent(kindTxSerDone, 0, atx)
	btx.ev = s.NewKindEvent(kindTxSerDone, 0, btx)
	a.attach(ap, atx)
	b.attach(bp, btx)
	return atx, btx
}

// ConnectSharded joins a's port ap (on shard ashard of g) and b's port
// bp (on shard bshard) with a full-duplex link whose arrivals cross the
// group's mailboxes. Each transmitter runs on its source shard's clock;
// wire ids wireBase (a→b) and wireBase+1 (b→a) key the canonical
// barrier injection order, so they must be unique across the network.
// The link's one-way delay must be at least the group's lookahead.
func ConnectSharded(g *sim.Group, a Device, ap, ashard int, b Device, bp, bshard int,
	rateBps int64, delay sim.Time, wireBase uint32) (atx, btx *Tx) {
	if delay < g.Lookahead() {
		panic("fabric: sharded link delay below group lookahead")
	}
	sa, sb := g.Shard(ashard), g.Shard(bshard)
	atx = &Tx{sim: sa, RateBps: rateBps, wire: newWire(sa, delay, b, bp)}
	btx = &Tx{sim: sb, RateBps: rateBps, wire: newWire(sb, delay, a, ap)}
	atx.wire.group, atx.wire.id = g, wireBase
	btx.wire.group, btx.wire.id = g, wireBase+1
	atx.SetShards(ashard, bshard)
	btx.SetShards(bshard, ashard)
	// A mailboxed wire's arrivals execute on the destination shard, so
	// the target id must come from that shard's simulator.
	atx.wire.tgt = sb.RegisterTarget(atx.wire)
	btx.wire.tgt = sa.RegisterTarget(btx.wire)
	atx.ev = sa.NewKindEvent(kindTxSerDone, 0, atx)
	btx.ev = sb.NewKindEvent(kindTxSerDone, 0, btx)
	a.attach(ap, atx)
	b.attach(bp, btx)
	return atx, btx
}
