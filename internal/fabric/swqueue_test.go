package fabric

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// mkPkt builds a data packet whose wire size and color are known, for
// byte-accounting checks against swQueue.
func mkPkt(seq int64, mark packet.Mark) *packet.Packet {
	return &packet.Packet{Flow: 1, Type: packet.Data, Seq: seq, Len: 1000, Mark: mark}
}

// TestSwQueueShiftCompaction drives the pop index past the 1024
// threshold with a longer tail still queued, forcing the in-place shift
// path, and verifies FIFO order and byte accounting survive it.
func TestSwQueueShiftCompaction(t *testing.T) {
	var q swQueue
	const total = 3000
	for i := 0; i < total; i++ {
		p := mkPkt(int64(i), packet.Unimportant)
		q.push(p, int64(p.WireSize()))
	}
	wantBytes := q.bytes
	perPkt := wantBytes / total

	// Pop just past the shift threshold: pop hits 1025 with 2x tail
	// still queued only once enough have drained; walk until the shift
	// has demonstrably fired.
	popped := 0
	for popped < 2000 {
		p, sz := q.popFront()
		if p == nil {
			t.Fatalf("queue empty after %d pops", popped)
		}
		if p.Seq != int64(popped) {
			t.Fatalf("pop %d returned seq %d: FIFO order broken", popped, p.Seq)
		}
		if sz != perPkt {
			t.Fatalf("pop %d size = %d, want %d", popped, sz, perPkt)
		}
		popped++
	}
	if q.pop > 1024 {
		t.Fatalf("pop index %d never compacted", q.pop)
	}
	if q.bytes != wantBytes-int64(popped)*perPkt {
		t.Fatalf("bytes = %d after %d pops, want %d", q.bytes, popped, wantBytes-int64(popped)*perPkt)
	}
	// Drain the rest: order must continue exactly where it left off.
	for ; popped < total; popped++ {
		p, _ := q.popFront()
		if p == nil || p.Seq != int64(popped) {
			t.Fatalf("post-shift pop %d = %+v", popped, p)
		}
	}
	if p, _ := q.popFront(); p != nil {
		t.Fatal("queue should be empty")
	}
	if q.bytes != 0 || q.red != 0 {
		t.Fatalf("drained queue has bytes=%d red=%d", q.bytes, q.red)
	}
}

// TestSwQueueInterleavedAroundReset interleaves pushes and pops so the
// queue repeatedly empties (the q.queue[:0] reset) mid-traffic, with
// red and green packets mixed to exercise the color accounting.
func TestSwQueueInterleavedAroundReset(t *testing.T) {
	var q swQueue
	seq := int64(0)
	next := int64(0)
	marks := [2]packet.Mark{packet.Unimportant, packet.ImportantData}
	for round := 0; round < 50; round++ {
		// Push a burst, drain it fully (hits the reset), then push one
		// more and drain again: the reset boundary is crossed twice.
		for i := 0; i < 7; i++ {
			p := mkPkt(seq, marks[seq%2])
			q.push(p, int64(p.WireSize()))
			seq++
		}
		for {
			p, _ := q.popFront()
			if p == nil {
				break
			}
			if p.Seq != next {
				t.Fatalf("round %d: got seq %d, want %d", round, p.Seq, next)
			}
			next++
		}
		if q.bytes != 0 || q.red != 0 || q.pop != 0 || len(q.queue) != 0 {
			t.Fatalf("round %d: reset left bytes=%d red=%d pop=%d len=%d",
				round, q.bytes, q.red, q.pop, len(q.queue))
		}
	}
	if next != seq {
		t.Fatalf("popped %d of %d pushed", next, seq)
	}
	// High-water marks survive resets (they are per-run maxima).
	if q.maxBytes == 0 || q.maxRedBytes == 0 {
		t.Fatalf("high-water marks lost: max=%d maxRed=%d", q.maxBytes, q.maxRedBytes)
	}
}

// countingHandler recycles nothing and copies nothing — the host owns
// delivery and recycling.
type countingHandler struct{ n int }

func (c *countingHandler) Handle(pkt *packet.Packet) { c.n++ }

// TestPoolReuseInvariantsUnderTraffic runs real fabric traffic — color
// drops, PFC pause/resume frames, normal delivery — over an
// audit-enabled pool. The audit hook panics on a double Put or a
// use-after-put, so surviving the run IS the assertion; afterwards
// every allocation must be back on the free list (no leaks).
func TestPoolReuseInvariantsUnderTraffic(t *testing.T) {
	s := sim.New()
	pool := packet.NewPool()
	pool.EnableAudit()

	cfg := SwitchConfig{
		Ports: 2, BufferBytes: 1 << 20, Alpha: 1,
		ColorThreshold: 3_000, // force red color drops under the burst
		PFC:            true,  // force PAUSE/RESUME control frames
		XOff:           8_000, XOn: 2_000,
	}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	sw.SetPool(pool)
	src := NewHost(s, 0)
	src.SetPool(pool)
	dst := NewHost(s, 1)
	dst.SetPool(pool)
	Connect(s, src, 0, sw, 0, 40e9, sim.Microsecond)
	Connect(s, dst, 0, sw, 1, 4e9, sim.Microsecond) // slow egress: queue builds
	sw.SetRoute(1, []int{1})

	h := &countingHandler{}
	dst.Register(1, h)

	marks := [4]packet.Mark{packet.Unimportant, packet.Unimportant, packet.Unimportant, packet.ImportantData}
	for i := 0; i < 2000; i++ {
		pkt := src.NewPacket()
		pkt.Flow = 1
		pkt.Dst = 1
		pkt.Type = packet.Data
		pkt.Len = 1000
		pkt.Seq = int64(i)
		pkt.Mark = marks[i%4]
		src.Send(pkt)
	}
	s.RunAll()

	if h.n == 0 {
		t.Fatal("no packets delivered")
	}
	if sw.Ctr.DropRedColor == 0 {
		t.Fatal("scenario produced no color drops; invariant not exercised")
	}
	if sw.Ctr.PauseFrames == 0 || sw.Ctr.ResumeFrames == 0 {
		t.Fatalf("scenario produced no PFC frames (pause=%d resume=%d)",
			sw.Ctr.PauseFrames, sw.Ctr.ResumeFrames)
	}
	// Quiescent balance: every packet ever handed out was recycled
	// exactly once — drops and control frames included, or this leaks.
	handedOut := pool.News + pool.Reuses
	if pool.Puts != handedOut {
		t.Fatalf("pool leak: %d gets vs %d puts", handedOut, pool.Puts)
	}
	if got := uint64(pool.FreeLen()); got != pool.News {
		t.Fatalf("free list holds %d of %d allocations", got, pool.News)
	}
}

// TestPoolAuditCatchesDoublePut proves the audit hook the invariant test
// relies on actually fires: recycling the same packet twice must panic.
func TestPoolAuditCatchesDoublePut(t *testing.T) {
	pool := packet.NewPool()
	pool.EnableAudit()
	pkt := pool.Get()
	pool.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under audit")
		}
	}()
	pool.Put(pkt)
}

// TestPoolAuditCatchesUseAfterPut proves the poison canary fires when a
// freed packet is written through a stale pointer before reuse.
func TestPoolAuditCatchesUseAfterPut(t *testing.T) {
	pool := packet.NewPool()
	pool.EnableAudit()
	pkt := pool.Get()
	pool.Put(pkt)
	pkt.Seq = 42 // stale write while on the free list
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-put did not panic under audit")
		}
	}()
	pool.Get()
}
