package fabric

import (
	"strings"
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// The color threshold historically governs only class 0 (§5.3:
// incremental deployment reserves one class for TLT semantics);
// ColorAllClasses extends it fleet-wide. Both behaviors live in the
// extracted default policy now, so pin them.
func TestColorThresholdClassScope(t *testing.T) {
	run := func(all bool) *Switch {
		s, h, sw, _ := oneSwitch(t, SwitchConfig{
			BufferBytes:     1 << 20,
			ColorThreshold:  10_000,
			TrafficClasses:  2,
			ColorAllClasses: all,
		})
		sw.Tx(1).Pause()
		for i := 0; i < 30; i++ {
			p := data(1, 1, 1000, packet.Unimportant)
			p.TC = 1
			h.Send(p)
		}
		s.RunAll()
		return sw
	}
	if sw := run(false); sw.Ctr.DropRedColor != 0 {
		t.Fatalf("class-1 red dropped by color threshold with ColorAllClasses off: %d",
			sw.Ctr.DropRedColor)
	}
	sw := run(true)
	if sw.Ctr.DropRedColor == 0 {
		t.Fatal("ColorAllClasses: expected class-1 red color drops")
	}
	if red := sw.MaxRedQueueBytes(1); red > 10_000+1048 {
		t.Fatalf("class-1 red queue reached %d, exceeds K", red)
	}
}

// An unregistered policy name is a configuration bug; NewSwitch must
// fail loudly at build time, naming the registered alternatives.
func TestUnknownPolicyNamePanics(t *testing.T) {
	expectPanic := func(cfg SwitchConfig, want string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("NewSwitch with %+v did not panic", cfg)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("panic %v does not mention %q", r, want)
			}
		}()
		cfg.Ports = 2
		cfg.BufferBytes = 1 << 20
		NewSwitch(sim.New(), 1, sim.NewRNG(1), cfg)
	}
	expectPanic(SwitchConfig{MMU: "bogus"}, "unknown buffer policy")
	expectPanic(SwitchConfig{FC: "bogus"}, "unknown flow control")
}

// FC "none" must beat the legacy PFC flag, and the PFC watchdog — which
// reacts to *received* pause frames — must be armed but inert when the
// local policy never emits or receives any.
func TestWatchdogInertWithoutFlowControl(t *testing.T) {
	s, h, sw, k := oneSwitch(t, SwitchConfig{
		BufferBytes:       100_000,
		PFC:               true, // overridden by FC below
		FC:                "none",
		PFCWatchdog:       true,
		WatchdogThreshold: 50 * sim.Microsecond,
	})
	if sw.FCName() != "none" || sw.Lossless() {
		t.Fatalf("FC=none not honored: fc=%s lossless=%v", sw.FCName(), sw.Lossless())
	}
	sw.Tx(1).Pause()
	for i := 0; i < 200; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	s.RunAll()
	// Lossy operation: the dynamic threshold drops instead of pausing.
	if sw.Ctr.PauseFrames != 0 {
		t.Fatalf("pause frames emitted with no flow control: %d", sw.Ctr.PauseFrames)
	}
	if sw.Ctr.DropDynamic == 0 {
		t.Fatal("expected dynamic-threshold drops in lossy mode")
	}
	if sw.Ctr.WatchdogFires != 0 {
		t.Fatalf("watchdog fired without any received pauses: %d", sw.Ctr.WatchdogFires)
	}
	sw.Tx(1).Resume()
	s.RunAll()
	if len(k.got) == 0 {
		t.Fatal("nothing delivered after resume")
	}
}

// A chaos buffer shrink must survive a switch reboot: the fault window
// belongs to the chaos schedule, and only its restore event (or an
// explicit ShrinkBuffer(0)) may lift it.
func TestShrinkSurvivesReboot(t *testing.T) {
	_, _, sw, _ := oneSwitch(t, SwitchConfig{BufferBytes: 100_000})
	sw.ShrinkBuffer(0.5)
	if got := sw.BufferLimit(); got != 50_000 {
		t.Fatalf("BufferLimit = %d, want 50000", got)
	}
	sw.Fail()
	sw.Reboot()
	if got := sw.BufferLimit(); got != 50_000 {
		t.Fatalf("reboot lifted the chaos shrink: BufferLimit = %d, want 50000", got)
	}
	sw.ShrinkBuffer(0)
	if got := sw.BufferLimit(); got != 100_000 {
		t.Fatalf("restore failed: BufferLimit = %d, want 100000", got)
	}
}
