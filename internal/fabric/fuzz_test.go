package fabric

import (
	"testing"
	"testing/quick"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// TestMMUInvariantsUnderRandomTraffic drives random packet mixes through
// a small switch and checks the shared-buffer bookkeeping invariants the
// whole reproduction depends on:
//
//   - buffer occupancy equals the sum of queue depths at all times,
//   - occupancy never exceeds capacity and returns to zero after drain,
//   - red queue depth never exceeds the color threshold by more than one
//     packet,
//   - every packet is either delivered exactly once or counted dropped.
func TestMMUInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		s := sim.New()
		cfg := SwitchConfig{
			Ports:          4,
			BufferBytes:    60_000 + int64(rng.Intn(100_000)),
			Alpha:          []float64{0.5, 1, 2}[rng.Intn(3)],
			ColorThreshold: int64(rng.Intn(40_000)),
			ECN:            ECNStep,
			KEcn:           20_000,
		}
		sw := NewSwitch(s, 100, sim.NewRNG(seed+1), cfg)
		hosts := make([]*Host, 2)
		sinks := make([]*sink, 2)
		for i := range hosts {
			hosts[i] = NewHost(s, packet.NodeID(i))
			Connect(s, hosts[i], 0, sw, i, 40e9, sim.Microsecond)
		}
		for i := range sinks {
			sinks[i] = &sink{id: packet.NodeID(2 + i)}
			Connect(s, sinks[i], 0, sw, 2+i, 10e9, sim.Microsecond) // slower egress: queues build
			sw.SetRoute(packet.NodeID(2+i), []int{2 + i})
		}

		sent := 0
		for i := 0; i < 400; i++ {
			at := sim.Time(rng.Intn(40)) * sim.Microsecond
			h := hosts[rng.Intn(2)]
			mark := packet.Unimportant
			if rng.Intn(3) == 0 {
				mark = packet.ImportantData
			}
			pkt := &packet.Packet{
				Flow: packet.FlowID(rng.Intn(8) + 1),
				Dst:  packet.NodeID(2 + rng.Intn(2)),
				Type: packet.Data,
				Len:  rng.Intn(1400) + 1,
				Mark: mark,
				ECT:  rng.Intn(2) == 0,
			}
			sent++
			s.At(at, func() { h.Send(pkt) })
		}

		// Invariant sweeps while traffic flows.
		ok := true
		var sweep func()
		sweep = func() {
			var q int64
			for p := 0; p < sw.NumPorts(); p++ {
				q += sw.QueueBytes(p)
				if sw.cfg.ColorThreshold > 0 && sw.RedQueueBytes(p) > sw.cfg.ColorThreshold+1448 {
					ok = false
				}
			}
			if q != sw.BufferUsed() || q > sw.cfg.BufferBytes {
				ok = false
			}
			if s.Pending() > 0 {
				s.After(3*sim.Microsecond, sweep)
			}
		}
		s.After(0, sweep)
		s.RunAll()

		if sw.BufferUsed() != 0 {
			return false
		}
		delivered := len(sinks[0].got) + len(sinks[1].got)
		dropped := int(sw.Ctr.TotalDrops())
		return ok && delivered+dropped == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiQueueAccounting repeats the bookkeeping check with two
// traffic classes per port.
func TestMultiQueueAccounting(t *testing.T) {
	s := sim.New()
	cfg := SwitchConfig{
		Ports:          2,
		BufferBytes:    200_000,
		TrafficClasses: 2,
		ColorThreshold: 20_000,
	}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 40e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 10e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	for i := 0; i < 100; i++ {
		h.Send(&packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Len: 900, TC: uint8(i % 2)})
	}
	s.RunAll()
	if sw.BufferUsed() != 0 {
		t.Fatalf("buffer used = %d after drain", sw.BufferUsed())
	}
	got := int64(len(k.got)) + sw.Ctr.TotalDrops()
	if got != 100 {
		t.Fatalf("delivered+dropped = %d, want 100", got)
	}
	// Per-class order is preserved even though classes interleave.
	lastSeq := map[uint8]int64{0: -1, 1: -1}
	for i, p := range k.got {
		if int64(i) < lastSeq[p.TC] {
			t.Fatal("per-class reordering")
		}
	}
}
