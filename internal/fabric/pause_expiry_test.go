package fabric

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// TestPauseExpiryReleasesWedgedNIC: with a pause timeout armed, a NIC
// paused by a peer that never sends RESUME (it died) transmits again
// once the quanta age out, and the release is counted.
func TestPauseExpiryReleasesWedgedNIC(t *testing.T) {
	s, h, _, k := oneSwitch(t, SwitchConfig{BufferBytes: 1 << 20})
	tx := h.NICTx()
	tx.SetPauseTimeout(50 * sim.Microsecond)

	tx.Pause() // the peer dies right after pausing us
	h.Send(data(1, 1, 1000, packet.Unimportant))
	s.Run(40 * sim.Microsecond)
	if len(k.got) != 0 {
		t.Fatal("paused NIC transmitted before the quanta expired")
	}
	s.Run(200 * sim.Microsecond)
	if len(k.got) != 1 {
		t.Fatalf("delivered %d packets after expiry, want 1", len(k.got))
	}
	if tx.PauseExpires != 1 {
		t.Fatalf("PauseExpires = %d, want 1", tx.PauseExpires)
	}
	if tx.Paused() {
		t.Fatal("NIC still paused after expiry")
	}
}

// TestPauseRefreshExtendsExpiry: each PAUSE refreshes the quanta, so a
// live storm holds the port down past the base timeout, and an explicit
// RESUME releases it without charging PauseExpires.
func TestPauseRefreshExtendsExpiry(t *testing.T) {
	s, h, _, k := oneSwitch(t, SwitchConfig{BufferBytes: 1 << 20})
	tx := h.NICTx()
	tx.SetPauseTimeout(50 * sim.Microsecond)

	tx.Pause()
	h.Send(data(1, 1, 1000, packet.Unimportant))
	// Refresh at 40us: expiry slides to 90us, past the base 50us.
	s.At(40*sim.Microsecond, func() { tx.Pause() })
	s.Run(70 * sim.Microsecond)
	if len(k.got) != 0 {
		t.Fatal("refreshed pause released at the un-refreshed deadline")
	}
	s.At(80*sim.Microsecond, tx.Resume)
	s.RunAll()
	if len(k.got) != 1 {
		t.Fatalf("delivered %d packets after RESUME, want 1", len(k.got))
	}
	if tx.PauseExpires != 0 {
		t.Fatalf("PauseExpires = %d after explicit RESUME, want 0", tx.PauseExpires)
	}
}
