package mmu

import "tlt/internal/fabric"

// bfc is per-hop Backpressure Flow Control. PFC accounts bytes per
// *ingress* port and pauses the whole upstream link when the total
// crosses XOFF — every flow sharing that link becomes a head-of-line
// victim, even ones headed to idle egresses. bfc instead keys
// backpressure on the congested *(egress, class) queue*: it tracks
// which ingress ports contributed the bytes currently sitting in each
// queue and, when a queue grows past XOFF, pauses only those
// contributing upstream links. When the queue drains to XON every link
// it paused is released (a link paused by several hot queues stays
// paused until the last one releases it, via a per-port refcount).
//
// This is a faithful per-hop simplification of BFC (Goyal et al.): the
// real design pauses per upstream *queue*, which our single-FIFO-
// per-link model cannot express, so the contributing-ingress-port set
// is the closest observable unit. It is lossless: admission threshold
// drops are suppressed exactly as under PFC.
//
// Thresholds: XOff (0 → BufferBytes/16) on the per-queue depth, XOn
// (0 → XOff/2).
type bfc struct {
	sw        *fabric.Switch
	classes   int
	xoff, xon int64

	// contrib[qi][in] = bytes in queue qi (egress*classes+tc) that
	// arrived via ingress port in. pausedFor[qi][in] marks that queue qi
	// currently holds a pause claim on port in; refcnt[in] counts claims
	// so EmitPause/EmitResume fire only on 0↔1 transitions.
	contrib   [][]int64
	pausedFor [][]bool
	refcnt    []int
}

func newBFC(cfg fabric.SwitchConfig) fabric.FlowControl {
	classes := cfg.TrafficClasses
	if classes <= 1 {
		classes = 1
	}
	xoff := cfg.XOff
	if xoff <= 0 {
		xoff = cfg.BufferBytes / 16
	}
	xon := cfg.XOn
	if xon <= 0 {
		xon = xoff / 2
	}
	return &bfc{classes: classes, xoff: xoff, xon: xon}
}

func (f *bfc) Name() string { return "bfc" }

func (f *bfc) Bind(sw *fabric.Switch) {
	f.sw = sw
	ports := sw.NumPorts()
	n := ports * f.classes
	f.contrib = make([][]int64, n)
	f.pausedFor = make([][]bool, n)
	for i := range f.contrib {
		f.contrib[i] = make([]int64, ports)
		f.pausedFor[i] = make([]bool, ports)
	}
	f.refcnt = make([]int, ports)
}

func (f *bfc) Lossless() bool { return true }

func (f *bfc) qi(egress, tc int) int { return egress*f.classes + tc }

func (f *bfc) OnEnqueue(inPort, egress, tc int, size int64) {
	qi := f.qi(egress, tc)
	f.contrib[qi][inPort] += size
	if f.sw.ClassQueueBytes(egress, tc) <= f.xoff {
		return
	}
	// Queue past XOFF: claim a pause on every upstream link currently
	// feeding it. Iterating in port order keeps the emitted frame
	// sequence deterministic.
	for in, b := range f.contrib[qi] {
		if b <= 0 || f.pausedFor[qi][in] {
			continue
		}
		f.pausedFor[qi][in] = true
		f.refcnt[in]++
		if f.refcnt[in] == 1 {
			f.sw.EmitPause(in)
		}
	}
}

func (f *bfc) OnDequeue(inPort, egress, tc int, size int64) {
	qi := f.qi(egress, tc)
	f.contrib[qi][inPort] -= size
	if f.sw.ClassQueueBytes(egress, tc) > f.xon {
		return
	}
	for in, p := range f.pausedFor[qi] {
		if !p {
			continue
		}
		f.pausedFor[qi][in] = false
		f.refcnt[in]--
		if f.refcnt[in] == 0 {
			f.sw.EmitResume(in)
		}
	}
}

// Reset clears all contribution and pause-claim state without emitting
// resumes: a rebooting switch's pause state died with it, and its
// upstream peers recover via their own pause timeout or watchdog.
func (f *bfc) Reset() {
	for qi := range f.contrib {
		for in := range f.contrib[qi] {
			f.contrib[qi][in] = 0
			f.pausedFor[qi][in] = false
		}
	}
	for in := range f.refcnt {
		f.refcnt[in] = 0
	}
}
