package mmu_test

import (
	"testing"

	"tlt/internal/fabric"
	_ "tlt/internal/fabric/mmu"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/topo"
)

// star builds n hosts around one switch, host i on port i, with routes
// installed both ways.
func star(t *testing.T, cfg fabric.SwitchConfig, n int) (*sim.Sim, []*fabric.Host, *fabric.Switch) {
	t.Helper()
	s := sim.New()
	cfg.Ports = n
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	sw := fabric.NewSwitch(s, 100, sim.NewRNG(1), cfg)
	hs := make([]*fabric.Host, n)
	for i := range hs {
		hs[i] = fabric.NewHost(s, packet.NodeID(i))
		fabric.Connect(s, hs[i], 0, sw, i, 40e9, sim.Microsecond)
		sw.SetRoute(packet.NodeID(i), []int{i})
	}
	return s, hs, sw
}

func pkt(flow packet.FlowID, dst packet.NodeID, mark packet.Mark) *packet.Packet {
	return &packet.Packet{Flow: flow, Dst: dst, Type: packet.Data, Len: 1000, Mark: mark}
}

// flood sends n red packets from h toward dst.
func flood(h *fabric.Host, dst packet.NodeID, n int) {
	for i := 0; i < n; i++ {
		h.Send(pkt(packet.FlowID(h.ID()+1), dst, packet.Unimportant))
	}
}

// The tiny-buffer regime admits against BufferBytes/MMUDiv, and chaos
// shrinks compose with the reduced capacity, not the physical one.
func TestTinyCapacityAndShrink(t *testing.T) {
	_, _, sw := star(t, fabric.SwitchConfig{BufferBytes: 100_000, MMU: "tiny"}, 2)
	if got := sw.BufferLimit(); got != 10_000 {
		t.Fatalf("tiny BufferLimit = %d, want 10000", got)
	}
	sw.ShrinkBuffer(0.5)
	if got := sw.BufferLimit(); got != 5_000 {
		t.Fatalf("shrunk tiny BufferLimit = %d, want 5000", got)
	}
	sw.ShrinkBuffer(0)
	if got := sw.BufferLimit(); got != 10_000 {
		t.Fatalf("restored tiny BufferLimit = %d, want 10000", got)
	}

	_, _, sw = star(t, fabric.SwitchConfig{BufferBytes: 100_000, MMU: "tiny", MMUDiv: 4}, 2)
	if got := sw.BufferLimit(); got != 25_000 {
		t.Fatalf("tiny(div=4) BufferLimit = %d, want 25000", got)
	}
}

// Under the same congestion the tiny policy must cap the queue an order
// of magnitude below the default, while keeping the same drop taxonomy
// (dynamic-threshold drops — it IS the C–H policy, just smaller).
func TestTinyDropsEarlier(t *testing.T) {
	congest := func(mmuName string) *fabric.Switch {
		s, hs, sw := star(t, fabric.SwitchConfig{BufferBytes: 100_000, MMU: mmuName}, 2)
		sw.Tx(1).Pause()
		flood(hs[0], 1, 200)
		s.RunAll()
		return sw
	}
	ch := congest("")
	tiny := congest("tiny")
	if tiny.Ctr.DropDynamic == 0 {
		t.Fatal("tiny: expected dynamic-threshold drops")
	}
	if chQ, tinyQ := ch.MaxQueueBytes(1), tiny.MaxQueueBytes(1); tinyQ*5 > chQ {
		t.Fatalf("tiny queue %d not ≪ default queue %d", tinyQ, chQ)
	}
}

// BShare squeezes slow-draining queues: with the drain-delay decay the
// equilibrium queue must sit below plain Choudhury–Hahne's, and its
// threshold drops must be counted as policy drops, not dynamic drops.
func TestBShareSqueezesSlowQueue(t *testing.T) {
	congest := func(mmuName string) *fabric.Switch {
		s, hs, sw := star(t, fabric.SwitchConfig{BufferBytes: 100_000, MMU: mmuName}, 2)
		sw.Tx(1).Pause()
		flood(hs[0], 1, 200)
		s.RunAll()
		return sw
	}
	ch := congest("")
	bs := congest("bshare")
	if bs.Ctr.DropPolicy == 0 {
		t.Fatal("bshare: expected policy drops")
	}
	if bs.Ctr.DropDynamic != 0 {
		t.Fatalf("bshare issued %d dynamic drops; its threshold drops must be DropPolicy", bs.Ctr.DropDynamic)
	}
	if chQ, bsQ := ch.MaxQueueBytes(1), bs.MaxQueueBytes(1); bsQ >= chQ {
		t.Fatalf("bshare queue %d not below C–H queue %d", bsQ, chQ)
	}
	if bs.Ctr.TotalDrops() == 0 {
		t.Fatal("bshare drops missing from TotalDrops")
	}
}

// BShare keeps the TLT protection guarantee: green packets ride over
// the decayed threshold exactly as over the C–H one.
func TestBShareProtectsGreen(t *testing.T) {
	s, hs, sw := star(t, fabric.SwitchConfig{
		BufferBytes: 100_000, MMU: "bshare", ColorThreshold: 10_000,
	}, 2)
	sw.Tx(1).Pause()
	flood(hs[0], 1, 100)
	for i := 0; i < 10; i++ {
		hs[0].Send(pkt(1, 1, packet.ImportantData))
	}
	s.RunAll()
	if sw.Ctr.DropGreen != 0 {
		t.Fatalf("bshare dropped %d green packets", sw.Ctr.DropGreen)
	}
	if sw.Ctr.DropRedColor == 0 {
		t.Fatal("bshare: color threshold inactive")
	}
}

// BFC pauses only the ingress ports feeding the hot queue: a bystander
// sending nothing toward the congested egress keeps its NIC running.
func TestBFCPausesOnlyContributors(t *testing.T) {
	s, hs, sw := star(t, fabric.SwitchConfig{BufferBytes: 160_000, FC: "bfc"}, 3)
	sw.Tx(2).Pause() // hot egress: host 2
	flood(hs[0], 2, 100)
	s.RunAll()
	if !hs[0].NICTx().Paused() {
		t.Fatal("contributing ingress not paused")
	}
	if hs[1].NICTx().Paused() {
		t.Fatal("bystander ingress paused (PFC-style head-of-line victim)")
	}
	if sw.Ctr.PauseFrames == 0 {
		t.Fatal("no pause frames emitted")
	}
	// Lossless: no threshold drops while the queue holds under XOFF+RTT.
	if sw.Ctr.DropDynamic != 0 || sw.Ctr.DropPolicy != 0 {
		t.Fatalf("bfc run issued threshold drops: dyn=%d pol=%d",
			sw.Ctr.DropDynamic, sw.Ctr.DropPolicy)
	}
	// Draining the hot queue below XON must release the pause.
	sw.Tx(2).Resume()
	s.RunAll()
	if hs[0].NICTx().Paused() {
		t.Fatal("contributor still paused after drain")
	}
	if sw.Ctr.ResumeFrames == 0 {
		t.Fatal("no resume frames emitted")
	}
}

// The PFC watchdog must coexist with BFC: both react to pause state,
// and a congested BFC switch with the watchdog armed must neither
// panic nor fire spuriously when its pauses resolve by draining.
func TestBFCUnderWatchdog(t *testing.T) {
	s, hs, sw := star(t, fabric.SwitchConfig{
		BufferBytes:       160_000,
		FC:                "bfc",
		PFCWatchdog:       true,
		WatchdogThreshold: 500 * sim.Microsecond,
	}, 3)
	sw.Tx(2).Pause()
	flood(hs[0], 2, 100)
	s.RunAll()
	sw.Tx(2).Resume()
	s.RunAll()
	if sw.Ctr.WatchdogFires != 0 {
		t.Fatalf("watchdog fired %d times on a drained BFC switch", sw.Ctr.WatchdogFires)
	}
}

// Reboot resets BFC's contribution and pause-claim state: without the
// reset, stale claims would suppress the pause a fresh congestion
// event must emit.
func TestBFCRebootResetsState(t *testing.T) {
	s, hs, sw := star(t, fabric.SwitchConfig{BufferBytes: 160_000, FC: "bfc"}, 3)
	sw.Tx(2).Pause()
	flood(hs[0], 2, 100)
	s.RunAll()
	if sw.Ctr.PauseFrames != 1 {
		t.Fatalf("setup: PauseFrames = %d, want 1", sw.Ctr.PauseFrames)
	}
	sw.Fail()
	sw.Reboot()
	// The reboot does not resume peers (that state died with the
	// switch); model the host NIC's own pause timeout expiring.
	hs[0].NICTx().Resume()
	sw.Tx(2).Pause()
	flood(hs[0], 2, 100)
	s.RunAll()
	if sw.Ctr.PauseFrames != 2 {
		t.Fatalf("post-reboot congestion emitted %d pause frames total, want 2 (stale claim suppressed the new pause?)",
			sw.Ctr.PauseFrames)
	}
	if !hs[0].NICTx().Paused() {
		t.Fatal("contributor not re-paused after reboot")
	}
}

// PerSwitch gives individual switches their own policies: tiny-buffer
// ToRs under default spines.
func TestLeafSpinePerSwitchPolicies(t *testing.T) {
	cfg := topo.DefaultLeafSpine(sim.Microsecond)
	cfg.Spines, cfg.Tors, cfg.HostsPerTor = 2, 2, 2
	cfg.LinkRateBps = 40e9
	cfg.PerSwitch = func(i int, spine bool, sc *fabric.SwitchConfig) {
		if !spine {
			sc.MMU = "tiny"
		}
	}
	net := topo.LeafSpine(sim.New(), cfg)
	for i, sw := range net.Switches {
		want := "tiny"
		if i >= cfg.Tors {
			want = "ch"
		}
		if got := sw.PolicyName(); got != want {
			t.Fatalf("switch %d policy = %q, want %q", i, got, want)
		}
	}
	// The tiny ToRs really run the reduced capacity.
	if got := net.Switches[0].BufferLimit(); got != 450_000 {
		t.Fatalf("tiny ToR BufferLimit = %d, want 450000", got)
	}
	if got := net.Switches[cfg.Tors].BufferLimit(); got != 4_500_000 {
		t.Fatalf("default spine BufferLimit = %d, want 4500000", got)
	}
}
