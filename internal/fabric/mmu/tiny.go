package mmu

import "tlt/internal/fabric"

// newTiny builds the tiny-buffer regime: the default Choudhury–Hahne +
// color-threshold admission logic, unchanged, over a shared buffer
// BufferBytes/MMUDiv (default divisor 10). It exists to measure how the
// paper's loss-protection story holds up when the switch has an order
// of magnitude less buffering to protect green packets with — shallow
// commodity buffers are the regime TLT claims to tolerate.
//
// Implementation is pure reuse: fabric.NewCHPolicy with a reduced
// capacity. Chaos shrink faults compose multiplicatively (Shrink
// applies its fraction to the tiny capacity, not the physical one).
func newTiny(cfg fabric.SwitchConfig) fabric.BufferPolicy {
	div := cfg.MMUDiv
	if div <= 1 {
		div = 10
	}
	return fabric.NewCHPolicy("tiny", cfg, int64(float64(cfg.BufferBytes)/div))
}
