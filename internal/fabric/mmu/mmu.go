// Package mmu provides competitor MMU strategies for the pluggable
// switch buffer-management boundary in internal/fabric:
//
//   - "bshare": queueing-delay-driven buffer sharing. The dynamic
//     threshold decays geometrically as a queue's drain time exceeds a
//     delay target, so slow-draining (congested or paused) queues get
//     squeezed out of the shared pool instead of monopolizing it.
//   - "tiny": the tiny-buffer regime — the Choudhury–Hahne + color
//     admission logic unchanged, but over a shared buffer ~10× smaller
//     than the physical one (SwitchConfig.MMUDiv).
//   - "bfc": per-hop Backpressure Flow Control — instead of PFC's
//     per-ingress-port accounting, pausing is driven by per-(egress,
//     class) queue depth and targets only the ingress ports actually
//     contributing to the hot queue, avoiding PFC's head-of-line
//     victims.
//
// Import for side effects (registration):
//
//	import _ "tlt/internal/fabric/mmu"
package mmu

import "tlt/internal/fabric"

func init() {
	fabric.RegisterBufferPolicy("bshare", newBShare)
	fabric.RegisterBufferPolicy("tiny", newTiny)
	fabric.RegisterFlowControl("bfc", newBFC)
}
