package mmu

import (
	"math"

	"tlt/internal/fabric"
	"tlt/internal/sim"
)

// bshare is a queueing-delay-driven shared-buffer policy. The classic
// Choudhury–Hahne threshold T = alpha*free treats every queue alike; a
// queue that drains slowly (paused upstream, incast victim) can hold a
// large share of the buffer hostage while it does nothing useful with
// it. bshare scales the threshold down geometrically with the queue's
// estimated drain delay:
//
//	T = alpha * free * gamma^(d/D)
//
// where d = qBytes/rate is the time the arriving packet would wait
// behind the queue, D the delay target (MMUTargetDelay, default 10us)
// and gamma the decay base (MMUGamma, default 0.5). A queue at the
// delay target gets half the C–H threshold, at twice the target a
// quarter, and so on — fast-draining queues keep the full dynamic
// share. Threshold drops are reported as DropReasonPolicy so they are
// distinguishable from the default model's dynamic drops in counters
// and audit.
//
// The physical free<size check and the TLT color threshold are kept
// identical to the default policy: bshare replaces how the *shared
// pool* is divided, not the loss-protection semantics.
type bshare struct {
	sw       *fabric.Switch
	alpha    float64
	k        int64
	colorAll bool
	lossless bool
	target   float64 // delay target D in ns
	gamma    float64

	capacity int64
	eff      int64
}

func newBShare(cfg fabric.SwitchConfig) fabric.BufferPolicy {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1
	}
	target := cfg.MMUTargetDelay
	if target <= 0 {
		target = 10 * sim.Microsecond
	}
	gamma := cfg.MMUGamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.5
	}
	return &bshare{
		alpha:    alpha,
		k:        cfg.ColorThreshold,
		colorAll: cfg.ColorAllClasses,
		target:   float64(target),
		gamma:    gamma,
		capacity: cfg.BufferBytes,
		eff:      cfg.BufferBytes,
	}
}

func (p *bshare) Name() string { return "bshare" }

func (p *bshare) Bind(sw *fabric.Switch) {
	p.sw = sw
	p.lossless = sw.Lossless()
}

func (p *bshare) Capacity() int64 { return p.eff }

func (p *bshare) Shrink(frac float64) {
	if frac <= 0 || frac >= 1 {
		p.eff = p.capacity
		return
	}
	p.eff = int64(frac * float64(p.capacity))
}

// drainDelayNs estimates how long the arriving packet would wait behind
// qBytes already queued at the egress line rate. An unbound or
// zero-rate transmitter yields 0 (no decay) rather than infinity: with
// no rate information the policy degrades to plain Choudhury–Hahne.
func (p *bshare) drainDelayNs(egress int, qBytes int64) float64 {
	tx := p.sw.Tx(egress)
	if tx == nil || tx.RateBps <= 0 {
		return 0
	}
	return float64(qBytes) * 8e9 / float64(tx.RateBps)
}

func (p *bshare) threshold(egress int, qBytes, free int64) float64 {
	t := p.alpha * float64(free)
	if d := p.drainDelayNs(egress, qBytes); d > 0 {
		t *= math.Pow(p.gamma, d/p.target)
	}
	return t
}

func (p *bshare) Admit(egress, tc int, qBytes, free, size int64, green bool) (fabric.DropReason, bool) {
	switch {
	case free < size:
		return fabric.DropReasonBufferFull, false
	case (tc == 0 || p.colorAll) && p.k > 0 && !green && qBytes >= p.k:
		return fabric.DropReasonColor, false
	case !p.lossless && float64(qBytes)+float64(size) > p.threshold(egress, qBytes, free):
		return fabric.DropReasonPolicy, false
	}
	return 0, true
}

func (p *bshare) CheckDrop(reason fabric.DropReason, tc int, qBytes, free, size int64, green bool) string {
	switch reason {
	case fabric.DropReasonBufferFull:
		if free >= size {
			return "buffer-full drop with headroom"
		}
	case fabric.DropReasonColor:
		if green {
			return "green packet dropped by color threshold"
		}
		if tc != 0 && !p.colorAll {
			return "color drop on a class the threshold does not govern"
		}
		if p.k <= 0 || qBytes < p.k {
			return "color drop below threshold K"
		}
	case fabric.DropReasonDynamic:
		return "dynamic-threshold drop from a policy that never issues them"
	case fabric.DropReasonPolicy:
		// The decayed threshold is at most the plain C–H one, and the
		// auditor cannot re-derive the decay (it does not track the
		// drain estimate at decision time), so only the lossless-mode
		// invariant is checkable: threshold drops are illegal when flow
		// control owns backpressure.
		if p.lossless {
			return "bshare threshold drop in lossless mode"
		}
	}
	return ""
}

func (p *bshare) Reset() {}
