package fabric

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// BenchmarkSwitchForwarding measures the end-to-end per-packet cost of
// the data plane: host NIC -> switch MMU -> egress -> delivery.
func BenchmarkSwitchForwarding(b *testing.B) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 2, BufferBytes: 1 << 22, Alpha: 1, ECN: ECNStep, KEcn: 1 << 20}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 400e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 400e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Send(&packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Len: 1000})
		if i%256 == 255 {
			s.RunAll()
			k.got = k.got[:0]
		}
	}
	s.RunAll()
}

// BenchmarkSwitchForward measures the steady-state per-packet switch
// cost — route lookup, MMU admission, enqueue, dequeue — with packets
// recycled through a pool. This is the datapath the zero-allocation
// gate protects: any per-packet heap traffic fails CI.
func BenchmarkSwitchForward(b *testing.B) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 2, BufferBytes: 1 << 22, Alpha: 1, ECN: ECNStep, KEcn: 1 << 20}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	pool := packet.NewPool()
	sw.SetPool(pool)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 400e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 400e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	sw.Tx(1).Pause() // serve the queue by hand, without the event loop

	run := func(n int) {
		for i := 0; i < n; i++ {
			pkt := pool.Get()
			pkt.Flow = 1
			pkt.Dst = 1
			pkt.Type = packet.Data
			pkt.Len = 1000
			sw.Receive(pkt, 0)
			out, _ := sw.dequeue(1)
			if out == nil {
				b.Fatal("packet not forwarded")
			}
			pool.Put(out)
		}
	}
	run(512) // warm up the pool and queue capacity
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}

// BenchmarkHostDemux measures per-packet flow demultiplexing at the
// receiving host: dense slot dispatch plus handler invocation and
// recycling. Gated at 0 allocs/op in CI.
func BenchmarkHostDemux(b *testing.B) {
	s := sim.New()
	h := NewHost(s, 0)
	pool := packet.NewPool()
	h.SetPool(pool)
	for f := packet.FlowID(1); f <= 64; f++ {
		h.Register(f, handlerFunc(func(p *packet.Packet) {}))
	}
	run := func(n int) {
		for i := 0; i < n; i++ {
			pkt := pool.Get()
			pkt.Flow = packet.FlowID(i&63) + 1
			pkt.Type = packet.Ack
			h.Receive(pkt, 0)
		}
	}
	run(512)
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}

// BenchmarkColorAdmission isolates the MMU admission decision.
func BenchmarkColorAdmission(b *testing.B) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 2, BufferBytes: 1 << 22, Alpha: 1, ColorThreshold: 1 << 18}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 400e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 400e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	sw.Tx(1).Pause() // queue builds; admission exercises both branches
	marks := [2]packet.Mark{packet.Unimportant, packet.ImportantData}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.enqueue(&packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Len: 1000, Mark: marks[i%2]}, 0, 1)
		if sw.BufferUsed() > 1<<21 {
			b.StopTimer()
			sw.Tx(1).Resume()
			s.RunAll()
			sw.Tx(1).Pause()
			b.StartTimer()
		}
	}
}
