package fabric

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// BenchmarkSwitchForwarding measures the end-to-end per-packet cost of
// the data plane: host NIC -> switch MMU -> egress -> delivery.
func BenchmarkSwitchForwarding(b *testing.B) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 2, BufferBytes: 1 << 22, Alpha: 1, ECN: ECNStep, KEcn: 1 << 20}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 400e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 400e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Send(&packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Len: 1000})
		if i%256 == 255 {
			s.RunAll()
			k.got = k.got[:0]
		}
	}
	s.RunAll()
}

// BenchmarkColorAdmission isolates the MMU admission decision.
func BenchmarkColorAdmission(b *testing.B) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 2, BufferBytes: 1 << 22, Alpha: 1, ColorThreshold: 1 << 18}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 400e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 400e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	sw.Tx(1).Pause() // queue builds; admission exercises both branches
	marks := [2]packet.Mark{packet.Unimportant, packet.ImportantData}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.enqueue(&packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Len: 1000, Mark: marks[i%2]}, 0, 1)
		if sw.BufferUsed() > 1<<21 {
			b.StopTimer()
			sw.Tx(1).Resume()
			s.RunAll()
			sw.Tx(1).Pause()
			b.StartTimer()
		}
	}
}
