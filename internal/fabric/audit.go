package fabric

import "tlt/internal/packet"

// DropReason classifies why a switch dropped a packet at admission.
type DropReason uint8

// Drop reasons reported to the audit hook.
const (
	DropReasonBufferFull DropReason = iota // physical shared buffer exhausted
	DropReasonDynamic                      // dynamic shared-buffer threshold
	DropReasonColor                        // color-aware threshold (red only)
	DropReasonWatchdog                     // PFC watchdog drop-and-unpause flush
	DropReasonSwitchFail                   // MMU contents lost to a switch failure
	DropReasonPolicy                       // non-default BufferPolicy threshold (e.g. BShare)
)

// String returns a short reason name for dump output.
func (r DropReason) String() string {
	switch r {
	case DropReasonBufferFull:
		return "buffer-full"
	case DropReasonDynamic:
		return "dynamic-threshold"
	case DropReasonColor:
		return "color-threshold"
	case DropReasonWatchdog:
		return "pfc-watchdog"
	case DropReasonSwitchFail:
		return "switch-fail"
	case DropReasonPolicy:
		return "buffer-policy"
	}
	return "?"
}

// AuditHook observes every buffer-state transition of a switch so a
// runtime invariant auditor (internal/audit) can re-derive the MMU
// accounting independently and fail fast on divergence. All methods are
// called synchronously from the data path; implementations must not
// mutate switch state.
type AuditHook interface {
	// OnEnqueue fires after pkt was admitted to (egress, tc).
	OnEnqueue(sw *Switch, egress, tc int, pkt *packet.Packet)
	// OnDequeue fires after pkt left (egress, tc) for serialization.
	OnDequeue(sw *Switch, egress, tc int, pkt *packet.Packet)
	// OnDrop fires when admission rejected pkt, or — for the Watchdog
	// and SwitchFail reasons — when a queued packet was flushed. qBytes
	// is the target queue depth and free the shared-buffer headroom
	// (against the effective buffer limit) at decision time.
	OnDrop(sw *Switch, egress, tc int, pkt *packet.Packet, reason DropReason, qBytes, free int64)
	// OnPFC fires when the switch emits a PAUSE (pause=true) or RESUME
	// frame toward the upstream ingress port.
	OnPFC(sw *Switch, port int, pause bool)
	// OnPauseRx fires when received PFC changes an egress port's pause
	// state: paused=true when a PAUSE frame stops the port, false when
	// a RESUME — or the switch's own watchdog mitigation — releases it.
	// Refresh PAUSE frames on an already-paused port do not fire.
	OnPauseRx(sw *Switch, port int, paused bool)
	// OnReset fires after a failed switch rebooted: its MMU, PFC and
	// pause state restarted from zero and any shadow state the auditor
	// keeps for it must be discarded.
	OnReset(sw *Switch)
}
