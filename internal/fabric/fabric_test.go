package fabric

import (
	"testing"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// sink is a Device that records everything it receives.
type sink struct {
	id   packet.NodeID
	got  []*packet.Packet
	tx   *Tx
	gotP []sim.Time
}

func (k *sink) ID() packet.NodeID { return k.id }
func (k *sink) Receive(pkt *packet.Packet, inPort int) {
	k.got = append(k.got, pkt)
	k.gotP = append(k.gotP, 0)
}
func (k *sink) attach(port int, tx *Tx) { k.tx = tx }

func TestSerTime(t *testing.T) {
	// 1048 bytes at 40 Gbps: 1048*8/40 = 209.6 ns, rounded up.
	if got := SerTime(1048, 40e9); got != 210 {
		t.Fatalf("SerTime = %v, want 210ns", got)
	}
	if got := SerTime(1500, 10e9); got != 1200 {
		t.Fatalf("SerTime = %v, want 1200ns", got)
	}
}

func data(flow packet.FlowID, dst packet.NodeID, length int, mark packet.Mark) *packet.Packet {
	return &packet.Packet{Flow: flow, Dst: dst, Type: packet.Data, Len: length, Mark: mark}
}

// oneSwitch builds host0 -> sw -> sink topology for MMU tests.
func oneSwitch(t *testing.T, cfg SwitchConfig) (*sim.Sim, *Host, *Switch, *sink) {
	t.Helper()
	s := sim.New()
	cfg.Ports = 2
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, sw, 0, 40e9, sim.Microsecond)
	Connect(s, k, 0, sw, 1, 40e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	sw.SetRoute(0, []int{0})
	return s, h, sw, k
}

func TestSwitchForwardsAndPreservesOrder(t *testing.T) {
	s, h, _, k := oneSwitch(t, SwitchConfig{BufferBytes: 1 << 20})
	for i := 0; i < 50; i++ {
		p := data(1, 1, 1000, packet.Unimportant)
		p.Seq = int64(i)
		h.Send(p)
	}
	s.RunAll()
	if len(k.got) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(k.got))
	}
	for i, p := range k.got {
		if p.Seq != int64(i) {
			t.Fatalf("reordering: position %d has seq %d", i, p.Seq)
		}
	}
}

func TestColorAwareDropping(t *testing.T) {
	// Red packets may not grow the queue beyond K; green packets pass.
	// Block the egress by pausing the sink-facing transmitter.
	s, h, sw, k := oneSwitch(t, SwitchConfig{
		BufferBytes:    1 << 20,
		ColorThreshold: 10_000,
	})
	sw.Tx(1).Pause()
	for i := 0; i < 30; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	for i := 0; i < 10; i++ {
		h.Send(data(1, 1, 1000, packet.ImportantData))
	}
	s.RunAll()
	if sw.Ctr.DropRedColor == 0 {
		t.Fatal("expected red drops at color threshold")
	}
	if sw.Ctr.DropGreen != 0 {
		t.Fatalf("green packets dropped: %d", sw.Ctr.DropGreen)
	}
	// Red occupancy bounded by K (allow one packet of slack at the
	// admission boundary).
	if red := sw.MaxRedQueueBytes(1); red > 10_000+1048 {
		t.Fatalf("red queue reached %d, exceeds K", red)
	}
	// All 10 green packets are queued beyond K.
	if q := sw.QueueBytes(1); q < 10*1048 {
		t.Fatalf("queue %d should hold all greens", q)
	}
	sw.Tx(1).Resume()
	s.RunAll()
	green := 0
	for _, p := range k.got {
		if p.Mark == packet.ImportantData {
			green++
		}
	}
	if green != 10 {
		t.Fatalf("delivered %d green packets, want all 10", green)
	}
}

func TestDynamicThreshold(t *testing.T) {
	// With alpha=1 a single congested queue can use at most half the
	// buffer: Q >= alpha * (B - used) blocks further growth.
	s, h, sw, _ := oneSwitch(t, SwitchConfig{BufferBytes: 100_000, Alpha: 1})
	sw.Tx(1).Pause()
	for i := 0; i < 200; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	s.RunAll()
	if sw.Ctr.DropDynamic == 0 {
		t.Fatal("expected dynamic-threshold drops")
	}
	if q := sw.QueueBytes(1); q < 45_000 || q > 55_000 {
		t.Fatalf("queue = %d, want ~B/2", q)
	}
	if sw.BufferUsed() > 100_000 {
		t.Fatalf("buffer accounting exceeded capacity: %d", sw.BufferUsed())
	}
}

func TestBufferAccountingReturnsToZero(t *testing.T) {
	s, h, sw, k := oneSwitch(t, SwitchConfig{BufferBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		h.Send(data(1, 1, 777, packet.Unimportant))
	}
	s.RunAll()
	if sw.BufferUsed() != 0 {
		t.Fatalf("buffer used = %d after drain, want 0", sw.BufferUsed())
	}
	if len(k.got) != 100 {
		t.Fatalf("delivered %d", len(k.got))
	}
}

func TestECNStepMarking(t *testing.T) {
	s, h, sw, k := oneSwitch(t, SwitchConfig{
		BufferBytes: 1 << 20,
		ECN:         ECNStep,
		KEcn:        5_000,
	})
	sw.Tx(1).Pause()
	for i := 0; i < 20; i++ {
		p := data(1, 1, 1000, packet.Unimportant)
		p.ECT = true
		h.Send(p)
	}
	s.RunAll()
	sw.Tx(1).Resume()
	s.RunAll()
	marked := 0
	for _, p := range k.got {
		if p.CE {
			marked++
		}
	}
	// First ~4 packets fit under 5kB; the rest must be marked.
	if marked < 14 || marked > 16 {
		t.Fatalf("marked %d of 20, want ~15", marked)
	}
	if int(sw.Ctr.ECNMarked) != marked {
		t.Fatalf("counter %d != observed %d", sw.Ctr.ECNMarked, marked)
	}
	// Non-ECT packets are never marked.
	k.got = nil
	sw.Tx(1).Pause()
	for i := 0; i < 20; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	s.RunAll()
	sw.Tx(1).Resume()
	s.RunAll()
	for _, p := range k.got {
		if p.CE {
			t.Fatal("non-ECT packet marked CE")
		}
	}
}

func TestECNRedMarkingProbability(t *testing.T) {
	s, h, sw, k := oneSwitch(t, SwitchConfig{
		BufferBytes: 1 << 20,
		ECN:         ECNRed,
		KMin:        2_000,
		KMax:        10_000,
		PMax:        0.5,
	})
	sw.Tx(1).Pause()
	for i := 0; i < 60; i++ {
		p := data(1, 1, 1000, packet.Unimportant)
		p.ECT = true
		h.Send(p)
	}
	s.RunAll()
	sw.Tx(1).Resume()
	s.RunAll()
	marked := 0
	for _, p := range k.got {
		if p.CE {
			marked++
		}
	}
	// Everything above KMax (~50 packets) has probability 1.
	if marked < 45 {
		t.Fatalf("marked %d, want >= 45 (queue mostly above KMax)", marked)
	}
	if !k.got[0].CE == false && k.got[0].CE {
		t.Fatal("first packet under KMin should not be marked")
	}
}

func TestPFCPauseResume(t *testing.T) {
	s, h, sw, k := oneSwitch(t, SwitchConfig{
		BufferBytes: 1 << 20,
		PFC:         true,
		XOff:        8_000,
		XOn:         6_000,
	})
	sw.Tx(1).Pause() // block egress so ingress accounting builds
	for i := 0; i < 30; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	s.Run(100 * sim.Microsecond)
	if sw.Ctr.PauseFrames == 0 {
		t.Fatal("expected a PAUSE frame")
	}
	if !h.NICTx().Paused() {
		t.Fatal("host NIC should be paused")
	}
	// Nothing was dropped: PFC is lossless.
	if sw.Ctr.TotalDrops() != 0 {
		t.Fatalf("drops under PFC: %+v", sw.Ctr)
	}
	sw.Tx(1).Resume()
	s.RunAll()
	if sw.Ctr.ResumeFrames == 0 {
		t.Fatal("expected a RESUME frame")
	}
	if h.NICTx().Paused() {
		t.Fatal("host NIC should have resumed")
	}
	if len(k.got) != 30 {
		t.Fatalf("delivered %d packets, want all 30", len(k.got))
	}
	if h.NICTx().PausedTotal == 0 {
		t.Fatal("paused time not accounted")
	}
}

func TestPFCHeadOfLineBlocking(t *testing.T) {
	// The defining PFC pathology: a congested egress port pauses the
	// ingress, blocking a victim flow headed to an idle egress port.
	s := sim.New()
	cfg := SwitchConfig{Ports: 3, BufferBytes: 1 << 20, Alpha: 1, PFC: true, XOff: 8_000, XOn: 6_000}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	h := NewHost(s, 0)
	hot := &sink{id: 1}
	victim := &sink{id: 2}
	Connect(s, h, 0, sw, 0, 40e9, sim.Microsecond)
	Connect(s, hot, 0, sw, 1, 40e9, sim.Microsecond)
	Connect(s, victim, 0, sw, 2, 40e9, sim.Microsecond)
	sw.SetRoute(1, []int{1})
	sw.SetRoute(2, []int{2})

	sw.Tx(1).Pause() // external congestion on the hot port
	for i := 0; i < 20; i++ {
		h.Send(data(1, 1, 1000, packet.Unimportant))
	}
	s.Run(50 * sim.Microsecond)
	// Victim traffic now cannot enter: the host NIC is paused.
	h.Send(data(2, 2, 1000, packet.Unimportant))
	s.Run(200 * sim.Microsecond)
	if len(victim.got) != 0 {
		t.Fatal("victim packet delivered despite HoL blocking")
	}
	sw.Tx(1).Resume()
	s.RunAll()
	if len(victim.got) != 1 {
		t.Fatalf("victim packet lost: got %d", len(victim.got))
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	s := sim.New()
	cfg := SwitchConfig{Ports: 4, BufferBytes: 1 << 20, Alpha: 1}
	sw := NewSwitch(s, 100, sim.NewRNG(1), cfg)
	group := []int{1, 2, 3}
	seen := map[int]bool{}
	for flow := packet.FlowID(1); flow <= 64; flow++ {
		first := sw.ecmpHash(flow, len(group))
		seen[first] = true
		for i := 0; i < 10; i++ {
			if sw.ecmpHash(flow, len(group)) != first {
				t.Fatal("ECMP hash not deterministic per flow")
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("ECMP used %d of 3 paths over 64 flows", len(seen))
	}
}

func TestINTStamping(t *testing.T) {
	s, h, _, k := oneSwitch(t, SwitchConfig{BufferBytes: 1 << 20, INT: true})
	p := data(1, 1, 1000, packet.Unimportant)
	h.Send(p)
	s.RunAll()
	if len(k.got) != 1 || k.got[0].NumINT() != 1 {
		t.Fatalf("INT hops = %d, want 1", k.got[0].NumINT())
	}
	hop := k.got[0].INTHops()[0]
	if hop.RateBps != 40e9 || hop.TxBytes == 0 {
		t.Fatalf("INT hop = %+v", hop)
	}
}

func TestHostDemux(t *testing.T) {
	s := sim.New()
	h := NewHost(s, 0)
	other := &sink{id: 1}
	Connect(s, h, 0, other, 0, 40e9, sim.Microsecond)

	got := map[packet.FlowID]int{}
	h.Register(7, handlerFunc(func(p *packet.Packet) { got[7]++ }))
	h.Register(8, handlerFunc(func(p *packet.Packet) { got[8]++ }))
	h.Receive(&packet.Packet{Flow: 7, Type: packet.Ack}, 0)
	h.Receive(&packet.Packet{Flow: 8, Type: packet.Ack}, 0)
	h.Receive(&packet.Packet{Flow: 9, Type: packet.Ack}, 0) // unknown: dropped
	if got[7] != 1 || got[8] != 1 {
		t.Fatalf("demux got %v", got)
	}
	h.Unregister(8)
	h.Receive(&packet.Packet{Flow: 8, Type: packet.Ack}, 0)
	if got[8] != 1 {
		t.Fatal("unregistered flow still handled")
	}
}

type handlerFunc func(*packet.Packet)

func (f handlerFunc) Handle(p *packet.Packet) { f(p) }

func TestHostNICFIFO(t *testing.T) {
	s := sim.New()
	h := NewHost(s, 0)
	k := &sink{id: 1}
	Connect(s, h, 0, k, 0, 40e9, sim.Microsecond)
	for i := 0; i < 2000; i++ {
		p := &packet.Packet{Flow: 1, Dst: 1, Type: packet.Data, Seq: int64(i), Len: 100}
		h.Send(p)
	}
	if h.QueuedPackets() == 0 {
		t.Fatal("NIC backlog expected")
	}
	s.RunAll()
	if len(k.got) != 2000 {
		t.Fatalf("delivered %d", len(k.got))
	}
	for i, p := range k.got {
		if p.Seq != int64(i) {
			t.Fatal("NIC reordered packets")
		}
	}
	if p := k.got[0]; p.Src != 0 {
		t.Fatalf("Send must stamp Src; got %d", p.Src)
	}
}

func TestPausedClockAccounting(t *testing.T) {
	s := sim.New()
	h := NewHost(s, 0)
	k := &sink{id: 1}
	atx, _ := Connect(s, h, 0, k, 0, 40e9, sim.Microsecond)
	atx.Pause()
	s.Post(100*sim.Microsecond, func() { atx.Resume() })
	s.RunAll()
	if atx.PausedTotal != 100*sim.Microsecond {
		t.Fatalf("paused total = %v", atx.PausedTotal)
	}
	// FinishPausedClock folds an open interval.
	atx.Pause()
	s.Post(s.Now()+50*sim.Microsecond, func() {})
	s.RunAll()
	atx.FinishPausedClock()
	if atx.PausedTotal != 150*sim.Microsecond {
		t.Fatalf("paused total = %v, want 150us", atx.PausedTotal)
	}
}
