package fabric

import (
	"fmt"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

// ECNMode selects the marking discipline at egress queues.
type ECNMode uint8

// Marking disciplines.
const (
	ECNOff  ECNMode = iota
	ECNStep         // DCTCP: mark all when instantaneous queue > KEcn
	ECNRed          // DCQCN: probabilistic between KMin and KMax
)

// SwitchConfig models the shared-buffer memory management unit of a
// commodity chip plus the features TLT relies on.
type SwitchConfig struct {
	Ports       int
	BufferBytes int64   // total shared buffer
	Alpha       float64 // dynamic threshold parameter (Choudhury–Hahne)

	// TrafficClasses is the number of egress queues per port (default
	// 1). With more than one class, packets are enqueued by their TC
	// field and the port serves classes round-robin. This models the
	// paper's incremental-deployment mode (§5.3): TLT traffic rides a
	// dedicated queue (class 0) with color-aware dropping enabled while
	// legacy traffic uses a separate queue without it.
	TrafficClasses int

	// ColorThreshold is the color-aware dropping threshold K: a red
	// (unimportant) packet is dropped when the target egress queue
	// already holds at least K bytes. Zero disables color-aware dropping
	// (non-TLT operation).
	//
	// Class restriction: with multiple traffic classes, the threshold by
	// default applies ONLY to class 0 — the dedicated TLT queue of the
	// paper's incremental-deployment mode (§5.3), where legacy traffic
	// rides other classes without color semantics. Red packets on
	// classes ≥ 1 therefore bypass the color check entirely. Set
	// ColorAllClasses to extend the threshold to every class (full-
	// deployment operation where all queues carry colored traffic).
	ColorThreshold int64
	// ColorAllClasses applies ColorThreshold to every traffic class
	// instead of class 0 only. See ColorThreshold.
	ColorAllClasses bool

	// MMU selects the shared-buffer admission policy by registered name.
	// "" and "ch" are the built-in Choudhury–Hahne dynamic threshold +
	// TLT color dropping; internal/fabric/mmu registers "bshare"
	// (queueing-delay-driven sharing) and "tiny" (shallow-buffer
	// regime). Unknown names panic at switch construction.
	MMU string
	// FC selects the flow-control policy: "" keeps the legacy meaning of
	// the PFC flag (PFC iff PFC is set), "pfc" forces PFC, "none"
	// disables flow control even with PFC set, and internal/fabric/mmu
	// registers "bfc" (per-hop backpressure). Unknown names panic.
	FC string
	// MMUDiv is the tiny-buffer policy's capacity divisor: the effective
	// shared buffer is BufferBytes/MMUDiv (0 → 10).
	MMUDiv float64
	// MMUTargetDelay is BShare's per-queue queueing-delay target (0 →
	// 10 µs): queues whose estimated drain delay exceeds it get their
	// dynamic threshold scaled down by MMUGamma per target multiple.
	MMUTargetDelay sim.Time
	// MMUGamma is BShare's threshold decay base, in (0, 1) (0 → 0.5).
	MMUGamma float64

	ECN  ECNMode
	KEcn int64 // step threshold
	KMin int64 // RED min
	KMax int64 // RED max
	PMax float64

	// PFC enables priority flow control: per-ingress-port accounting
	// with XOFF/XON thresholds. When PFC is on, the egress dynamic
	// threshold no longer drops (lossless class); only physical buffer
	// exhaustion can drop.
	PFC  bool
	XOff int64
	XOn  int64

	// PFCWatchdog enables the commodity-style pause watchdog (Broadcom
	// and Mellanox chips ship one): when an egress port has been
	// continuously paused by received PAUSE frames for
	// WatchdogThreshold, the switch drops everything queued on that
	// port, unpauses it, and ignores further PAUSE frames on it until
	// WatchdogRestore has elapsed (drop-and-unpause mitigation). This
	// is the data-plane defence against PFC storms and deadlocks.
	PFCWatchdog       bool
	WatchdogThreshold sim.Time
	WatchdogRestore   sim.Time

	// INT enables in-band network telemetry stamping (HPCC).
	INT bool
}

func (c *SwitchConfig) classes() int {
	if c.TrafficClasses <= 1 {
		return 1
	}
	return c.TrafficClasses
}

// Counters aggregates data-plane statistics for one switch.
type Counters struct {
	DropRedColor   int64 // red dropped by color-aware threshold
	DropDynamic    int64 // dropped by dynamic shared-buffer threshold
	DropBufferFull int64 // dropped because the physical buffer was full
	DropPolicy     int64 // dropped by a non-default BufferPolicy threshold
	DropGreen      int64 // subset of the above that were green (important)
	EnqGreen       int64
	EnqRed         int64
	ECNMarked      int64
	PauseFrames    int64
	ResumeFrames   int64
	INTOverflow    int64 // INT stamps that spilled past packet.MaxINTHops

	WatchdogFires  int64 // PFC watchdog drop-and-unpause mitigations
	WatchdogDrops  int64 // packets flushed by watchdog mitigation
	DropSwitchFail int64 // packets black-holed or flushed by switch failure
}

// Add accumulates other into c.
func (c *Counters) Add(o *Counters) {
	c.DropRedColor += o.DropRedColor
	c.DropDynamic += o.DropDynamic
	c.DropBufferFull += o.DropBufferFull
	c.DropPolicy += o.DropPolicy
	c.DropGreen += o.DropGreen
	c.EnqGreen += o.EnqGreen
	c.EnqRed += o.EnqRed
	c.ECNMarked += o.ECNMarked
	c.PauseFrames += o.PauseFrames
	c.ResumeFrames += o.ResumeFrames
	c.INTOverflow += o.INTOverflow
	c.WatchdogFires += o.WatchdogFires
	c.WatchdogDrops += o.WatchdogDrops
	c.DropSwitchFail += o.DropSwitchFail
}

// TotalDrops returns all drops regardless of cause.
func (c *Counters) TotalDrops() int64 {
	return c.DropRedColor + c.DropDynamic + c.DropBufferFull + c.DropPolicy
}

// swEnt is one queued packet plus the byte accounting popFront needs:
// carrying size and color in the FIFO entry keeps the pop path off the
// packet's (long since evicted) cache line.
type swEnt struct {
	pkt *packet.Packet
	sz  int32
	red bool
}

// swQueue is one egress FIFO (one traffic class of one port).
type swQueue struct {
	queue []swEnt // FIFO; head at index pop
	pop   int
	bytes int64 // current depth in bytes
	red   int64 // red bytes currently queued

	maxBytes    int64 // high-water mark (Fig. 11b)
	maxRedBytes int64
}

// push appends pkt to the FIFO. The caller passes the wire size (already
// computed for admission) so the hot path sizes each packet exactly once.
func (q *swQueue) push(pkt *packet.Packet, sz int64) {
	red := pkt.Mark.Color() == packet.Red
	q.queue = append(q.queue, swEnt{pkt: pkt, sz: int32(sz), red: red})
	q.bytes += sz
	if red {
		q.red += sz
	}
	if q.bytes > q.maxBytes {
		q.maxBytes = q.bytes
	}
	if q.red > q.maxRedBytes {
		q.maxRedBytes = q.red
	}
}

// popFront removes and returns the head packet and its wire size (stored
// at push time, then reused by the dequeue accounting).
func (q *swQueue) popFront() (*packet.Packet, int64) {
	if q.pop >= len(q.queue) {
		return nil, 0
	}
	e := q.queue[q.pop]
	q.queue[q.pop] = swEnt{}
	q.pop++
	if q.pop == len(q.queue) {
		q.queue = q.queue[:0]
		q.pop = 0
	} else if q.pop > 1024 && q.pop*2 > len(q.queue) {
		n := copy(q.queue, q.queue[q.pop:])
		q.queue = q.queue[:n]
		q.pop = 0
	}
	sz := int64(e.sz)
	q.bytes -= sz
	if e.red {
		q.red -= sz
	}
	return e.pkt, sz
}

// swPort is one egress port: a set of class queues behind a transmitter.
// Ingress-side flow-control accounting (PFC's per-port byte counters,
// BFC's per-queue contributions) lives in the switch's FlowControl
// policy; only the watchdog state stays here because the watchdog
// reacts to received pauses regardless of the local policy.
type swPort struct {
	tx *Tx
	qs []swQueue
	rr int // round-robin pointer over classes

	wdPending     bool       // a watchdog check event is outstanding
	wdIgnoreUntil sim.Time   // PAUSE frames ignored until then (mitigation)
	wdEv          *sim.Event // preallocated watchdog check (lazily created)
	wdTimer       sim.Timer  // handle to the outstanding check (reboot cancels)
}

func (p *swPort) totalBytes() int64 {
	var n int64
	for i := range p.qs {
		n += p.qs[i].bytes
	}
	return n
}

// Switch is a shared-buffer output-queued switch.
type Switch struct {
	id    packet.NodeID
	sim   *sim.Sim
	rng   *sim.RNG
	cfg   SwitchConfig
	ports []*swPort

	used int64 // shared buffer occupancy

	// failed marks the switch dead (chaos SwitchFail): every arriving
	// packet is black-holed and egress serialization is frozen until
	// Reboot.
	failed bool

	// bufLimit caches policy.Capacity(): the effective shared-buffer
	// capacity used for admission. It normally equals the policy's
	// configured capacity (cfg.BufferBytes for the default policy);
	// chaos fault injection can shrink it for a window via ShrinkBuffer
	// (an MMU reconfiguration or partial memory failure). Already-
	// buffered bytes above a shrunken limit drain normally; only
	// admission is affected.
	bufLimit int64

	// policy is the admission strategy (cfg.MMU) and fc the pause/
	// resume strategy (cfg.FC / cfg.PFC), both bound at construction.
	// fc is nil when flow control is off — the common lossy case pays
	// only a nil check per packet. lossless caches fc.Lossless().
	policy   BufferPolicy
	fc       FlowControl
	lossless bool

	// routes maps destination host ID to the candidate egress ports
	// (ECMP group), indexed densely by NodeID minus routeBase. Set by
	// the topology builder; host IDs are small non-negative integers.
	// routeBase lets a switch whose specific entries cover only a high
	// contiguous ID range (a fat-tree edge switch and its k/2 local
	// hosts) skip the dense nil prefix that would otherwise cost
	// O(hosts) per switch.
	routes    [][]int
	routeBase int

	// route1 mirrors routes with the unicast fast path: entry d holds
	// the egress port when destination d's group has exactly one member,
	// else -1 (ECMP group, empty, missing). The common single-port
	// lookup is then one dense int32 load instead of a slice-header
	// load plus a group-element dereference. Shared-table installs pass
	// a precomputed projection so the O(hosts) flat array, like the
	// table itself, exists once per forwarding-equivalence class.
	route1 []int32

	// defaultRoute, when non-empty, is the ECMP group used for any
	// destination with no specific routes entry. Large Clos builders
	// use it for "everything not below me goes up", which keeps FIB
	// state O(local hosts) instead of O(all hosts) per switch.
	defaultRoute []int

	// pool, when set, recycles packets the switch drops at admission and
	// supplies PFC control frames, so neither path allocates.
	pool *packet.Pool

	// Ctr collects statistics.
	Ctr Counters

	// Audit, when non-nil, observes every enqueue/dequeue/drop and PFC
	// frame for runtime invariant checking. Nil in normal runs.
	Audit AuditHook
}

// NewSwitch builds a switch with cfg.Ports ports.
func NewSwitch(s *sim.Sim, id packet.NodeID, rng *sim.RNG, cfg SwitchConfig) *Switch {
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	sw := &Switch{id: id, sim: s, rng: rng, cfg: cfg}
	sw.ports = make([]*swPort, cfg.Ports)
	for i := range sw.ports {
		sw.ports[i] = &swPort{qs: make([]swQueue, cfg.classes())}
	}
	// Flow control binds first so the buffer policy can capture whether
	// the fabric is lossless (dynamic thresholds disabled under PFC).
	sw.fc = newFlowControl(cfg)
	if sw.fc != nil {
		sw.fc.Bind(sw)
		sw.lossless = sw.fc.Lossless()
	}
	sw.policy = newBufferPolicy(cfg)
	sw.policy.Bind(sw)
	sw.bufLimit = sw.policy.Capacity()
	return sw
}

// ID returns the switch's node ID.
func (sw *Switch) ID() packet.NodeID { return sw.id }

// SetPool installs the packet free-list the switch recycles dropped
// packets to and draws PFC control frames from.
func (sw *Switch) SetPool(p *packet.Pool) { sw.pool = p }

// recycle returns a packet whose life ended inside the switch (admission
// drop, consumed control frame) to the free list.
func (sw *Switch) recycle(pkt *packet.Packet) {
	if sw.pool != nil {
		sw.pool.Put(pkt)
	}
}

// newControl returns a zeroed packet for a PFC frame.
func (sw *Switch) newControl() *packet.Packet {
	if sw.pool != nil {
		return sw.pool.Get()
	}
	return &packet.Packet{}
}

// Config returns the switch configuration.
func (sw *Switch) Config() SwitchConfig { return sw.cfg }

// BufferUsed returns current shared-buffer occupancy in bytes.
func (sw *Switch) BufferUsed() int64 { return sw.used }

// BufferLimit returns the effective admission capacity in bytes.
func (sw *Switch) BufferLimit() int64 { return sw.bufLimit }

// ShrinkBuffer caps the effective admission capacity to frac of the
// installed buffer policy's configured capacity — the chaos engine's
// MMU-reconfiguration fault. frac outside (0, 1) restores the full
// capacity. Routing the shrink through the policy (rather than a raw
// byte limit) means a shallow-capacity policy like the tiny-buffer
// regime shrinks proportionally to its own capacity, and legacy and
// resolved-mode chaos agree by construction.
func (sw *Switch) ShrinkBuffer(frac float64) {
	sw.policy.Shrink(frac)
	sw.bufLimit = sw.policy.Capacity()
}

// Policy returns the installed buffer policy (the runtime auditor
// validates drop justifications against its view).
func (sw *Switch) Policy() BufferPolicy { return sw.policy }

// PolicyName returns the installed buffer policy's registered name.
func (sw *Switch) PolicyName() string { return sw.policy.Name() }

// FCName returns the installed flow-control policy's name ("none" when
// flow control is off).
func (sw *Switch) FCName() string {
	if sw.fc == nil {
		return "none"
	}
	return sw.fc.Name()
}

// Lossless reports whether the installed flow control claims lossless
// operation (admission suppresses threshold drops).
func (sw *Switch) Lossless() bool { return sw.lossless }

// SkewUsedForTest corrupts the MMU occupancy counter by delta bytes.
// Test-only: it exists so internal/audit can prove the runtime auditor
// detects accounting bugs; never call it from model code.
func (sw *Switch) SkewUsedForTest(delta int64) { sw.used += delta }

// QueueBytes returns the instantaneous depth of an egress port across
// all its class queues.
func (sw *Switch) QueueBytes(port int) int64 { return sw.ports[port].totalBytes() }

// ClassQueueBytes returns the instantaneous depth of one class queue.
func (sw *Switch) ClassQueueBytes(port, tc int) int64 { return sw.ports[port].qs[tc].bytes }

// RedQueueBytes returns the red (unimportant) bytes on an egress port.
func (sw *Switch) RedQueueBytes(port int) int64 {
	var n int64
	for i := range sw.ports[port].qs {
		n += sw.ports[port].qs[i].red
	}
	return n
}

// MaxQueueBytes returns the high-water mark across the port's queues.
func (sw *Switch) MaxQueueBytes(port int) int64 {
	var n int64
	for i := range sw.ports[port].qs {
		if m := sw.ports[port].qs[i].maxBytes; m > n {
			n = m
		}
	}
	return n
}

// MaxRedQueueBytes returns the high-water mark of red bytes on a port.
func (sw *Switch) MaxRedQueueBytes(port int) int64 {
	var n int64
	for i := range sw.ports[port].qs {
		if m := sw.ports[port].qs[i].maxRedBytes; m > n {
			n = m
		}
	}
	return n
}

// Tx returns the transmitter for a port (for pause-time accounting).
func (sw *Switch) Tx(port int) *Tx { return sw.ports[port].tx }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// SetRoute installs the ECMP egress port group for a destination host.
// Indexes are absolute NodeIDs; on a switch configured with
// SetRouteTableAt the destination must be at or above the table base.
func (sw *Switch) SetRoute(dst packet.NodeID, egress []int) {
	d := int(dst) - sw.routeBase
	for d >= len(sw.routes) {
		sw.routes = append(sw.routes, nil)
		sw.route1 = append(sw.route1, -1)
	}
	sw.routes[d] = egress
	if len(egress) == 1 {
		sw.route1[d] = int32(egress[0])
	} else {
		sw.route1[d] = -1
	}
}

// SetRouteTable installs a whole routing table at once. The slice may
// be shared between switches with identical forwarding behavior (all
// cores of a fat-tree, all aggregates of one pod), which collapses the
// dominant O(switches × hosts) FIB cost of big Clos fabrics to one
// table per equivalence class. Shared tables must not be mutated
// afterward via SetRoute/reroute.
func (sw *Switch) SetRouteTable(table [][]int) {
	sw.routes, sw.routeBase = table, 0
	sw.route1 = FlatRoutes(table)
}

// SetRouteTableAt installs a routing table covering destinations
// [base, base+len(table)); anything outside falls through to the
// default route. Fat-tree edge and aggregation switches use it so a
// table over their local host range costs O(local hosts), not
// O(all hosts) of nil-prefix padding.
func (sw *Switch) SetRouteTableAt(base packet.NodeID, table [][]int) {
	sw.routes, sw.routeBase = table, int(base)
	sw.route1 = FlatRoutes(table)
}

// SetRouteTableFlatAt is SetRouteTableAt for callers that precomputed
// the table's FlatRoutes projection: switches sharing one table (one
// forwarding-equivalence class) then also share one flat array instead
// of each deriving an O(hosts) copy.
func (sw *Switch) SetRouteTableFlatAt(base packet.NodeID, table [][]int, flat []int32) {
	sw.routes, sw.routeBase = table, int(base)
	sw.route1 = flat
}

// FlatRoutes computes the unicast projection of a routing table: the
// egress port for every single-port group, -1 elsewhere. The result may
// be shared between switches exactly like the table it was derived from.
func FlatRoutes(table [][]int) []int32 {
	flat := make([]int32, len(table))
	for i, g := range table {
		if len(g) == 1 {
			flat[i] = int32(g[0])
		} else {
			flat[i] = -1
		}
	}
	return flat
}

// SetDefaultRoute installs the ECMP group used when a destination has
// no specific entry (typically a Clos switch's uplinks).
func (sw *Switch) SetDefaultRoute(egress []int) { sw.defaultRoute = egress }

func (sw *Switch) attach(port int, tx *Tx) {
	p := sw.ports[port]
	p.tx = tx
	tx.dequeue = func() (*packet.Packet, int) { return sw.dequeue(port) }
	if sw.cfg.INT {
		tx.onTransmit = func(pkt *packet.Packet) {
			if pkt.Type == packet.Data {
				if pkt.AppendINT(packet.INTHop{
					QueueBytes: p.totalBytes(),
					TxBytes:    tx.TxBytes,
					Timestamp:  sw.sim.Now(),
					RateBps:    tx.RateBps,
				}) {
					sw.Ctr.INTOverflow++
				}
			}
		}
	}
}

// ecmpHash deterministically selects among n equal-cost ports for a flow.
func (sw *Switch) ecmpHash(flow packet.FlowID, n int) int {
	x := uint64(flow) ^ (uint64(sw.id) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// Receive implements Device: route, admit, enqueue.
func (sw *Switch) Receive(pkt *packet.Packet, inPort int) {
	if sw.failed {
		// Dead switch: everything that arrives is black-holed. PFC
		// control frames just vanish; routed packets are counted.
		if pkt.Type != packet.Pause && pkt.Type != packet.Resume {
			sw.Ctr.DropSwitchFail++
		}
		sw.recycle(pkt)
		return
	}
	switch pkt.Type {
	case packet.Pause:
		sw.pauseRx(inPort)
		sw.recycle(pkt)
		return
	case packet.Resume:
		sw.resumeRx(inPort)
		sw.recycle(pkt)
		return
	}

	d := int(pkt.Dst) - sw.routeBase
	if uint(d) < uint(len(sw.route1)) {
		if p := sw.route1[d]; p >= 0 {
			// Unicast fast path: the destination resolves to exactly
			// one egress port, read from the dense projection.
			sw.enqueue(pkt, inPort, int(p))
			return
		}
	}
	group := sw.defaultRoute
	if d >= 0 && d < len(sw.routes) {
		if g := sw.routes[d]; len(g) > 0 {
			group = g
		}
	}
	if len(group) == 0 {
		panic(fmt.Sprintf("switch %d: no route to %d", sw.id, pkt.Dst))
	}
	egress := group[0]
	if len(group) > 1 {
		egress = group[sw.ecmpHash(pkt.Flow, len(group))]
	}
	sw.enqueue(pkt, inPort, egress)
}

func (sw *Switch) enqueue(pkt *packet.Packet, inPort, egress int) {
	p := sw.ports[egress]
	tc := int(pkt.TC)
	if tc >= len(p.qs) {
		tc = len(p.qs) - 1
	}
	q := &p.qs[tc]
	size := int64(pkt.WireSize())
	free := sw.bufLimit - sw.used
	green := pkt.Mark.Color() == packet.Green

	// Admission control, delegated to the bound BufferPolicy. Rejected
	// packets die here: once the audit hook has seen them they go back
	// to the free list.
	if reason, ok := sw.policy.Admit(egress, tc, q.bytes, free, size, green); !ok {
		switch reason {
		case DropReasonBufferFull:
			sw.drop(pkt, &sw.Ctr.DropBufferFull)
		case DropReasonColor:
			sw.Ctr.DropRedColor++
		case DropReasonDynamic:
			sw.drop(pkt, &sw.Ctr.DropDynamic)
		default:
			sw.drop(pkt, &sw.Ctr.DropPolicy)
		}
		if sw.Audit != nil {
			sw.Audit.OnDrop(sw, egress, tc, pkt, reason, q.bytes, free)
		}
		sw.recycle(pkt)
		return
	}

	// ECN marking on the instantaneous queue at enqueue time.
	if pkt.ECT && !pkt.CE {
		switch sw.cfg.ECN {
		case ECNStep:
			if q.bytes+size > sw.cfg.KEcn {
				pkt.CE = true
				sw.Ctr.ECNMarked++
			}
		case ECNRed:
			depth := q.bytes + size
			var prob float64
			switch {
			case depth <= sw.cfg.KMin:
				prob = 0
			case depth >= sw.cfg.KMax:
				prob = 1
			default:
				prob = sw.cfg.PMax * float64(depth-sw.cfg.KMin) / float64(sw.cfg.KMax-sw.cfg.KMin)
			}
			if prob > 0 && sw.rng.Float64() < prob {
				pkt.CE = true
				sw.Ctr.ECNMarked++
			}
		}
	}

	if green {
		sw.Ctr.EnqGreen++
	} else {
		sw.Ctr.EnqRed++
	}

	pkt.EnqIngress = inPort
	sw.used += size
	q.push(pkt, size)
	if sw.Audit != nil {
		sw.Audit.OnEnqueue(sw, egress, tc, pkt)
	}

	// Flow-control ingress accounting (PFC XOFF thresholds, BFC per-hop
	// queue backpressure): the policy may pause upstream transmitters.
	if sw.fc != nil {
		sw.fc.OnEnqueue(inPort, egress, tc, size)
	}

	p.tx.Kick()
}

func (sw *Switch) drop(pkt *packet.Packet, ctr *int64) {
	*ctr++
	if pkt.Mark.Color() == packet.Green {
		sw.Ctr.DropGreen++
	}
}

// dequeue serves the port's class queues round-robin.
func (sw *Switch) dequeue(port int) (*packet.Packet, int) {
	p := sw.ports[port]
	var pkt *packet.Packet
	var size int64
	tc := 0
	for i := 0; i < len(p.qs); i++ {
		cls := p.rr
		q := &p.qs[cls]
		p.rr++
		if p.rr == len(p.qs) {
			p.rr = 0
		}
		if pkt, size = q.popFront(); pkt != nil {
			tc = cls
			break
		}
	}
	if pkt == nil {
		return nil, 0
	}
	sw.used -= size
	if sw.Audit != nil {
		sw.Audit.OnDequeue(sw, port, tc, pkt)
	}

	if sw.fc != nil {
		sw.fc.OnDequeue(pkt.EnqIngress, port, tc, size)
	}
	return pkt, int(size)
}

// pauseRx handles a received PFC PAUSE frame for an egress port.
func (sw *Switch) pauseRx(port int) {
	p := sw.ports[port]
	if sw.cfg.PFCWatchdog && sw.sim.Now() < p.wdIgnoreUntil {
		// Mitigation window after a watchdog fire: the port stays up no
		// matter how hard the peer storms.
		return
	}
	wasPaused := p.tx.Paused()
	p.tx.Pause()
	if !wasPaused && sw.Audit != nil {
		sw.Audit.OnPauseRx(sw, port, true)
	}
	if sw.cfg.PFCWatchdog && !p.wdPending {
		p.wdPending = true
		if p.wdEv == nil {
			p.wdEv = sw.sim.NewKindEvent(kindWatchdogCheck, 0, &wdRef{sw: sw, port: port})
		}
		p.wdTimer = sw.sim.ScheduleTimer(p.wdEv, sw.sim.Now()+sw.cfg.WatchdogThreshold)
	}
}

// resumeRx handles a received PFC RESUME frame for an egress port.
func (sw *Switch) resumeRx(port int) {
	p := sw.ports[port]
	if p.tx.Paused() && sw.Audit != nil {
		sw.Audit.OnPauseRx(sw, port, false)
	}
	p.tx.Resume()
}

// watchdogCheck fires WatchdogThreshold after a port became paused: if
// the port has now been continuously paused for at least the threshold,
// the watchdog mitigates; if the pause stretch restarted meanwhile it
// re-arms for the instant the current stretch would cross the threshold.
func (sw *Switch) watchdogCheck(port int) {
	p := sw.ports[port]
	p.wdPending = false
	if sw.failed || !p.tx.Paused() {
		return
	}
	since := p.tx.PausedSince()
	if sw.sim.Now()-since < sw.cfg.WatchdogThreshold {
		p.wdPending = true
		p.wdTimer = sw.sim.ScheduleTimer(p.wdEv, since+sw.cfg.WatchdogThreshold)
		return
	}
	// Drop-and-unpause: everything queued behind the stuck port is
	// dropped (crediting PFC ingress accounting so upstream unpauses),
	// the port resumes, and PAUSE frames are ignored for the restore
	// window.
	sw.Ctr.WatchdogFires++
	sw.Ctr.WatchdogDrops += sw.flushPort(port, DropReasonWatchdog, true)
	p.wdIgnoreUntil = sw.sim.Now() + sw.cfg.WatchdogRestore
	if sw.Audit != nil {
		sw.Audit.OnPauseRx(sw, port, false)
	}
	p.tx.Resume()
}

// flushPort drops every packet queued on an egress port, returning the
// count. credit releases flow-control accounting per packet (watchdog
// mitigation); a rebooting switch resets that state wholesale instead.
// With no flow control bound, crediting is inert — the watchdog works
// identically whether the local policy is PFC, BFC or nothing.
func (sw *Switch) flushPort(port int, reason DropReason, credit bool) int64 {
	p := sw.ports[port]
	var n int64
	for c := range p.qs {
		q := &p.qs[c]
		for {
			pkt, size := q.popFront()
			if pkt == nil {
				break
			}
			sw.used -= size
			n++
			if pkt.Mark.Color() == packet.Green {
				sw.Ctr.DropGreen++
			}
			if sw.Audit != nil {
				sw.Audit.OnDrop(sw, port, c, pkt, reason, q.bytes, sw.bufLimit-sw.used)
			}
			if credit && sw.fc != nil {
				sw.fc.OnDequeue(pkt.EnqIngress, port, c, size)
			}
			sw.recycle(pkt)
		}
	}
	return n
}

// Fail kills the switch: every packet arriving while it is down is
// black-holed, and egress serialization freezes after the frames already
// on the wire (the cables are intact; the forwarding plane is gone).
func (sw *Switch) Fail() {
	if sw.failed {
		return
	}
	sw.failed = true
	for _, p := range sw.ports {
		p.tx.Freeze()
	}
}

// Failed reports whether the switch is currently dead.
func (sw *Switch) Failed() bool { return sw.failed }

// Reboot restores a failed switch with a factory-fresh MMU: buffered
// packets are lost (counted as switch-fail drops), flow-control
// accounting, pause state and watchdog state restart from zero. The
// installed policies survive the reboot (the chip's configuration is
// persistent) but their per-run state resets. Peers the dead switch had
// XOFF'd are NOT resumed — that state died with it; their own pause
// timeout or watchdog must release them.
func (sw *Switch) Reboot() {
	if !sw.failed {
		return
	}
	for i := range sw.ports {
		sw.Ctr.DropSwitchFail += sw.flushPort(i, DropReasonSwitchFail, false)
	}
	sw.failed = false
	sw.policy.Reset()
	sw.bufLimit = sw.policy.Capacity()
	if sw.fc != nil {
		sw.fc.Reset()
	}
	for _, p := range sw.ports {
		p.wdPending = false
		// The check event may still be outstanding from before the
		// failure; cancel it so the fresh watchdog state can re-arm.
		p.wdTimer.Stop()
		p.wdIgnoreUntil = 0
		p.tx.Resume() // received-pause state was lost with the reboot
		p.tx.Unfreeze()
	}
	if sw.Audit != nil {
		sw.Audit.OnReset(sw)
	}
}
