package stats

import (
	"tlt/internal/sim"
)

// Epochs is a bounded time-series rollup: fixed-width bins of flow
// issues, completions, and completed bytes. Bins are integer counters
// indexed by event time, so per-shard instances merge element-wise and
// the result is independent of how flows were partitioned across
// shards. Memory is O(horizon/width), never O(flows).
type Epochs struct {
	Width  sim.Time
	Issued []int64
	Done   []int64
	Bytes  []int64
}

// NewEpochs returns an empty rollup with the given bin width.
func NewEpochs(width sim.Time) *Epochs {
	if width <= 0 {
		width = sim.Millisecond
	}
	return &Epochs{Width: width}
}

func (e *Epochs) bin(t sim.Time) int {
	if t < 0 {
		t = 0
	}
	idx := int(t / e.Width)
	for len(e.Issued) <= idx {
		e.Issued = append(e.Issued, 0)
		e.Done = append(e.Done, 0)
		e.Bytes = append(e.Bytes, 0)
	}
	return idx
}

// AddIssued counts one flow issued at time t.
func (e *Epochs) AddIssued(t sim.Time) { e.Issued[e.bin(t)]++ }

// AddDone counts one flow completed at time t delivering size bytes.
func (e *Epochs) AddDone(t sim.Time, size int64) {
	idx := e.bin(t)
	e.Done[idx]++
	e.Bytes[idx] += size
}

// Merge folds o into e element-wise. Widths must match.
func (e *Epochs) Merge(o *Epochs) {
	if o == nil {
		return
	}
	for len(e.Issued) < len(o.Issued) {
		e.Issued = append(e.Issued, 0)
		e.Done = append(e.Done, 0)
		e.Bytes = append(e.Bytes, 0)
	}
	for i := range o.Issued {
		e.Issued[i] += o.Issued[i]
		e.Done[i] += o.Done[i]
		e.Bytes[i] += o.Bytes[i]
	}
}

// PeakLive returns the maximum number of simultaneously open flows
// observed at epoch granularity: the max over bin boundaries of
// cumulative issues minus cumulative completions. Because it is
// computed from the merged series it is shard-count invariant (unlike
// per-shard live peaks, which depend on the partition).
func (e *Epochs) PeakLive() int64 {
	var live, peak int64
	for i := range e.Issued {
		live += e.Issued[i] - e.Done[i]
		if live > peak {
			peak = live
		}
	}
	return peak
}

// ClassStream aggregates one traffic class (foreground or background)
// of a streaming run: a bounded FCT histogram plus the same counter
// families FlowRecord tracks, folded in as flows retire instead of
// being kept per-flow.
type ClassStream struct {
	FCT *Hist // completed-flow FCTs, nanoseconds

	Issued    int64
	Done      int64
	Aborted   int64
	DoneBytes int64 // bytes of completed flows

	Timeouts    int64
	RTOLowFires int64
	FastRecov   int64
	RetxPackets int64
	SentPackets int64
	ImpPackets  int64
	ImpBytes    int64
	TotalBytes  int64
	ClockBytes  int64
	ClockSends  int64
}

// FoldSender accumulates the sender-owned counters of a retiring flow.
// Call exactly once per flow, on the shard that owns the sender.
func (cs *ClassStream) FoldSender(fr *FlowRecord) {
	cs.Timeouts += int64(fr.Timeouts)
	cs.RTOLowFires += int64(fr.RTOLowFires)
	cs.FastRecov += int64(fr.FastRecov)
	cs.RetxPackets += int64(fr.RetxPackets)
	cs.SentPackets += int64(fr.SentPackets)
	cs.ImpPackets += int64(fr.ImpPackets)
	cs.ImpBytes += fr.ImpBytes
	cs.TotalBytes += fr.TotalBytes
	cs.ClockBytes += fr.ClockBytes
	cs.ClockSends += int64(fr.ClockSends)
}

// FoldDone records a completion observed on the receiver shard.
func (cs *ClassStream) FoldDone(fct sim.Time, size int64) {
	cs.Done++
	cs.DoneBytes += size
	cs.FCT.Record(int64(fct))
}

// Stream is one shard's bounded-memory aggregate of a streaming run:
// two traffic classes, a queue-depth histogram, and epoch rollups.
// Per-shard Streams merge element-wise after the run joins; every field
// is integer-derived, so the merged result is identical at any shard
// count.
type Stream struct {
	FG, BG ClassStream
	Queue  *Hist // queue-depth samples, bytes
	Epochs *Epochs
}

// NewStream returns an empty stream aggregate with the given epoch width.
func NewStream(epochWidth sim.Time) *Stream {
	return &Stream{
		FG:     ClassStream{FCT: NewHist()},
		BG:     ClassStream{FCT: NewHist()},
		Queue:  NewHist(),
		Epochs: NewEpochs(epochWidth),
	}
}

// Class returns the aggregate for the given traffic class.
func (st *Stream) Class(fg bool) *ClassStream {
	if fg {
		return &st.FG
	}
	return &st.BG
}

// Merge folds o into st.
func (st *Stream) Merge(o *Stream) {
	if o == nil {
		return
	}
	mergeClass(&st.FG, &o.FG)
	mergeClass(&st.BG, &o.BG)
	st.Queue.Merge(o.Queue)
	st.Epochs.Merge(o.Epochs)
}

func mergeClass(dst, src *ClassStream) {
	dst.FCT.Merge(src.FCT)
	dst.Issued += src.Issued
	dst.Done += src.Done
	dst.Aborted += src.Aborted
	dst.DoneBytes += src.DoneBytes
	dst.Timeouts += src.Timeouts
	dst.RTOLowFires += src.RTOLowFires
	dst.FastRecov += src.FastRecov
	dst.RetxPackets += src.RetxPackets
	dst.SentPackets += src.SentPackets
	dst.ImpPackets += src.ImpPackets
	dst.ImpBytes += src.ImpBytes
	dst.TotalBytes += src.TotalBytes
	dst.ClockBytes += src.ClockBytes
	dst.ClockSends += src.ClockSends
}

// Reset re-initializes a FlowRecord for reuse from a free list, so
// streaming runs recycle records instead of growing the arena O(flows).
func (r *FlowRecord) Reset() {
	*r = FlowRecord{}
}
