package stats

import "math/rand"

// Reservoir performs uniform reservoir sampling so CDFs over tens of
// millions of per-packet samples stay memory-bounded.
type Reservoir struct {
	cap  int
	seen int64
	xs   []float64
	rng  *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers a sample.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.xs) < r.cap {
		r.xs = append(r.xs, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.xs[j] = x
	}
}

// Samples returns the retained samples (not a copy).
func (r *Reservoir) Samples() []float64 { return r.xs }

// Seen returns how many samples were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }
