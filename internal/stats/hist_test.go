package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tlt/internal/sim"
)

// Bucket index and midpoint must agree: every value's bucket midpoint
// is within half a bucket width, i.e. relative error <= 1/256.
func TestHistBucketError(t *testing.T) {
	vals := []int64{0, 1, 255, 256, 257, 511, 512, 1023, 1 << 20, 1<<40 + 12345, 1<<62 + 999}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	for _, v := range vals {
		idx := histIdx(v)
		mid := histMid(idx)
		if v < 256 {
			if mid != v {
				t.Fatalf("value %d: exact bucket returned %d", v, mid)
			}
			continue
		}
		if relErr(mid, v) > 1.0/256+1e-12 {
			t.Fatalf("value %d: midpoint %d has relative error %g > 1/256", v, mid, relErr(mid, v))
		}
	}
}

func relErr(got, want int64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// Streaming quantiles must stay within 1% of the exact nearest-rank
// quantile over adversarial distributions (heavy tails, clusters).
func TestHistQuantileWithinOnePercent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 2e6) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"tiny":      func() int64 { return rng.Int63n(200) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000_000 + rng.Int63n(1000)
			}
			return 10_000 + rng.Int63n(100)
		},
	}
	ps := []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}
	for name, draw := range dists {
		h := NewHist()
		exact := make([]int64, 0, 50000)
		for i := 0; i < 50000; i++ {
			v := draw()
			h.Record(v)
			exact = append(exact, v)
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, p := range ps {
			rank := int(math.Ceil(p * float64(len(exact))))
			if rank < 1 {
				rank = 1
			}
			want := exact[rank-1]
			got := h.Quantile(p)
			if relErr(got, want) > 0.01 {
				t.Errorf("%s p%g: streaming %d vs exact %d (relative error %g)",
					name, p*100, got, want, relErr(got, want))
			}
		}
		if h.Count() != int64(len(exact)) {
			t.Errorf("%s: count %d != %d", name, h.Count(), len(exact))
		}
		var sum int64
		for _, v := range exact {
			sum += v
		}
		if h.Sum() != sum {
			t.Errorf("%s: sum %d != exact %d", name, h.Sum(), sum)
		}
		if h.Min() != exact[0] || h.Max() != exact[len(exact)-1] {
			t.Errorf("%s: min/max %d/%d != exact %d/%d", name, h.Min(), h.Max(), exact[0], exact[len(exact)-1])
		}
	}
}

// Merging per-shard histograms must be independent of merge order and
// of how samples were partitioned — the shard-invariance contract.
func TestHistMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 20000)
	for i := range samples {
		samples[i] = int64(rng.ExpFloat64() * 1e7)
	}

	whole := NewHist()
	for _, v := range samples {
		whole.Record(v)
	}

	for _, shards := range []int{2, 4, 7} {
		parts := make([]*Hist, shards)
		for i := range parts {
			parts[i] = NewHist()
		}
		for i, v := range samples {
			parts[i%shards].Record(v)
		}
		// Forward merge order.
		fwd := NewHist()
		for _, p := range parts {
			fwd.Merge(p)
		}
		// Reverse merge order.
		rev := NewHist()
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		for _, p := range []float64{0, 0.5, 0.99, 1} {
			if fwd.Quantile(p) != whole.Quantile(p) || rev.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("shards=%d p=%g: merge not invariant (%d / %d / whole %d)",
					shards, p, fwd.Quantile(p), rev.Quantile(p), whole.Quantile(p))
			}
		}
		if fwd.Sum() != whole.Sum() || fwd.Count() != whole.Count() {
			t.Fatalf("shards=%d: sum/count diverge after merge", shards)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Merge(NewHist())
	h.Merge(nil)
	if h.Count() != 0 {
		t.Fatal("merging empties must stay empty")
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatal("negative values must clamp to zero")
	}
}

func TestEpochsPeakLiveAndMerge(t *testing.T) {
	e := NewEpochs(sim.Millisecond)
	// Three flows issued in bin 0, two complete in bin 1, one in bin 3.
	e.AddIssued(0)
	e.AddIssued(100 * sim.Microsecond)
	e.AddIssued(900 * sim.Microsecond)
	e.AddDone(1100*sim.Microsecond, 1000)
	e.AddDone(1200*sim.Microsecond, 2000)
	e.AddDone(3500*sim.Microsecond, 3000)
	if got := e.PeakLive(); got != 3 {
		t.Fatalf("PeakLive = %d, want 3", got)
	}

	// Partition the same events across two shards; the merged series
	// must match the single-shard one exactly.
	a, b := NewEpochs(sim.Millisecond), NewEpochs(sim.Millisecond)
	a.AddIssued(0)
	b.AddIssued(100 * sim.Microsecond)
	a.AddIssued(900 * sim.Microsecond)
	b.AddDone(1100*sim.Microsecond, 1000)
	a.AddDone(1200*sim.Microsecond, 2000)
	b.AddDone(3500*sim.Microsecond, 3000)
	a.Merge(b)
	if a.PeakLive() != e.PeakLive() {
		t.Fatalf("merged PeakLive %d != whole %d", a.PeakLive(), e.PeakLive())
	}
	for i := range e.Issued {
		if a.Issued[i] != e.Issued[i] || a.Done[i] != e.Done[i] || a.Bytes[i] != e.Bytes[i] {
			t.Fatalf("bin %d diverges after merge", i)
		}
	}
}

func TestStreamMergeAndFold(t *testing.T) {
	st := NewStream(sim.Millisecond)
	fr := &FlowRecord{Timeouts: 2, SentPackets: 10, TotalBytes: 9000, ImpPackets: 3, ImpBytes: 100}
	st.Class(true).FoldSender(fr)
	st.Class(true).Issued++
	st.Class(true).FoldDone(5*sim.Millisecond, 9000)
	st.Class(false).Issued++

	o := NewStream(sim.Millisecond)
	o.Class(false).FoldDone(8*sim.Millisecond, 500)
	o.Queue.Record(4096)

	st.Merge(o)
	if st.FG.Timeouts != 2 || st.FG.Done != 1 || st.BG.Done != 1 || st.Queue.Count() != 1 {
		t.Fatalf("merge lost counters: %+v %+v queue=%d", st.FG, st.BG, st.Queue.Count())
	}
	if st.FG.FCT.QuantileDur(1) != 5*sim.Millisecond {
		t.Fatalf("FG FCT max = %v", st.FG.FCT.QuantileDur(1))
	}

	fr.Reset()
	if fr.Timeouts != 0 || fr.Flow != nil || fr.TotalBytes != 0 {
		t.Fatal("Reset left state behind")
	}
}
