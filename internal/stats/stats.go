// Package stats collects per-flow and network-wide measurements and
// computes the aggregates the paper reports: FCT percentiles, timeout
// counts, pause statistics, delivery-time CDFs and loss rates.
package stats

import (
	"fmt"
	"math"
	"sort"

	"tlt/internal/sim"
	"tlt/internal/transport"
)

// FlowRecord tracks one flow's lifetime statistics. Transports mutate the
// exported counters directly while the flow runs.
//
// In a sharded run a flow's sender and receiver may live on different
// shards, so the record's fields are split by owner: End/Done and the
// Rx* counters belong to the receiver, everything else to the sender.
// Neither side reads or writes the other's fields mid-run; aggregates
// that need both (ImportantFraction) sum them after the run joins.
type FlowRecord struct {
	Flow *transport.Flow
	// End / Done are stamped by the receiver at completion.
	End  sim.Time
	Done bool
	// Aborted marks a flow its sender gave up on (max retries exhausted
	// against a black hole), with the abort instant in AbortEnd. Done
	// stays false unless the completion was already in flight, so
	// aborted flows never contaminate FCT statistics.
	Aborted  bool
	AbortEnd sim.Time

	Timeouts    int // RTO expirations
	RTOLowFires int // IRN RTO_low expirations (cheap designed recovery, not counted as timeouts)
	FastRecov   int // fast-recovery episodes
	RetxPackets int // retransmitted data packets
	SentPackets int // data packets sent (including retx)
	ImpPackets  int // packets sent marked important (green), incl. control
	ImpBytes    int64
	TotalBytes  int64 // wire bytes sent
	ClockBytes  int64 // bytes injected by important ACK-clocking
	ClockSends  int   // important ACK-clocking transmissions

	// Receiver-owned mirrors of the wire-byte counters, for transports
	// whose receiver sends autonomously (RoCE ACK/CNP generation).
	RxImpPackets int
	RxImpBytes   int64
	RxTotalBytes int64
}

// FCT returns the flow completion time.
func (r *FlowRecord) FCT() sim.Time { return r.End - r.Flow.Start }

// Recorder aggregates all flow records of one simulation run.
type Recorder struct {
	Flows []*FlowRecord

	// arena is the current FlowRecord allocation chunk. Records are
	// handed out as pointers into it, so a chunk is never grown in
	// place (that would move live records): when full, a fresh chunk
	// replaces it and the old one stays alive through Flows. This turns
	// one allocation per flow into one per arenaChunk flows.
	arena []FlowRecord

	// DeliverySamples optionally collects per-segment delivery times
	// (first transmission to acknowledgment), for Fig. 16.
	DeliverySamples *Reservoir
	// RTTSamples / RTOSamples optionally collect per-ACK measured RTTs
	// and the resulting estimated RTO, for Fig. 1. Split by flow class.
	RTTSamplesFG, RTTSamplesBG *Reservoir
	RTOSamplesFG, RTOSamplesBG *Reservoir
}

// arenaChunk is the FlowRecord arena granularity.
const arenaChunk = 512

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Reserve pre-sizes the recorder for n flows, so a run with a known flow
// count pays one Flows allocation and ⌈n/arenaChunk⌉ record chunks.
func (rec *Recorder) Reserve(n int) {
	if cap(rec.Flows)-len(rec.Flows) < n {
		flows := make([]*FlowRecord, len(rec.Flows), len(rec.Flows)+n)
		copy(flows, rec.Flows)
		rec.Flows = flows
	}
}

// NewFlowRecord registers a flow and returns its record. The record is
// pointer-stable for the recorder's lifetime.
func (rec *Recorder) NewFlowRecord(f *transport.Flow) *FlowRecord {
	if len(rec.arena) == cap(rec.arena) {
		rec.arena = make([]FlowRecord, 0, arenaChunk)
	}
	rec.arena = append(rec.arena, FlowRecord{Flow: f})
	fr := &rec.arena[len(rec.arena)-1]
	rec.Flows = append(rec.Flows, fr)
	return fr
}

// FlowDone finalizes a record.
func (rec *Recorder) FlowDone(fr *FlowRecord, at sim.Time) {
	fr.End = at
	fr.Done = true
}

// FlowAborted finalizes a record for a sender that gave up (terminal,
// but never counted as completed). Only sender-owned fields move: a
// completion already in flight from the receiver may still land.
func (rec *Recorder) FlowAborted(fr *FlowRecord, at sim.Time) {
	fr.AbortEnd = at
	fr.Aborted = true
}

// AbortedCount returns how many flows ended in a terminal abort — the
// sender gave up and no completion ever arrived.
func (rec *Recorder) AbortedCount() int {
	n := 0
	for _, fr := range rec.Flows {
		if fr.Aborted && !fr.Done {
			n++
		}
	}
	return n
}

// Select returns the completed-flow FCTs in seconds matching the filter.
func (rec *Recorder) Select(fg bool) []float64 {
	var out []float64
	for _, fr := range rec.Flows {
		if fr.Done && fr.Flow.FG == fg {
			out = append(out, fr.FCT().Seconds())
		}
	}
	return out
}

// CompletedCount returns (completed, total) flows for a class.
func (rec *Recorder) CompletedCount(fg bool) (done, total int) {
	for _, fr := range rec.Flows {
		if fr.Flow.FG != fg {
			continue
		}
		total++
		if fr.Done {
			done++
		}
	}
	return
}

// Timeouts returns total RTO expirations across flows in a class.
func (rec *Recorder) Timeouts(fg bool) int {
	n := 0
	for _, fr := range rec.Flows {
		if fr.Flow.FG == fg {
			n += fr.Timeouts
		}
	}
	return n
}

// TimeoutsAll returns total RTO expirations across all flows.
func (rec *Recorder) TimeoutsAll() int {
	return rec.Timeouts(true) + rec.Timeouts(false)
}

// FlowsWithTimeouts counts flows that experienced at least one timeout.
func (rec *Recorder) FlowsWithTimeouts() int {
	n := 0
	for _, fr := range rec.Flows {
		if fr.Timeouts > 0 {
			n++
		}
	}
	return n
}

// ImportantFraction returns the fraction of sent wire bytes carried by
// important (green) packets, across all flows (Fig. 10/11a).
func (rec *Recorder) ImportantFraction() float64 {
	var imp, tot int64
	for _, fr := range rec.Flows {
		imp += fr.ImpBytes + fr.RxImpBytes
		tot += fr.TotalBytes + fr.RxTotalBytes
	}
	if tot == 0 {
		return 0
	}
	return float64(imp) / float64(tot)
}

// Goodput returns aggregate application bytes delivered per second for a
// class over the measurement window.
func (rec *Recorder) Goodput(fg bool, elapsed sim.Time) float64 {
	var bytes int64
	for _, fr := range rec.Flows {
		if fr.Done && fr.Flow.FG == fg {
			bytes += fr.Flow.Size
		}
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds()
}

// Percentile returns the p-quantile (0..1) of xs using nearest-rank on a
// sorted copy. Returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// Sorted returns a sorted copy of xs, for feeding PercentileSorted when
// a caller wants several quantiles of the same data: one copy and one
// sort instead of one per quantile.
func Sorted(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}

// PercentileSorted is Percentile for already-sorted input; it neither
// copies nor sorts, so repeated quantile queries over the same data (the
// figure folds ask for p99.9, p99 and the mean of one run's FCTs) can
// sort once and share the slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CDF returns (value, cumulative fraction) points for plotting.
func CDF(xs []float64, points int) [][2]float64 {
	if len(xs) == 0 || points <= 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([][2]float64, 0, points)
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(math.Ceil(frac*float64(len(sorted)))) - 1
		out = append(out, [2]float64{sorted[idx], frac})
	}
	return out
}

// FmtDur renders seconds with an adaptive unit for report rows.
func FmtDur(sec float64) string {
	switch {
	case math.IsNaN(sec):
		return "n/a"
	case sec >= 1:
		return fmt.Sprintf("%.3fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.1fus", sec*1e6)
	}
}
