package stats

import (
	"math/bits"

	"tlt/internal/sim"
)

// Hist is a streaming log-linear ("HDR-style") histogram over
// non-negative int64 values. It replaces keep-every-sample slices on
// million-flow runs: memory is O(buckets) — at most histMaxBuckets
// int64 counters (~57 KiB) regardless of sample count — and recording
// is two shifts and an increment.
//
// Bucket layout: values 0..255 are exact (one bucket per value). For
// v >= 256 the value is split into a power-of-two range and 128 linear
// sub-buckets inside it: with n = bits.Len64(v) and shift = n-8, the
// bucket index is 256 + (shift-1)*128 + (v>>shift - 128). Every bucket
// therefore spans 2^shift values starting at a multiple of 2^shift, and
// the bucket's midpoint representative is off from any member value by
// at most 2^(shift-1) out of at least 128·2^shift — a relative quantile
// error bound of 1/256 (~0.4%), comfortably inside the 1% target.
// Values below 256 report exactly.
//
// All state is integer, so Merge is an element-wise add: commutative
// and associative, which makes multi-shard aggregation independent of
// merge order — a requirement for byte-identical reports at any shard
// count.
type Hist struct {
	counts []int64
	count  int64
	sum    int64 // exact sum of recorded values (int64 ns: no overflow before ~9e18)
	min    int64
	max    int64
}

// histMaxBuckets caps the bucket array: 256 exact + 56 ranges × 128.
const histMaxBuckets = 256 + 56*128

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: 1<<63 - 1, max: -1} }

// histIdx maps a non-negative value to its bucket index.
func histIdx(v int64) int {
	if v < 256 {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 8
	return 256 + (shift-1)*128 + int(v>>uint(shift)) - 128
}

// histMid returns the representative (midpoint) value of a bucket.
func histMid(idx int) int64 {
	if idx < 256 {
		return int64(idx)
	}
	shift := uint((idx-256)/128 + 1)
	sub := int64(128 + (idx-256)%128)
	return sub<<shift + 1<<(shift-1)
}

// Record adds one sample. Negative values clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := histIdx(v)
	if idx >= len(h.counts) {
		h.counts = append(h.counts, make([]int64, idx+1-len(h.counts))...)
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the exact sum of recorded values.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the nearest-rank p-quantile's bucket representative.
// p <= 0 yields Min, p >= 1 yields Max (both exact).
func (h *Hist) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := int64(p * float64(h.count))
	if float64(rank) < p*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			mid := histMid(idx)
			// Clamp to the observed range so single-bucket tails
			// never report beyond the true extremes.
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// QuantileDur returns Quantile(p) interpreted as a sim duration.
func (h *Hist) QuantileDur(p float64) sim.Time { return sim.Time(h.Quantile(p)) }

// Merge folds o into h element-wise. Safe with an empty or nil o.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		h.counts = append(h.counts, make([]int64, len(o.counts)-len(h.counts))...)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}
