package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/transport"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if !sort.Float64sAreSorted([]float64{1, 2}) || xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		p = math.Abs(math.Mod(p, 1))
		got := Percentile(xs, p)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return got >= mn && got <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Stddev(xs); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("Stddev = %v", got)
	}
	if Stddev([]float64{1}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	pts := CDF(xs, 4)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[0][1] != 0.25 {
		t.Fatalf("first point = %v", pts[0])
	}
	if pts[3][0] != 4 || pts[3][1] != 1 {
		t.Fatalf("last point = %v", pts[3])
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestRecorderFlows(t *testing.T) {
	rec := NewRecorder()
	fg := &transport.Flow{ID: 1, Size: 1000, Start: 0, FG: true}
	bg := &transport.Flow{ID: 2, Size: 5000, Start: 100}
	fr1 := rec.NewFlowRecord(fg)
	fr2 := rec.NewFlowRecord(bg)
	fr1.Timeouts = 2
	rec.FlowDone(fr1, 1000)
	if d, tot := rec.CompletedCount(true); d != 1 || tot != 1 {
		t.Fatalf("fg completed = %d/%d", d, tot)
	}
	if d, tot := rec.CompletedCount(false); d != 0 || tot != 1 {
		t.Fatalf("bg completed = %d/%d", d, tot)
	}
	if got := rec.Select(true); len(got) != 1 || got[0] != 1e-6 {
		t.Fatalf("fg FCTs = %v", got)
	}
	if rec.Timeouts(true) != 2 || rec.TimeoutsAll() != 2 {
		t.Fatal("timeout counting wrong")
	}
	if rec.FlowsWithTimeouts() != 1 {
		t.Fatal("FlowsWithTimeouts wrong")
	}
	rec.FlowDone(fr2, 100+sim.Time(2e6))
	if got := rec.Goodput(false, sim.Second); got != 5000 {
		t.Fatalf("goodput = %v", got)
	}
}

func TestImportantFraction(t *testing.T) {
	rec := NewRecorder()
	fr := rec.NewFlowRecord(&transport.Flow{ID: 1})
	fr.TotalBytes = 1000
	fr.ImpBytes = 100
	fr2 := rec.NewFlowRecord(&transport.Flow{ID: 2})
	fr2.TotalBytes = 1000
	fr2.ImpBytes = 0
	if got := rec.ImportantFraction(); got != 0.05 {
		t.Fatalf("important fraction = %v", got)
	}
}

func TestReservoirExact(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	if len(r.Samples()) != 50 || r.Seen() != 50 {
		t.Fatal("under-capacity reservoir must keep everything")
	}
}

func TestReservoirSampling(t *testing.T) {
	r := NewReservoir(1000, 42)
	const n = 100_000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if len(r.Samples()) != 1000 || r.Seen() != n {
		t.Fatalf("size = %d seen = %d", len(r.Samples()), r.Seen())
	}
	// Uniformity sanity: the sample mean should be near n/2.
	m := Mean(r.Samples())
	if m < n*0.45 || m > n*0.55 {
		t.Fatalf("reservoir mean %.0f not near %d", m, n/2)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "n/a"},
		{1.5, "1.500s"},
		{0.0042, "4.20ms"},
		{0.0000213, "21.3us"},
	}
	for _, c := range cases {
		if got := FmtDur(c.in); got != c.want {
			t.Errorf("FmtDur(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Arena chunks must never move a live record: every pointer handed out
// by NewFlowRecord stays valid (and writable) across chunk turnover.
func TestFlowRecordArenaPointerStable(t *testing.T) {
	rec := NewRecorder()
	rec.Reserve(3 * arenaChunk / 2)
	var frs []*FlowRecord
	for i := 0; i < 3*arenaChunk/2; i++ {
		fr := rec.NewFlowRecord(&transport.Flow{ID: packet.FlowID(i + 1)})
		fr.Timeouts = i
		frs = append(frs, fr)
	}
	for i, fr := range frs {
		if rec.Flows[i] != fr {
			t.Fatalf("record %d moved", i)
		}
		if fr.Flow.ID != packet.FlowID(i+1) || fr.Timeouts != i {
			t.Fatalf("record %d corrupted: %+v", i, fr)
		}
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	sorted := []float64{1, 2, 3, 4, 5}
	for _, p := range []float64{0, 0.2, 0.5, 0.99, 1} {
		if a, b := Percentile(xs, p), PercentileSorted(sorted, p); a != b {
			t.Fatalf("p=%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
	if !math.IsNaN(PercentileSorted(nil, 0.5)) {
		t.Fatal("empty input must yield NaN")
	}
}
