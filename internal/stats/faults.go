package stats

// FaultCounters aggregates injected-fault activity and auditor findings
// for one run, so chaos experiments can report how much abuse the fabric
// absorbed alongside the usual FCT metrics.
type FaultCounters struct {
	LinkFlaps     int // link down events executed
	NICFreezes    int // host NIC freeze events executed
	BufferShrinks int // MMU capacity-shrink windows executed

	DownDrops   int64 // packets lost on a dead link
	BurstyDrops int64 // packets lost to Gilbert–Elliott channels
	RandomDrops int64 // packets lost to uniform loss / drop filters

	// AuditViolations counts invariant violations observed by a
	// non-strict auditor (a strict auditor panics on the first).
	AuditViolations int64
}

// Add accumulates other into c.
func (c *FaultCounters) Add(o *FaultCounters) {
	c.LinkFlaps += o.LinkFlaps
	c.NICFreezes += o.NICFreezes
	c.BufferShrinks += o.BufferShrinks
	c.DownDrops += o.DownDrops
	c.BurstyDrops += o.BurstyDrops
	c.RandomDrops += o.RandomDrops
	c.AuditViolations += o.AuditViolations
}

// TotalInjected returns all packet losses caused by fault injection.
func (c *FaultCounters) TotalInjected() int64 {
	return c.DownDrops + c.BurstyDrops + c.RandomDrops
}

// Any reports whether any fault activity was recorded.
func (c *FaultCounters) Any() bool {
	return c.LinkFlaps > 0 || c.NICFreezes > 0 || c.BufferShrinks > 0 || c.TotalInjected() > 0
}
