package stats

// FaultCounters aggregates injected-fault activity and auditor findings
// for one run, so chaos experiments can report how much abuse the fabric
// absorbed alongside the usual FCT metrics.
type FaultCounters struct {
	LinkFlaps     int // link down events executed
	NICFreezes    int // host NIC freeze events executed
	BufferShrinks int // MMU capacity-shrink windows executed
	SwitchFails   int // switch kill events executed
	PortFails     int // single-direction port wedge events executed
	PauseStorms   int // PFC pause-storm windows executed

	DownDrops   int64 // packets lost on a dead link
	BurstyDrops int64 // packets lost to Gilbert–Elliott channels
	RandomDrops int64 // packets lost to uniform loss / drop filters
	StormFrames int64 // PFC PAUSE frames injected by pause storms

	// AuditViolations counts invariant violations observed by a
	// non-strict auditor (a strict auditor panics on the first).
	AuditViolations int64
	// PFCDeadlockCycles and PFCStormSuspects are auditor findings: pause
	// wait-for-graph cycles and ports whose continuous pause crossed the
	// storm threshold.
	PFCDeadlockCycles int64
	PFCStormSuspects  int64
}

// Add accumulates other into c.
func (c *FaultCounters) Add(o *FaultCounters) {
	c.LinkFlaps += o.LinkFlaps
	c.NICFreezes += o.NICFreezes
	c.BufferShrinks += o.BufferShrinks
	c.SwitchFails += o.SwitchFails
	c.PortFails += o.PortFails
	c.PauseStorms += o.PauseStorms
	c.DownDrops += o.DownDrops
	c.BurstyDrops += o.BurstyDrops
	c.RandomDrops += o.RandomDrops
	c.StormFrames += o.StormFrames
	c.AuditViolations += o.AuditViolations
	c.PFCDeadlockCycles += o.PFCDeadlockCycles
	c.PFCStormSuspects += o.PFCStormSuspects
}

// TotalInjected returns all packet losses caused by fault injection.
func (c *FaultCounters) TotalInjected() int64 {
	return c.DownDrops + c.BurstyDrops + c.RandomDrops
}

// Any reports whether any fault activity was recorded.
func (c *FaultCounters) Any() bool {
	return c.LinkFlaps > 0 || c.NICFreezes > 0 || c.BufferShrinks > 0 ||
		c.SwitchFails > 0 || c.PortFails > 0 || c.PauseStorms > 0 ||
		c.TotalInjected() > 0
}
