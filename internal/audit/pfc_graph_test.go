package audit

import (
	"strings"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/topo"
)

// ringSwitches builds n standalone audited switches with registered
// ring adjacency: switch i's port 0 feeds switch (i+1)%n.
func ringSwitches(t *testing.T, n int) (*sim.Sim, []*fabric.Switch, *Auditor) {
	t.Helper()
	s := sim.New()
	a := New(s)
	sws := make([]*fabric.Switch, n)
	for i := range sws {
		sws[i] = fabric.NewSwitch(s, packet.NodeID(1000+i), sim.NewRNG(int64(i)),
			fabric.SwitchConfig{Ports: 2, BufferBytes: 100_000, Alpha: 1})
		a.AttachSwitch(sws[i])
	}
	for i := range sws {
		a.SetPortPeer(sws[i], 0, sws[(i+1)%n].ID())
	}
	return s, sws, a
}

// TestDeadlockCycleDetected: pausing every port of a 3-switch ring
// closes a circular wait; the last edge must trip the detector exactly
// once, and breaking any edge must de-cycle the graph.
func TestDeadlockCycleDetected(t *testing.T) {
	_, sws, a := ringSwitches(t, 3)
	a.OnPauseRx(sws[0], 0, true)
	a.OnPauseRx(sws[1], 0, true)
	if a.DeadlockCycles != 0 {
		t.Fatalf("DeadlockCycles = %d before the cycle closed", a.DeadlockCycles)
	}
	a.OnPauseRx(sws[2], 0, true)
	if a.DeadlockCycles != 1 {
		t.Fatalf("DeadlockCycles = %d, want 1", a.DeadlockCycles)
	}
	if !strings.Contains(a.DeadlockLast, "pause cycle") {
		t.Fatalf("DeadlockLast = %q", a.DeadlockLast)
	}
	// Release one edge and re-pause it: the cycle closes a second time.
	a.OnPauseRx(sws[1], 0, false)
	a.OnPauseRx(sws[1], 0, true)
	if a.DeadlockCycles != 2 {
		t.Fatalf("DeadlockCycles = %d after re-closing, want 2", a.DeadlockCycles)
	}
}

// TestNoCycleOnChain: a linear chain of pauses (no back edge) must not
// count as deadlock no matter how long it gets.
func TestNoCycleOnChain(t *testing.T) {
	_, sws, a := ringSwitches(t, 4)
	a.OnPauseRx(sws[0], 0, true)
	a.OnPauseRx(sws[1], 0, true)
	a.OnPauseRx(sws[2], 0, true)
	// sws[3]'s port 0 never pauses, so 3→0 is missing and no cycle exists.
	if a.DeadlockCycles != 0 {
		t.Fatalf("DeadlockCycles = %d on an acyclic chain", a.DeadlockCycles)
	}
}

// TestStormAccounting: pause stretches accumulate per port; a stretch at
// or past StormThreshold counts one suspect, shorter ones do not.
func TestStormAccounting(t *testing.T) {
	s, sws, a := ringSwitches(t, 2)
	a.StormThreshold = 100 * us

	a.OnPauseRx(sws[0], 0, true)
	s.At(30*us, func() { a.OnPauseRx(sws[0], 0, false) }) // 30us: benign
	s.At(50*us, func() { a.OnPauseRx(sws[0], 0, true) })
	s.At(200*us, func() { a.OnPauseRx(sws[0], 0, false) }) // 150us: suspect
	s.RunAll()

	if a.StormSuspects != 1 {
		t.Fatalf("StormSuspects = %d, want 1", a.StormSuspects)
	}
	if got := a.PausedCum(sws[0], 0); got != 180*us {
		t.Fatalf("PausedCum = %v, want 180us", got)
	}
	if got := a.PausedMax(sws[0], 0); got != 150*us {
		t.Fatalf("PausedMax = %v, want 150us", got)
	}
}

// TestFinishPausesClosesOpenStretches: a never-released pause only shows
// up in cumulative accounting (and storm detection) after FinishPauses.
func TestFinishPausesClosesOpenStretches(t *testing.T) {
	s, sws, a := ringSwitches(t, 2)
	a.StormThreshold = 100 * us
	a.OnPauseRx(sws[1], 0, true)
	s.At(500*us, func() {})
	s.RunAll()
	if a.StormSuspects != 0 {
		t.Fatalf("StormSuspects = %d before FinishPauses", a.StormSuspects)
	}
	a.FinishPauses()
	if a.StormSuspects != 1 {
		t.Fatalf("StormSuspects = %d after FinishPauses, want 1", a.StormSuspects)
	}
	if got := a.PausedCum(sws[1], 0); got != 500*us {
		t.Fatalf("PausedCum = %v, want 500us", got)
	}
}

// TestOnResetClearsPauseState: a rebooted switch drops its open pause
// stretches and wait-for edges, so a cycle through it cannot complete
// with stale state.
func TestOnResetClearsPauseState(t *testing.T) {
	_, sws, a := ringSwitches(t, 3)
	a.OnPauseRx(sws[0], 0, true)
	a.OnPauseRx(sws[1], 0, true)
	a.OnReset(sws[1]) // reboot drops edge 1→2 and closes 1's stretches
	a.OnPauseRx(sws[2], 0, true)
	if a.DeadlockCycles != 0 {
		t.Fatalf("DeadlockCycles = %d, want 0 — reset edge should have broken the cycle", a.DeadlockCycles)
	}
	// Re-pausing after reset restores the edge and the cycle closes.
	a.OnPauseRx(sws[1], 0, true)
	if a.DeadlockCycles != 1 {
		t.Fatalf("DeadlockCycles = %d after repause, want 1", a.DeadlockCycles)
	}
}

// TestWatchdogFlushAuditClean: end-to-end over a real star fabric — a
// storm-wedged port mitigated by the watchdog must leave the auditor
// with zero violations (the flush path keeps shadow accounting exact).
func TestWatchdogFlushAuditClean(t *testing.T) {
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   us,
		Switch: fabric.SwitchConfig{
			BufferBytes: 100_000, Alpha: 1,
			PFCWatchdog:       true,
			WatchdogThreshold: 50 * us,
		},
	})
	a := New(s)
	a.Strict = true
	// The watchdog caps stretches near its 50us threshold, so lower the
	// storm bar below that to observe the suspects it mitigates.
	a.StormThreshold = 40 * us
	a.AttachSwitch(net.Switches[0])
	rx := &sink{}
	net.Hosts[0].Register(1, rx)
	for i := 0; i < 300; i++ {
		i := i
		s.At(sim.Time(i)*300, func() {
			net.Hosts[1].Send(&packet.Packet{
				Flow: 1, Dst: 0, Type: packet.Data,
				Mark: packet.ImportantData, Len: 1000, Seq: int64(i),
			})
		})
	}
	// Host 0 wedges its switch port with refreshed pauses.
	var emit func()
	end := 400 * us
	emit = func() {
		pf := net.Hosts[0].NewPacket()
		pf.Type = packet.Pause
		pf.Src = net.Hosts[0].ID()
		net.Hosts[0].NICTx().DeliverControl(pf)
		if s.Now()+2*us < end {
			s.After(2*us, emit)
		}
	}
	s.At(10*us, emit)
	s.RunAll()
	a.FinishPauses()
	sw := net.Switches[0]
	if sw.Ctr.WatchdogFires == 0 {
		t.Fatal("watchdog never fired")
	}
	if a.Violations != 0 {
		t.Fatalf("auditor flagged %d violations on a clean watchdog flush (last: %s)",
			a.Violations, a.Last)
	}
	if a.StormSuspects == 0 {
		t.Fatal("storm-length pause stretch not flagged as suspect")
	}
}
