// Package audit implements a runtime invariant auditor for the fabric
// and the TLT marking layer. It re-derives switch MMU accounting from
// the raw enqueue/dequeue event stream — independently of the switch's
// own counters — and checks, live on every event:
//
//   - shared-buffer occupancy never negative and never above the
//     physical capacity, and the switch's occupancy counter equals the
//     shadow (ΣQᵢ ≤ B, with ΣQᵢ re-summed from per-queue shadows);
//   - drops are justified: a buffer-full drop only when the headroom was
//     really short, a dynamic-threshold drop only when the
//     Choudhury–Hahne condition held (and never under PFC), and a green
//     (important) packet never dropped by the color threshold — the
//     paper's core protection guarantee;
//   - PFC XOFF/XON frames strictly alternate per ingress port;
//   - at most one important packet in flight per window-based flow.
//
// On top of the invariant checks, the auditor watches PFC pause state as
// a failure-domain detector: it accounts per-port pause durations
// (flagging storm suspects whose continuous pause exceeds a threshold)
// and maintains a pause wait-for graph over registered switch-to-switch
// links, counting cycles — the CBD (cyclic buffer dependency) signature
// of PFC deadlock. Deadlocks and storms are network pathologies, not
// simulator bugs, so they are counted as findings rather than strict
// violations.
//
// In strict mode (the default) the first violation panics with a
// packet-level context dump naming the switch, port, and packet, so a
// broken invariant stops the run at the exact event that broke it
// rather than surfacing as a skewed result plot.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Auditor checks fabric and TLT invariants as events happen. It
// implements fabric.AuditHook and core.Audit. One auditor serves a whole
// network; create a fresh one per run.
type Auditor struct {
	sim *sim.Sim

	// Strict makes the first violation panic with a context dump.
	// Non-strict auditors count violations and keep the run alive
	// (for tests of the auditor itself).
	Strict bool

	// Violations counts invariant violations observed (non-strict mode).
	Violations int64
	// Last holds the most recent violation report (non-strict mode).
	Last string

	// Events counts audited fabric events (enqueue+dequeue+drop+PFC),
	// so "zero violations" can be distinguished from "never attached".
	Events int64

	// StormThreshold classifies a port as a pause-storm suspect when one
	// continuous received-pause stretch reaches it.
	StormThreshold sim.Time
	// StormSuspects counts pause stretches that crossed StormThreshold.
	StormSuspects int64
	// DeadlockCycles counts pause events that closed a cycle in the
	// wait-for graph (a PFC deadlock signature). DeadlockLast describes
	// the most recent one.
	DeadlockCycles int64
	DeadlockLast   string

	switches map[*fabric.Switch]*swShadow
	imp      map[packet.FlowID]impState

	// Pause wait-for graph: peers maps a switch egress port to the
	// downstream device it feeds (registered by the harness from the
	// topology); edges[u][v] counts u's ports currently pause-blocked
	// by v.
	peers map[portKey]packet.NodeID
	edges map[packet.NodeID]map[packet.NodeID]int

	// Received-pause accounting per switch egress port.
	pauseOpen map[portKey]sim.Time // open stretch start
	pauseCum  map[portKey]sim.Time // cumulative paused time
	pauseMax  map[portKey]sim.Time // longest closed stretch
}

// portKey identifies one egress port of one switch.
type portKey struct {
	sw   *fabric.Switch
	port int
}

// swShadow is the auditor's independent re-derivation of one switch's
// MMU state, built purely from observed enqueues and dequeues.
type swShadow struct {
	used   int64
	queues map[[2]int]int64 // (egress, tc) → bytes
	paused map[int]bool     // ingress port → XOFF outstanding
}

type impState struct {
	inFlight bool
	sentAt   sim.Time
}

// New returns a strict auditor.
func New(s *sim.Sim) *Auditor {
	return &Auditor{
		sim:            s,
		Strict:         true,
		StormThreshold: sim.Millisecond,
		switches:       make(map[*fabric.Switch]*swShadow),
		imp:            make(map[packet.FlowID]impState),
		peers:          make(map[portKey]packet.NodeID),
		edges:          make(map[packet.NodeID]map[packet.NodeID]int),
		pauseOpen:      make(map[portKey]sim.Time),
		pauseCum:       make(map[portKey]sim.Time),
		pauseMax:       make(map[portKey]sim.Time),
	}
}

// SetPortPeer registers the downstream device fed by sw's egress port,
// giving the deadlock detector its wait-for edges. Unregistered ports
// still get pause-duration accounting, just no graph edge.
func (a *Auditor) SetPortPeer(sw *fabric.Switch, port int, peer packet.NodeID) {
	a.peers[portKey{sw, port}] = peer
}

// AttachSwitch registers the auditor as sw's audit hook.
func (a *Auditor) AttachSwitch(sw *fabric.Switch) {
	a.switches[sw] = &swShadow{
		queues: make(map[[2]int]int64),
		paused: make(map[int]bool),
	}
	sw.Audit = a
}

func (a *Auditor) shadow(sw *fabric.Switch) *swShadow {
	sh, ok := a.switches[sw]
	if !ok {
		// Hook installed without AttachSwitch; adopt the switch but
		// flag that shadow state starts from an unknown occupancy.
		sh = &swShadow{queues: make(map[[2]int]int64), paused: make(map[int]bool)}
		sh.used = sw.BufferUsed()
		a.switches[sw] = sh
	}
	return sh
}

// violate reports one invariant violation: panic with the full context
// dump in strict mode, count and remember it otherwise.
func (a *Auditor) violate(dump string) {
	if a.Strict {
		panic("audit: invariant violation\n" + dump)
	}
	a.Violations++
	a.Last = dump
}

// pktDump renders the packet-level context of a violation.
func pktDump(sw *fabric.Switch, egress, tc int, pkt *packet.Packet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  switch=%d egress-port=%d tc=%d\n", sw.ID(), egress, tc)
	if pkt != nil {
		fmt.Fprintf(&b, "  packet: flow=%d %s seq=%d len=%d mark=%s color=%v src=%d dst=%d retx=%v\n",
			pkt.Flow, pkt.Type, pkt.Seq, pkt.Len, pkt.Mark,
			pkt.Mark.Color() == packet.Green, pkt.Src, pkt.Dst, pkt.IsRetx)
	}
	return b.String()
}

func (a *Auditor) header(kind string) string {
	return fmt.Sprintf("invariant: %s\n  t=%v\n", kind, a.sim.Now())
}

// checkAccounting cross-checks the shadow MMU state against the
// switch's own occupancy counter after an event touched it.
func (a *Auditor) checkAccounting(sw *fabric.Switch, sh *swShadow, egress, tc int, pkt *packet.Packet, event string) {
	if sh.used < 0 {
		a.violate(a.header("MMU occupancy negative") +
			fmt.Sprintf("  event=%s shadow-used=%d\n", event, sh.used) +
			pktDump(sw, egress, tc, pkt))
	}
	if phys := sw.Config().BufferBytes; sh.used > phys {
		a.violate(a.header("MMU occupancy exceeds physical buffer") +
			fmt.Sprintf("  event=%s shadow-used=%d physical=%d\n", event, sh.used, phys) +
			pktDump(sw, egress, tc, pkt))
	}
	if got := sw.BufferUsed(); got != sh.used {
		a.violate(a.header("MMU accounting diverged from shadow") +
			fmt.Sprintf("  event=%s switch-used=%d shadow-used=%d (Σshadow-queues=%d)\n",
				event, got, sh.used, sh.queueSum()) +
			pktDump(sw, egress, tc, pkt))
	}
	// ΣQᵢ ≤ B and ΣQᵢ consistent with occupancy, re-summed from the
	// switch's own per-queue depths (catches queue/used skew).
	var sum int64
	for p := 0; p < sw.NumPorts(); p++ {
		sum += sw.QueueBytes(p)
	}
	if sum != sw.BufferUsed() {
		a.violate(a.header("ΣQᵢ != shared-buffer occupancy") +
			fmt.Sprintf("  event=%s ΣQᵢ=%d used=%d\n", event, sum, sw.BufferUsed()) +
			pktDump(sw, egress, tc, pkt))
	}
}

func (sh *swShadow) queueSum() int64 {
	var n int64
	for _, b := range sh.queues {
		n += b
	}
	return n
}

// OnEnqueue implements fabric.AuditHook.
func (a *Auditor) OnEnqueue(sw *fabric.Switch, egress, tc int, pkt *packet.Packet) {
	a.Events++
	sh := a.shadow(sw)
	size := int64(pkt.WireSize())
	sh.used += size
	sh.queues[[2]int{egress, tc}] += size
	a.checkAccounting(sw, sh, egress, tc, pkt, "enqueue")
}

// OnDequeue implements fabric.AuditHook.
func (a *Auditor) OnDequeue(sw *fabric.Switch, egress, tc int, pkt *packet.Packet) {
	a.Events++
	sh := a.shadow(sw)
	size := int64(pkt.WireSize())
	sh.used -= size
	key := [2]int{egress, tc}
	sh.queues[key] -= size
	if sh.queues[key] < 0 {
		a.violate(a.header("queue depth negative") +
			fmt.Sprintf("  shadow-queue=%d\n", sh.queues[key]) +
			pktDump(sw, egress, tc, pkt))
	}
	a.checkAccounting(sw, sh, egress, tc, pkt, "dequeue")
}

// OnDrop implements fabric.AuditHook: every drop must be justified by
// the state the switch reported at decision time.
func (a *Auditor) OnDrop(sw *fabric.Switch, egress, tc int, pkt *packet.Packet, reason fabric.DropReason, qBytes, free int64) {
	a.Events++
	sh := a.shadow(sw)
	size := int64(pkt.WireSize())
	cfg := sw.Config()
	green := pkt.Mark.Color() == packet.Green

	ctx := func(kind string) string {
		return a.header(kind) +
			fmt.Sprintf("  reason=%s queue-bytes=%d free=%d pkt-size=%d alpha=%v K=%d\n",
				reason, qBytes, free, size, cfg.Alpha, cfg.ColorThreshold) +
			pktDump(sw, egress, tc, pkt)
	}

	switch reason {
	case fabric.DropReasonWatchdog, fabric.DropReasonSwitchFail:
		// Flush drops: the packet was already buffered, so unlike
		// admission drops they release occupancy in the shadow too.
		sh.used -= size
		key := [2]int{egress, tc}
		sh.queues[key] -= size
		if sh.queues[key] < 0 {
			a.violate(ctx("flush drop from empty shadow queue"))
		}
		if reason == fabric.DropReasonWatchdog && !cfg.PFCWatchdog {
			a.violate(ctx("watchdog drop with watchdog disabled"))
		}
		if reason == fabric.DropReasonSwitchFail && !sw.Failed() {
			a.violate(ctx("switch-fail flush on a live switch"))
		}
		a.checkAccounting(sw, sh, egress, tc, pkt, "flush")
		return
	default:
		// Admission drops (buffer-full, color, dynamic-threshold,
		// policy-specific) are justified by the installed BufferPolicy:
		// its CheckDrop re-evaluates the recorded decision-time state
		// under the policy's own admission rules, so the shadow
		// accounting validates against the policy's view rather than a
		// hardcoded Choudhury–Hahne model. The default policy's checks
		// are the historical ones (headroom really short, the CH
		// condition held and never under lossless flow control, green
		// never dropped by the color threshold).
		if msg := sw.Policy().CheckDrop(reason, tc, qBytes, free, size, green); msg != "" {
			a.violate(ctx(msg))
		}
	}
	// A drop leaves occupancy untouched; the counters must still agree.
	a.checkAccounting(sw, sh, egress, tc, pkt, "drop")
}

// OnPFC implements fabric.AuditHook: XOFF and XON must strictly
// alternate per ingress port.
func (a *Auditor) OnPFC(sw *fabric.Switch, port int, pause bool) {
	a.Events++
	sh := a.shadow(sw)
	if pause {
		if sh.paused[port] {
			a.violate(a.header("duplicate PFC XOFF") +
				fmt.Sprintf("  switch=%d ingress-port=%d already paused\n", sw.ID(), port))
		}
		sh.paused[port] = true
	} else {
		if !sh.paused[port] {
			a.violate(a.header("PFC XON without matching XOFF") +
				fmt.Sprintf("  switch=%d ingress-port=%d not paused\n", sw.ID(), port))
		}
		sh.paused[port] = false
	}
}

// OnPauseRx implements fabric.AuditHook: track received-pause stretches
// per egress port and maintain the pause wait-for graph.
func (a *Auditor) OnPauseRx(sw *fabric.Switch, port int, paused bool) {
	a.Events++
	k := portKey{sw, port}
	if paused {
		a.pauseOpen[k] = a.sim.Now()
		if peer, ok := a.peers[k]; ok {
			a.addEdge(sw.ID(), peer, port)
		}
		return
	}
	a.closePause(k)
	if peer, ok := a.peers[k]; ok {
		a.dropEdge(sw.ID(), peer)
	}
}

// closePause folds an open pause stretch into the per-port accounting.
func (a *Auditor) closePause(k portKey) {
	start, open := a.pauseOpen[k]
	if !open {
		return
	}
	delete(a.pauseOpen, k)
	d := a.sim.Now() - start
	a.pauseCum[k] += d
	if d > a.pauseMax[k] {
		a.pauseMax[k] = d
	}
	if a.StormThreshold > 0 && d >= a.StormThreshold {
		a.StormSuspects++
	}
}

// addEdge records that u's egress port is pause-blocked by v and checks
// whether the new edge closed a cycle — the circular-wait signature of
// PFC deadlock.
func (a *Auditor) addEdge(u, v packet.NodeID, port int) {
	m := a.edges[u]
	if m == nil {
		m = make(map[packet.NodeID]int)
		a.edges[u] = m
	}
	m[v]++
	if m[v] == 1 && a.reaches(v, u, make(map[packet.NodeID]bool)) {
		a.DeadlockCycles++
		a.DeadlockLast = fmt.Sprintf("pause cycle closed at t=%v: switch %d port %d blocked by %d",
			a.sim.Now(), u, port, v)
	}
}

func (a *Auditor) dropEdge(u, v packet.NodeID) {
	if m := a.edges[u]; m != nil {
		if m[v]--; m[v] <= 0 {
			delete(m, v)
		}
	}
}

// reaches reports whether `to` is reachable from `from` over active
// wait-for edges.
func (a *Auditor) reaches(from, to packet.NodeID, seen map[packet.NodeID]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range a.edges[from] {
		if a.reaches(next, to, seen) {
			return true
		}
	}
	return false
}

// OnReset implements fabric.AuditHook: a rebooted switch restarts with a
// zeroed MMU, so the shadow — and everything the pause trackers knew
// about it — is discarded.
func (a *Auditor) OnReset(sw *fabric.Switch) {
	a.Events++
	a.switches[sw] = &swShadow{
		queues: make(map[[2]int]int64),
		paused: make(map[int]bool),
	}
	for p := 0; p < sw.NumPorts(); p++ {
		k := portKey{sw, p}
		a.closePause(k)
		if peer, ok := a.peers[k]; ok {
			a.dropEdge(sw.ID(), peer)
		}
	}
}

// FinishPauses closes still-open pause stretches at the end of a run so
// cumulative accounting (and storm detection on never-released ports)
// is complete.
func (a *Auditor) FinishPauses() {
	for _, sw := range a.sortedSwitches() {
		for p := 0; p < sw.NumPorts(); p++ {
			a.closePause(portKey{sw, p})
		}
	}
}

// sortedSwitches returns the audited switches in ID order so iteration
// effects (storm-suspect counting order) are deterministic.
func (a *Auditor) sortedSwitches() []*fabric.Switch {
	out := make([]*fabric.Switch, 0, len(a.switches))
	for sw := range a.switches {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// PausedCum returns the cumulative received-pause time of one egress
// port (complete only after FinishPauses).
func (a *Auditor) PausedCum(sw *fabric.Switch, port int) sim.Time {
	return a.pauseCum[portKey{sw, port}]
}

// PausedMax returns the longest closed pause stretch of one egress port.
func (a *Auditor) PausedMax(sw *fabric.Switch, port int) sim.Time {
	return a.pauseMax[portKey{sw, port}]
}

// OnImportantSend implements core.Audit: a window-based flow may never
// have two important packets in flight.
func (a *Auditor) OnImportantSend(flow packet.FlowID, now sim.Time) {
	a.Events++
	st := a.imp[flow]
	if st.inFlight {
		a.violate(a.header("second important packet in flight") +
			fmt.Sprintf("  flow=%d first-sent-at=%v second-at=%v\n", flow, st.sentAt, now))
	}
	a.imp[flow] = impState{inFlight: true, sentAt: now}
}

// OnImportantClear implements core.Audit.
func (a *Auditor) OnImportantClear(flow packet.FlowID, now sim.Time) {
	a.Events++
	a.imp[flow] = impState{}
}

// Summary renders a one-line audit result for reports.
func (a *Auditor) Summary() string {
	s := ""
	if a.Violations == 0 {
		s = fmt.Sprintf("audit: %d events, 0 violations", a.Events)
	} else {
		s = fmt.Sprintf("audit: %d events, %d VIOLATIONS (last: %s)",
			a.Events, a.Violations, strings.SplitN(a.Last, "\n", 2)[0])
	}
	if a.DeadlockCycles > 0 || a.StormSuspects > 0 {
		s += fmt.Sprintf("; pfc findings: %d deadlock cycles, %d storm suspects",
			a.DeadlockCycles, a.StormSuspects)
	}
	return s
}
