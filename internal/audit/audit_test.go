package audit

import (
	"strings"
	"testing"

	"tlt/internal/fabric"
	"tlt/internal/packet"
	"tlt/internal/sim"
	"tlt/internal/topo"
)

const us = sim.Time(1000)

type sink struct{ n int }

func (r *sink) Handle(*packet.Packet) { r.n++ }

// overloadStar builds a 4-host star whose switch is configured to drop
// (tiny buffer, color threshold) and blasts mixed-color traffic from
// three senders into host 0, with the auditor attached.
func overloadStar(t *testing.T, strict bool) (*sim.Sim, *topo.Network, *Auditor) {
	t.Helper()
	s := sim.New()
	net := topo.Star(s, topo.StarConfig{
		Hosts:       4,
		LinkRateBps: 40e9,
		LinkDelay:   us,
		Switch: fabric.SwitchConfig{
			BufferBytes:    40_000,
			Alpha:          1,
			ColorThreshold: 10_000,
		},
	})
	a := New(s)
	a.Strict = strict
	a.AttachSwitch(net.Switches[0])
	rx := &sink{}
	for f := packet.FlowID(1); f <= 3; f++ {
		net.Hosts[0].Register(f, rx)
	}
	for i := 0; i < 900; i++ {
		i := i
		s.At(sim.Time(i)*200, func() {
			src := 1 + i%3
			mark := packet.Unimportant
			if i%7 == 0 {
				mark = packet.ImportantData
			}
			net.Hosts[src].Send(&packet.Packet{
				Flow: packet.FlowID(src), Dst: 0, Type: packet.Data,
				Mark: mark, Len: 1000, Seq: int64(i),
			})
		})
	}
	return s, net, a
}

// TestCleanTrafficNoViolations: heavy overload with legitimate color and
// dynamic-threshold drops must produce zero violations.
func TestCleanTrafficNoViolations(t *testing.T) {
	s, net, a := overloadStar(t, true) // strict: a violation would panic
	s.RunAll()
	if a.Events == 0 {
		t.Fatal("auditor saw no events — hook not attached")
	}
	if net.Switches[0].Ctr.TotalDrops() == 0 {
		t.Fatal("overload produced no drops; test is not exercising admission")
	}
	if net.Switches[0].Ctr.DropRedColor == 0 {
		t.Fatal("no color-aware drops; color threshold path unexercised")
	}
	if a.Violations != 0 {
		t.Fatalf("clean run reported %d violations: %s", a.Violations, a.Last)
	}
}

// TestCatchesSkewedAccounting is the acceptance-criteria test: corrupt
// the MMU occupancy counter mid-run and the strict auditor must panic on
// the next buffer event with a dump naming the switch, port, and packet.
func TestCatchesSkewedAccounting(t *testing.T) {
	s, net, _ := overloadStar(t, true)
	s.At(30*us, func() { net.Switches[0].SkewUsedForTest(+4096) })

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("auditor did not panic on skewed MMU accounting")
		}
		dump, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string dump", r)
		}
		for _, want := range []string{
			"MMU accounting diverged",
			"switch=1000",   // the star's switch ID
			"egress-port=",  // port context
			"packet: flow=", // packet context
			"switch-used=",  // actual vs shadow values
			"shadow-used=",
		} {
			if !strings.Contains(dump, want) {
				t.Errorf("dump missing %q:\n%s", want, dump)
			}
		}
	}()
	s.RunAll()
}

// TestNonStrictCounts: the same corruption in non-strict mode counts
// violations instead of panicking.
func TestNonStrictCounts(t *testing.T) {
	s, net, a := overloadStar(t, false)
	s.At(30*us, func() { net.Switches[0].SkewUsedForTest(+4096) })
	s.RunAll()
	if a.Violations == 0 {
		t.Fatal("non-strict auditor counted no violations after skew")
	}
	if !strings.Contains(a.Last, "switch=1000") {
		t.Errorf("Last violation lacks switch context: %s", a.Last)
	}
	if !strings.Contains(a.Summary(), "VIOLATIONS") {
		t.Errorf("Summary() = %q", a.Summary())
	}
}

// TestSingleImportantInvariant: two important sends without a clear is a
// violation; send-clear-send is fine.
func TestSingleImportantInvariant(t *testing.T) {
	a := New(sim.New())
	a.Strict = false

	a.OnImportantSend(7, 10)
	a.OnImportantClear(7, 20)
	a.OnImportantSend(7, 30)
	if a.Violations != 0 {
		t.Fatalf("legal send/clear/send flagged: %s", a.Last)
	}
	a.OnImportantSend(7, 40) // second in flight
	if a.Violations != 1 {
		t.Fatalf("double in-flight not flagged (violations=%d)", a.Violations)
	}
	if !strings.Contains(a.Last, "flow=7") {
		t.Errorf("violation lacks flow context: %s", a.Last)
	}
	// Independent flows don't interfere.
	a.OnImportantSend(8, 50)
	if a.Violations != 1 {
		t.Fatalf("independent flow flagged: %s", a.Last)
	}
}

// TestPFCPairing: XOFF/XON must alternate per port.
func TestPFCPairing(t *testing.T) {
	s := sim.New()
	sw := fabric.NewSwitch(s, 1, sim.NewRNG(1), fabric.SwitchConfig{Ports: 2, BufferBytes: 1000})
	a := New(s)
	a.Strict = false
	a.AttachSwitch(sw)

	a.OnPFC(sw, 0, true)
	a.OnPFC(sw, 0, false)
	a.OnPFC(sw, 1, true)
	if a.Violations != 0 {
		t.Fatalf("legal pause sequence flagged: %s", a.Last)
	}
	a.OnPFC(sw, 1, true) // duplicate XOFF
	if a.Violations != 1 {
		t.Fatal("duplicate XOFF not flagged")
	}
	a.OnPFC(sw, 0, false) // XON while not paused (port 0 resumed already)
	if a.Violations != 2 {
		t.Fatal("unmatched XON not flagged")
	}
}

// TestGreenColorDropFlagged: a green packet reported dropped by the
// color threshold is always a violation — the protection guarantee.
func TestGreenColorDropFlagged(t *testing.T) {
	s := sim.New()
	sw := fabric.NewSwitch(s, 1, sim.NewRNG(1), fabric.SwitchConfig{
		Ports: 2, BufferBytes: 100_000, ColorThreshold: 10_000,
	})
	a := New(s)
	a.Strict = false
	a.AttachSwitch(sw)

	green := &packet.Packet{Flow: 3, Type: packet.Data, Mark: packet.ImportantData, Len: 1000}
	a.OnDrop(sw, 0, 0, green, fabric.DropReasonColor, 20_000, 50_000)
	if a.Violations == 0 {
		t.Fatal("green color-drop not flagged")
	}
	if !strings.Contains(a.Last, "green packet dropped by color threshold") {
		t.Errorf("wrong violation: %s", a.Last)
	}

	// A red drop above K with the occupancy in sync is legitimate.
	a.Violations = 0
	red := &packet.Packet{Flow: 3, Type: packet.Data, Mark: packet.Unimportant, Len: 1000}
	a.OnDrop(sw, 0, 0, red, fabric.DropReasonColor, 20_000, 50_000)
	if a.Violations != 0 {
		t.Fatalf("legal red color-drop flagged: %s", a.Last)
	}
}
