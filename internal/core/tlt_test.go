package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlt/internal/packet"
	"tlt/internal/sim"
)

func TestWindowSenderDisabled(t *testing.T) {
	w := NewWindowSender(Config{})
	if w.Enabled() || w.Armed() {
		t.Fatal("disabled machine reports enabled state")
	}
	if m := w.TakeMark(true, 0); m != packet.Unimportant {
		t.Fatalf("disabled TakeMark = %v", m)
	}
	if _, ok := w.OnEcho(); ok {
		t.Fatal("disabled OnEcho reported ok")
	}
}

func TestWindowSenderInitialBurstMarksTail(t *testing.T) {
	w := NewWindowSender(Config{Enabled: true})
	// Packets in the middle of the initial burst stay unimportant; the
	// tail of the burst is the important one (it covers the burst as a
	// loss indicator).
	for i := 0; i < 9; i++ {
		if m := w.TakeMark(false, sim.Time(i)); m != packet.Unimportant {
			t.Fatalf("mid-burst packet %d marked %v", i, m)
		}
	}
	if m := w.TakeMark(true, 9); m != packet.ImportantData {
		t.Fatalf("burst tail marked %v", m)
	}
	if !w.InFlight() {
		t.Fatal("important packet should be in flight")
	}
	// No second important while one is in flight, even at a burst tail.
	if m := w.TakeMark(true, 10); m != packet.Unimportant {
		t.Fatalf("second important while in flight: %v", m)
	}
}

func TestWindowSenderEchoArmsAndDetects(t *testing.T) {
	w := NewWindowSender(Config{Enabled: true})
	w.TakeMark(true, 100)
	at, ok := w.OnEcho()
	if !ok || at != 100 {
		t.Fatalf("OnEcho = (%v, %v), want (100, true)", at, ok)
	}
	if !w.Armed() {
		t.Fatal("echo must arm the machine")
	}
	// Armed: even a mid-burst packet is marked.
	if m := w.TakeMark(false, 200); m != packet.ImportantData {
		t.Fatalf("armed TakeMark = %v", m)
	}
}

func TestWindowSenderDuplicateEcho(t *testing.T) {
	w := NewWindowSender(Config{Enabled: true})
	w.TakeMark(true, 100)
	w.OnEcho()
	// A duplicate echo (retransmitted important packet) still arms but
	// yields no RACK timestamp.
	if _, ok := w.OnEcho(); ok {
		t.Fatal("duplicate echo should not return a timestamp")
	}
	if !w.Armed() {
		t.Fatal("duplicate echo should still arm")
	}
}

func TestWindowSenderClockMark(t *testing.T) {
	w := NewWindowSender(Config{Enabled: true})
	w.TakeMark(true, 1)
	w.OnEcho()
	if m := w.TakeClockMark(50); m != packet.ImportantClockData {
		t.Fatalf("TakeClockMark = %v", m)
	}
	if w.Armed() || !w.InFlight() {
		t.Fatal("clock transmission must consume armed state")
	}
	if at, ok := w.OnEcho(); !ok || at != 50 {
		t.Fatalf("clock echo = (%v,%v)", at, ok)
	}
}

func TestWindowSenderReset(t *testing.T) {
	w := NewWindowSender(Config{Enabled: true})
	w.TakeMark(true, 1)
	w.Reset() // RTO: presumed lost
	if !w.Armed() {
		t.Fatal("reset must re-arm so the recovery retransmission is marked")
	}
	if m := w.TakeMark(false, 2); m != packet.ImportantData {
		t.Fatalf("post-reset mark = %v", m)
	}
}

// TestWindowSenderInvariant drives random operation sequences and checks
// the paper's core invariant: at most one important packet in flight.
func TestWindowSenderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWindowSender(Config{Enabled: true})
		inflight := 0
		now := sim.Time(0)
		for op := 0; op < 500; op++ {
			now++
			switch rng.Intn(4) {
			case 0, 1:
				if w.TakeMark(rng.Intn(2) == 0, now) != packet.Unimportant {
					inflight++
				}
			case 2:
				if inflight > 0 && rng.Intn(2) == 0 {
					w.OnEcho()
					inflight--
				}
			case 3:
				if rng.Intn(10) == 0 { // rare RTO
					w.Reset()
					inflight = 0
				}
			}
			if inflight > 1 {
				return false
			}
			if w.InFlight() != (inflight == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowReceiverEchoes(t *testing.T) {
	r := NewWindowReceiver(Config{Enabled: true})
	// Pure ACKs are always important.
	if m := r.TakeAckMark(); m != packet.ControlImportant {
		t.Fatalf("idle ack mark = %v", m)
	}
	r.OnData(packet.ImportantData)
	if m := r.TakeAckMark(); m != packet.ImportantEcho {
		t.Fatalf("echo mark = %v", m)
	}
	// State consumed: next ACK is plain control.
	if m := r.TakeAckMark(); m != packet.ControlImportant {
		t.Fatalf("post-echo mark = %v", m)
	}
	r.OnData(packet.ImportantClockData)
	if m := r.TakeAckMark(); m != packet.ImportantClockEcho {
		t.Fatalf("clock echo mark = %v", m)
	}
	r.OnData(packet.Unimportant)
	if m := r.TakeAckMark(); m != packet.ControlImportant {
		t.Fatalf("unimportant data produced %v", m)
	}
}

func TestWindowReceiverDisabled(t *testing.T) {
	r := NewWindowReceiver(Config{})
	r.OnData(packet.ImportantData)
	if m := r.TakeAckMark(); m != packet.Unimportant {
		t.Fatalf("disabled receiver mark = %v", m)
	}
}

func TestStaleClockEcho(t *testing.T) {
	if !StaleClockEcho(packet.ImportantClockEcho, 100, 100) {
		t.Fatal("ack == una must be stale")
	}
	if StaleClockEcho(packet.ImportantClockEcho, 101, 100) {
		t.Fatal("progressing clock echo is not stale")
	}
	if StaleClockEcho(packet.ImportantEcho, 100, 100) {
		t.Fatal("plain echoes are never dropped")
	}
}

func TestRateSenderMarking(t *testing.T) {
	r := NewRateSender(Config{Enabled: true, PeriodN: 4})
	var marks []packet.Mark
	for i := 0; i < 10; i++ {
		marks = append(marks, r.TakeMark(i == 9, false))
	}
	if marks[9] != packet.ImportantData {
		t.Fatal("last packet of message must be important")
	}
	imp := 0
	for _, m := range marks[:9] {
		if m == packet.ImportantData {
			imp++
		}
	}
	if imp != 2 { // periodic marks at positions 3 and 7
		t.Fatalf("periodic marks = %d, want 2", imp)
	}
}

func TestRateSenderRetxRound(t *testing.T) {
	r := NewRateSender(Config{Enabled: true})
	if m := r.TakeMark(false, true); m != packet.ImportantData {
		t.Fatal("retransmission round start must be important")
	}
	if m := r.TakeMark(false, false); m != packet.Unimportant {
		t.Fatal("mid-round retransmission should not be important")
	}
}

func TestRateSenderDisabled(t *testing.T) {
	r := NewRateSender(Config{PeriodN: 1})
	if m := r.TakeMark(true, true); m != packet.Unimportant {
		t.Fatalf("disabled rate sender marked %v", m)
	}
}

func TestControlMark(t *testing.T) {
	if ControlMark(true) != packet.ControlImportant {
		t.Fatal("enabled control mark wrong")
	}
	if ControlMark(false) != packet.Unimportant {
		t.Fatal("disabled control mark wrong")
	}
}

func TestPeriodCounterResetOnImportant(t *testing.T) {
	r := NewRateSender(Config{Enabled: true, PeriodN: 3})
	r.TakeMark(false, true) // round start: important, resets counter
	got := 0
	for i := 0; i < 3; i++ {
		if r.TakeMark(false, false) == packet.ImportantData {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("periodic marks after reset = %d, want exactly 1", got)
	}
}
