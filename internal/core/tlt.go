// Package core implements TLT (Timeout-Less Transport), the paper's
// primary contribution: host-side selection of "important" packets —
// packets whose loss would trigger a retransmission timeout — so that
// switches can protect them with color-aware dropping while exposing the
// rest to a lossy best-effort network.
//
// Two marking state machines are provided, mirroring §5 of the paper:
//
//   - WindowSender/WindowReceiver for window-based transports (TCP,
//     DCTCP, HPCC, IRN): keep exactly one important packet in flight per
//     flow and use its echo both as a guaranteed loss indicator and as a
//     self-clock that survives window collapse (important ACK-clocking,
//     Algorithm 1).
//   - RateSender for rate-based transports (DCQCN): mark the last packet
//     of a message, the first packet of every retransmission round, and
//     optionally every N-th packet.
//
// All pure control packets (ACK, NACK, CNP) are always important.
package core

import (
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// ClockMode selects the payload policy of important ACK-clocking
// (Appendix B, Fig. 17 ablation).
type ClockMode uint8

// Clock payload policies.
const (
	// ClockAdaptive sends one byte when no loss is indicated and a full
	// MSS of the first lost data when loss is indicated (the paper's
	// design).
	ClockAdaptive ClockMode = iota
	// ClockOneByte always sends a single byte (slow recovery ablation).
	ClockOneByte
	// ClockFullMTU always sends a full segment (bandwidth-heavy ablation).
	ClockFullMTU
)

// Config enables and parametrizes TLT on a transport.
type Config struct {
	Enabled bool
	Clock   ClockMode
	// PeriodN, for rate-based transports, marks one important packet
	// every N data packets (0 disables periodic marking). The paper
	// uses N=96 (the fabric's maximum fan-out).
	PeriodN int

	// Flow identifies this sender's flow in audit reports; transports
	// stamp it when constructing the marking machine.
	Flow packet.FlowID
	// Audit, when non-nil, observes important-packet lifecycle events
	// for runtime invariant checking (nil in normal runs).
	Audit Audit
}

// WindowSender is the sender half of the window-based TLT state machine.
//
// Invariant: at most one important Data/ClockData packet is in flight per
// flow. The transport must call TakeMark for every outgoing data packet,
// OnEcho for every arriving echo, and Reset on RTO.
type WindowSender struct {
	cfg Config

	armed    bool // sendState == Important: next eligible send is marked
	inFlight bool // an important packet is in the network

	impSentAt sim.Time // when the in-flight important packet was sent
}

// NewWindowSender returns a sender machine; a disabled config yields a
// machine that never marks.
func NewWindowSender(cfg Config) *WindowSender {
	return &WindowSender{cfg: cfg}
}

// Enabled reports whether TLT is active.
func (w *WindowSender) Enabled() bool { return w.cfg.Enabled }

// Mode returns the configured clock payload policy.
func (w *WindowSender) Mode() ClockMode { return w.cfg.Clock }

// Armed reports whether an important transmission is pending (sendState ==
// Important and nothing in flight).
func (w *WindowSender) Armed() bool { return w.cfg.Enabled && w.armed && !w.inFlight }

// InFlight reports whether an important packet is currently outstanding.
func (w *WindowSender) InFlight() bool { return w.inFlight }

// TakeMark decides the mark of an outgoing data packet sent at time now.
// lastOfBurst indicates the transport cannot send further packets right
// now (window or data exhausted after this one); TLT marks the packet
// important when the flow has no important packet in flight and either an
// echo armed the machine or this is the tail of the burst. Marking the
// burst tail (rather than the head) makes the important packet's echo a
// loss indicator covering every packet sent before it.
func (w *WindowSender) TakeMark(lastOfBurst bool, now sim.Time) packet.Mark {
	if !w.cfg.Enabled || w.inFlight {
		return packet.Unimportant
	}
	if w.armed || lastOfBurst {
		w.armed = false
		w.inFlight = true
		w.impSentAt = now
		if w.cfg.Audit != nil {
			w.cfg.Audit.OnImportantSend(w.cfg.Flow, now)
		}
		return packet.ImportantData
	}
	return packet.Unimportant
}

// TakeClockMark marks an important ACK-clocking transmission.
func (w *WindowSender) TakeClockMark(now sim.Time) packet.Mark {
	w.armed = false
	w.inFlight = true
	w.impSentAt = now
	if w.cfg.Audit != nil {
		w.cfg.Audit.OnImportantSend(w.cfg.Flow, now)
	}
	return packet.ImportantClockData
}

// OnEcho processes an arriving ImportantEcho or ImportantClockEcho. It
// returns the send time of the acknowledged important packet: every
// unacknowledged packet transmitted strictly before that instant has been
// overtaken by a full round trip on the same path and is therefore lost
// (the paper's "guaranteed fast loss detection").
func (w *WindowSender) OnEcho() (impSentAt sim.Time, ok bool) {
	if !w.cfg.Enabled {
		return 0, false
	}
	if !w.inFlight {
		// Duplicate echo (e.g. a retransmitted important packet); arm anyway.
		w.armed = true
		return 0, false
	}
	w.inFlight = false
	w.armed = true
	if w.cfg.Audit != nil {
		w.cfg.Audit.OnImportantClear(w.cfg.Flow, w.impSentAt)
	}
	return w.impSentAt, true
}

// Reset restores the machine after an RTO so the recovery retransmission
// is marked important (the in-flight important packet, if any, is
// presumed lost — an event the paper shows is vanishingly rare).
func (w *WindowSender) Reset() {
	if !w.cfg.Enabled {
		return
	}
	if w.inFlight && w.cfg.Audit != nil {
		w.cfg.Audit.OnImportantClear(w.cfg.Flow, w.impSentAt)
	}
	w.inFlight = false
	w.armed = true
}

// AckMark returns the mark for an outgoing pure ACK given the receiver
// machine state; used by WindowReceiver below.

// WindowReceiver is the receiver half: it echoes importance on the next
// ACK, per Algorithm 1.
type WindowReceiver struct {
	cfg   Config
	state packet.Mark // Unimportant (idle), ImportantData, ImportantClockData
}

// NewWindowReceiver returns a receiver machine.
func NewWindowReceiver(cfg Config) *WindowReceiver {
	return &WindowReceiver{cfg: cfg}
}

// OnData records the mark of an arriving data packet.
func (r *WindowReceiver) OnData(m packet.Mark) {
	if !r.cfg.Enabled {
		return
	}
	switch m {
	case packet.ImportantData, packet.ImportantClockData:
		r.state = m
	}
}

// TakeAckMark returns the mark for the ACK being generated and resets the
// receive state. Pure ACKs are always important under TLT (§5).
func (r *WindowReceiver) TakeAckMark() packet.Mark {
	if !r.cfg.Enabled {
		return packet.Unimportant
	}
	switch r.state {
	case packet.ImportantData:
		r.state = packet.Unimportant
		return packet.ImportantEcho
	case packet.ImportantClockData:
		r.state = packet.Unimportant
		return packet.ImportantClockEcho
	default:
		return packet.ControlImportant
	}
}

// StaleClockEcho reports whether an arriving ACK is an important-clock
// echo that made no forward progress; Appendix A requires dropping it at
// the TLT layer so congestion control never sees the duplicate ACK the
// clock transmission manufactured.
func StaleClockEcho(m packet.Mark, ack, sndUna int64) bool {
	return m == packet.ImportantClockEcho && ack <= sndUna
}

// RateSender implements the rate-based marking policy (§5.2): the last
// packet of a message is important (it guarantees the receiver can detect
// any preceding loss), the first packet of every retransmission round is
// important (so a NACK round-trip is never silently lost), and optionally
// every PeriodN-th packet is important for long messages.
type RateSender struct {
	cfg     Config
	counter int
}

// NewRateSender returns a rate-based marking machine.
func NewRateSender(cfg Config) *RateSender {
	return &RateSender{cfg: cfg}
}

// Enabled reports whether TLT is active.
func (r *RateSender) Enabled() bool { return r.cfg.Enabled }

// TakeMark decides the mark of an outgoing data packet. last marks the
// final packet of the message; retxRoundStart marks the first packet of a
// new retransmission round (go-back-N rewind or selective-retransmit
// batch).
func (r *RateSender) TakeMark(last, retxRoundStart bool) packet.Mark {
	if !r.cfg.Enabled {
		return packet.Unimportant
	}
	if last || retxRoundStart {
		r.counter = 0
		return packet.ImportantData
	}
	if r.cfg.PeriodN > 0 {
		r.counter++
		if r.counter >= r.cfg.PeriodN {
			r.counter = 0
			return packet.ImportantData
		}
	}
	return packet.Unimportant
}

// ControlMark returns the mark for control packets (ACK/NACK/CNP).
func ControlMark(enabled bool) packet.Mark {
	if enabled {
		return packet.ControlImportant
	}
	return packet.Unimportant
}
