package core

import (
	"math"
	"testing"
)

// TestBufferModelMatchesPaperNumbers checks the worked example of §4.2:
// a Trident II with 16 simultaneously congested ports gives each port
// 12MB/(1+16) = 705.88 kB; with K=400 kB that leaves ~305.88 kB for
// important packets, i.e. ~203 flows of 1.5 kB per port and 3248 total.
func TestBufferModelMatchesPaperNumbers(t *testing.T) {
	m := TridentII(400_000, 1500)
	per := m.PerPortBuffer(16)
	if math.Abs(per-705_882) > 1000 {
		t.Fatalf("per-port buffer = %.0f, want ~705.88kB", per)
	}
	head := m.ImportantHeadroom(16)
	if math.Abs(head-305_882) > 1000 {
		t.Fatalf("headroom = %.0f, want ~305.88kB", head)
	}
	if flows := m.FlowsPerPort(16); flows < 200 || flows > 206 {
		t.Fatalf("flows per port = %d, want ~203", flows)
	}
	if total := m.TotalFlows(16); total < 3200 || total > 3300 {
		t.Fatalf("total flows = %d, want ~3248", total)
	}
}

// TestBufferModelSinglePort checks the paper's single-congested-port
// case: 1/2 x 12MB - 0.4MB = 5.6MB of headroom, ~3733 flows.
func TestBufferModelSinglePort(t *testing.T) {
	m := TridentII(400_000, 1500)
	head := m.ImportantHeadroom(1)
	if math.Abs(head-5_600_000) > 1000 {
		t.Fatalf("headroom = %.0f, want 5.6MB", head)
	}
	if flows := m.FlowsPerPort(1); flows < 3700 || flows > 3760 {
		t.Fatalf("flows = %d, want ~3733", flows)
	}
}

func TestBufferModelDegenerateCases(t *testing.T) {
	m := TridentII(400_000, 1500)
	if m.PerPortBuffer(0) != 0 {
		t.Fatal("zero congested ports should give zero")
	}
	// K larger than the per-port share: no headroom, not negative.
	tight := TridentII(12_000_000, 1500)
	if tight.ImportantHeadroom(16) != 0 {
		t.Fatal("headroom must clamp at zero")
	}
	if (BufferModel{}).FlowsPerPort(4) != 0 {
		t.Fatal("zero packet size must yield zero flows")
	}
}

// TestBufferModelMonotonicity: more congested ports → less headroom each.
func TestBufferModelMonotonicity(t *testing.T) {
	m := TridentII(400_000, 1500)
	prev := math.Inf(1)
	for c := 1; c <= m.Ports; c++ {
		h := m.ImportantHeadroom(c)
		if h > prev {
			t.Fatalf("headroom increased at %d congested ports", c)
		}
		prev = h
	}
}
