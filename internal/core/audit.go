package core

import (
	"tlt/internal/packet"
	"tlt/internal/sim"
)

// Audit observes the important-packet lifecycle of window-based TLT
// senders so a runtime invariant auditor (internal/audit) can verify the
// central marking invariant — at most one important Data/ClockData
// packet in flight per flow — independently of the machine's own state.
// Methods are called synchronously from the marking path and must not
// mutate transport state. Nil disables auditing.
type Audit interface {
	// OnImportantSend fires when the flow commits an important
	// Data/ClockData transmission at time now.
	OnImportantSend(flow packet.FlowID, now sim.Time)
	// OnImportantClear fires when the in-flight important packet is
	// accounted for: its echo arrived, or an RTO presumed it lost.
	OnImportantClear(flow packet.FlowID, now sim.Time)
}
