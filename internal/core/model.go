package core

// This file implements the paper's analytical switch-buffer model (§4.2):
// with a dynamic-threshold shared buffer, how many concurrent flows can a
// TLT switch sustain before important packets are at risk? The model
// underlies the paper's claim that a Trident II-class chip protects
// thousands of flows without PFC.

// BufferModel describes a shared-buffer switch for the §4.2 analysis.
type BufferModel struct {
	BufferBytes    int64   // total shared buffer B
	Ports          int     // N
	Alpha          float64 // dynamic threshold parameter
	ColorThreshold int64   // K, reserved for unimportant traffic
	PacketBytes    int64   // worst-case important packet size
}

// PerPortBuffer returns the buffer one of m simultaneously congested
// ports receives from the dynamic threshold algorithm:
// alpha*B / (1 + m*alpha) (Choudhury–Hahne steady state).
func (m BufferModel) PerPortBuffer(congested int) float64 {
	if congested <= 0 {
		return 0
	}
	return m.Alpha * float64(m.BufferBytes) / (1 + float64(congested)*m.Alpha)
}

// ImportantHeadroom returns the per-port bytes available to important
// packets beyond the color-aware threshold when `congested` ports are
// simultaneously congested.
func (m BufferModel) ImportantHeadroom(congested int) float64 {
	h := m.PerPortBuffer(congested) - float64(m.ColorThreshold)
	if h < 0 {
		return 0
	}
	return h
}

// FlowsPerPort returns how many flows one congested port can hold
// important packets for, given TLT's at-most-one-important-in-flight
// invariant (§5.1).
func (m BufferModel) FlowsPerPort(congested int) int {
	if m.PacketBytes <= 0 {
		return 0
	}
	return int(m.ImportantHeadroom(congested) / float64(m.PacketBytes))
}

// TotalFlows returns the fabric-wide flow count protected when
// `congested` ports are simultaneously congested.
func (m BufferModel) TotalFlows(congested int) int {
	return congested * m.FlowsPerPort(congested)
}

// TridentII returns the model instance the paper evaluates: a 12 MB /
// 32-port Broadcom Trident II with alpha=1, K=400 kB and ~2 kB packets
// (§4.2 uses 1.5 kB MTU; we keep the paper's numbers by parameterizing).
func TridentII(colorThreshold, packetBytes int64) BufferModel {
	return BufferModel{
		BufferBytes:    12_000_000,
		Ports:          32,
		Alpha:          1,
		ColorThreshold: colorThreshold,
		PacketBytes:    packetBytes,
	}
}
