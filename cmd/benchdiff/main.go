// Command benchdiff compares two bench artifacts (BENCH_*.json, written
// by tltsim -bench-out) and fails when event throughput regressed — or
// peak heap grew — beyond a threshold. CI runs it against the committed
// per-PR baseline so a scheduler or data-plane slowdown breaks the build
// instead of landing silently, and so a streaming run that starts
// retaining per-flow state trips the memory gate:
//
//	tltsim -exp fig5 -bg 60 -seeds 1 -points 2 -bench-out BENCH_ci.json
//	benchdiff -max-regress 0.20 BENCH_pr4.json BENCH_ci.json
//	benchdiff -exp scale-sweep -max-heap-bytes 268435456 BENCH_pr9.json BENCH_ci.json
//
// Records are matched by (experiment, procs). Experiments present in
// only one artifact are called out explicitly — "(new)" for
// current-only, "(missing)" for baseline-only — and an empty
// intersection exits non-zero; hosts differ, so only relative
// throughput on the same machine is judged.
//
// A second mode gates Go microbenchmarks instead of artifacts: with
// -max-ns-op set, the single argument is a `go test -bench` output file
// ("-" for stdin) and the named benchmark's ns/op must stay under the
// ceiling:
//
//	go test -run xxx -bench 'BenchmarkPostPop$' ./internal/sim | tee bench.txt
//	benchdiff -bench-name PostPop -max-ns-op 150 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tlt/internal/experiments"
)

func load(path string) (*experiments.BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f experiments.BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

type key struct {
	exp   string
	procs int
}

// gateBench scans `go test -bench` output for Benchmark<name> result
// lines and fails when any exceeds maxNsOp nanoseconds per op. The
// ceiling is absolute, so pick it generously for CI host variance; the
// point is to catch a hot-path event costing 5× what it should, not a
// 10% wobble.
func gateBench(r io.Reader, name string, maxNsOp float64) int {
	prefix := "Benchmark" + name
	matched := 0
	failed := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		// "BenchmarkPostPop-4  46131291  25.50 ns/op  0 B/op  0 allocs/op"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		if rest := fields[0][len(prefix):]; rest != "" && !strings.HasPrefix(rest, "-") {
			continue // a longer benchmark name sharing the prefix
		}
		var nsOp float64 = -1
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err == nil {
					nsOp = v
				}
				break
			}
		}
		if nsOp < 0 {
			continue
		}
		matched++
		mark := ""
		if nsOp > maxNsOp {
			mark = "  OVER BUDGET"
			failed = true
		}
		fmt.Printf("%s: %.2f ns/op (budget %.0f)%s\n", fields[0], nsOp, maxNsOp, mark)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no Benchmark%s result lines found\n", name)
		return 2
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: Benchmark%s exceeded %.0f ns/op\n", name, maxNsOp)
		return 1
	}
	fmt.Printf("ok: %d Benchmark%s run(s) within %.0f ns/op\n", matched, name, maxNsOp)
	return 0
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20,
		"fail when events/sec drops by more than this fraction vs baseline")
	maxHeapRegress := flag.Float64("max-heap-regress", 0.20,
		"fail when peak heap grows by more than this fraction vs baseline (records without heap data are skipped)")
	maxHeapBytes := flag.Uint64("max-heap-bytes", 0,
		"fail when any current record's peak heap exceeds this absolute byte budget (0 = no absolute gate)")
	expFilter := flag.String("exp", "", "compare only this experiment (empty = all)")
	maxNsOp := flag.Float64("max-ns-op", 0,
		"microbenchmark gate: fail when the -bench-name benchmark exceeds this many ns/op (0 = artifact-diff mode)")
	benchName := flag.String("bench-name", "PostPop",
		"benchmark to gate in -max-ns-op mode (without the Benchmark prefix)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json current.json\n"+
				"       benchdiff -bench-name NAME -max-ns-op N bench-output.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *maxNsOp > 0 {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		in := os.Stdin
		if flag.Arg(0) != "-" {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		os.Exit(gateBench(in, *benchName, *maxNsOp))
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseBy := map[key]experiments.BenchRecord{}
	for _, r := range base.Records {
		baseBy[key{r.Experiment, r.Procs}] = r
	}
	curHas := map[key]bool{}
	for _, r := range cur.Records {
		curHas[key{r.Experiment, r.Procs}] = true
	}

	// setupCol / evPktCol render the blueprint-era columns; records from
	// before the fields exist show "-".
	setupCol := func(r experiments.BenchRecord) string {
		if r.SetupWallSeconds <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fs", r.SetupWallSeconds)
	}
	evPktCol := func(r experiments.BenchRecord) string {
		if r.Packets == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(r.Events)/float64(r.Packets))
	}
	fmt.Printf("%-16s %6s %14s %14s %8s %8s %7s %12s %8s\n",
		"experiment", "procs", "base ev/s", "cur ev/s", "ratio", "setup", "ev/pkt", "peak heap", "heap x")
	failed := false
	compared := 0
	onesided := 0
	for _, r := range cur.Records {
		if *expFilter != "" && r.Experiment != *expFilter {
			continue
		}
		heapCol := "-"
		if r.PeakHeapBytes > 0 {
			heapCol = fmt.Sprintf("%.1fMB", float64(r.PeakHeapBytes)/1e6)
		}
		mark := ""
		if *maxHeapBytes > 0 && r.PeakHeapBytes > *maxHeapBytes {
			mark = "  HEAP BUDGET EXCEEDED"
			failed = true
		}
		b, ok := baseBy[key{r.Experiment, r.Procs}]
		if !ok {
			onesided++
			fmt.Printf("%-16s %6d %14s %14.0f %8s %8s %7s %12s %8s%s\n",
				r.Experiment, r.Procs, "(new)", r.EventsPerSec, "-",
				setupCol(r), evPktCol(r), heapCol, "-", mark)
			continue
		}
		if b.EventsPerSec <= 0 {
			continue
		}
		compared++
		ratio := r.EventsPerSec / b.EventsPerSec
		if ratio < 1-*maxRegress {
			mark += "  REGRESSION"
			failed = true
		}
		// Heap gate: relative growth of peak live heap, only when both
		// artifacts carry heap data (older baselines predate the field).
		heapRatio := "-"
		if b.PeakHeapBytes > 0 && r.PeakHeapBytes > 0 {
			hr := float64(r.PeakHeapBytes) / float64(b.PeakHeapBytes)
			heapRatio = fmt.Sprintf("%.2fx", hr)
			if hr > 1+*maxHeapRegress {
				mark += "  HEAP REGRESSION"
				failed = true
			}
		}
		fmt.Printf("%-16s %6d %14.0f %14.0f %7.2fx %8s %7s %12s %8s%s\n",
			r.Experiment, r.Procs, b.EventsPerSec, r.EventsPerSec, ratio,
			setupCol(r), evPktCol(r), heapCol, heapRatio, mark)
	}
	// Baseline records with no counterpart in the current run are just as
	// suspicious as new ones: an experiment silently vanishing from the
	// artifact must not look like a passing comparison.
	for _, r := range base.Records {
		if *expFilter != "" && r.Experiment != *expFilter {
			continue
		}
		if !curHas[key{r.Experiment, r.Procs}] {
			onesided++
			fmt.Printf("%-16s %6d %14.0f %14s %8s\n",
				r.Experiment, r.Procs, r.EventsPerSec, "(missing)", "-")
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr,
			"benchdiff: no overlapping records to compare (%d present in only one artifact)\n",
			onesided)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr,
			"benchdiff: throughput or peak heap regressed beyond thresholds vs %s\n",
			flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("ok: %d record(s) within %.0f%% of baseline\n", compared, *maxRegress*100)
}
