// Command benchdiff compares two bench artifacts (BENCH_*.json, written
// by tltsim -bench-out) and fails when event throughput regressed beyond
// a threshold. CI runs it against the committed per-PR baseline so a
// scheduler or data-plane slowdown breaks the build instead of landing
// silently:
//
//	tltsim -exp fig5 -bg 60 -seeds 1 -points 2 -bench-out BENCH_ci.json
//	benchdiff -max-regress 0.20 BENCH_pr4.json BENCH_ci.json
//
// Records are matched by (experiment, procs). Experiments present in
// only one artifact are called out explicitly — "(new)" for
// current-only, "(missing)" for baseline-only — and an empty
// intersection exits non-zero; hosts differ, so only relative
// throughput on the same machine is judged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tlt/internal/experiments"
)

func load(path string) (*experiments.BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f experiments.BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

type key struct {
	exp   string
	procs int
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20,
		"fail when events/sec drops by more than this fraction vs baseline")
	expFilter := flag.String("exp", "", "compare only this experiment (empty = all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseBy := map[key]experiments.BenchRecord{}
	for _, r := range base.Records {
		baseBy[key{r.Experiment, r.Procs}] = r
	}
	curHas := map[key]bool{}
	for _, r := range cur.Records {
		curHas[key{r.Experiment, r.Procs}] = true
	}

	fmt.Printf("%-16s %6s %14s %14s %8s\n",
		"experiment", "procs", "base ev/s", "cur ev/s", "ratio")
	failed := false
	compared := 0
	onesided := 0
	for _, r := range cur.Records {
		if *expFilter != "" && r.Experiment != *expFilter {
			continue
		}
		b, ok := baseBy[key{r.Experiment, r.Procs}]
		if !ok {
			onesided++
			fmt.Printf("%-16s %6d %14s %14.0f %8s\n",
				r.Experiment, r.Procs, "(new)", r.EventsPerSec, "-")
			continue
		}
		if b.EventsPerSec <= 0 {
			continue
		}
		compared++
		ratio := r.EventsPerSec / b.EventsPerSec
		mark := ""
		if ratio < 1-*maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-16s %6d %14.0f %14.0f %7.2fx%s\n",
			r.Experiment, r.Procs, b.EventsPerSec, r.EventsPerSec, ratio, mark)
	}
	// Baseline records with no counterpart in the current run are just as
	// suspicious as new ones: an experiment silently vanishing from the
	// artifact must not look like a passing comparison.
	for _, r := range base.Records {
		if *expFilter != "" && r.Experiment != *expFilter {
			continue
		}
		if !curHas[key{r.Experiment, r.Procs}] {
			onesided++
			fmt.Printf("%-16s %6d %14.0f %14s %8s\n",
				r.Experiment, r.Procs, r.EventsPerSec, "(missing)", "-")
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr,
			"benchdiff: no overlapping records to compare (%d present in only one artifact)\n",
			onesided)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr,
			"benchdiff: throughput regressed more than %.0f%% vs %s\n",
			*maxRegress*100, flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("ok: %d record(s) within %.0f%% of baseline\n", compared, *maxRegress*100)
}
