// Command tltsim regenerates the paper's tables and figures.
//
// Usage:
//
//	tltsim -list
//	tltsim -exp fig5                 # quick scale (default)
//	tltsim -exp fig5 -bg 2000 -seeds 3
//	tltsim -exp all -full            # paper scale (slow)
//	tltsim -exp fig5 -procs 8        # cap simulation workers
//	tltsim -exp fig5 -shards 4       # shard each simulation across 4 event loops
//	tltsim -exp fig5 -shards auto    # one shard per CPU, capped at the leaf count
//	tltsim -exp all -bench-out BENCH_local.json
//	tltsim -exp fig5 -audit          # run with the invariant auditor on
//	tltsim -exp fig9 -chaos 'flap:link=rand,at=200us,down=50us,every=2ms'
//	tltsim -exp fig5 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tlt/internal/chaos"
	"tlt/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments")
		full      = flag.Bool("full", false, "paper scale: 10k background flows, 5 seeds")
		bg        = flag.Int("bg", 0, "override background flow count")
		seeds     = flag.Int("seeds", 0, "override seed count")
		points    = flag.Int("points", 0, "trim sweep axes to the first N points")
		format    = flag.String("format", "table", "output format: table, csv, json")
		procs     = flag.Int("procs", runtime.GOMAXPROCS(0), "max concurrent simulations")
		shards    = flag.String("shards", "1", "event-loop shards per simulation, or 'auto' = min(NumCPU, 12) (parallel DES; reports stay byte-identical across shard counts)")
		benchOut  = flag.String("bench-out", "", "write per-experiment bench records (wall clock, events/sec, allocs) to this JSON file")
		benchRep  = flag.Int("bench-repeat", 1, "run each bench entry this many times and record the median-events/s run")
		chaosSpec = flag.String("chaos", "", "fault schedule, e.g. 'flap:link=rand,at=200us,down=50us,every=2ms;seed=7'")
		mmuFlag   = flag.String("mmu", "", "switch buffer policy for all runs: ch (default), bshare, tiny")
		fcFlag    = flag.String("fc", "", "switch flow control for all runs: pfc, bfc, none ('' keeps each variant's own)")
		auditFlag = flag.Bool("audit", false, "attach the runtime invariant auditor (panics on first violation)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		mutexProf = flag.String("mutexprofile", "", "write a mutex contention profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "-cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProf)
	}
	if *memProf != "" {
		defer writeProfile("allocs", *memProf)
	}

	var plan *chaos.Plan
	if *chaosSpec != "" {
		var err error
		plan, err = chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-chaos:", err)
			os.Exit(2)
		}
	}
	nShards := experiments.AutoShards()
	if *shards != "auto" {
		var err error
		nShards, err = strconv.Atoi(*shards)
		if err != nil || nShards < 1 {
			fmt.Fprintf(os.Stderr, "-shards: want a positive integer or 'auto', got %q\n", *shards)
			os.Exit(2)
		}
	}
	experiments.SetHarness(plan, *auditFlag)
	experiments.SetProcs(*procs)
	experiments.SetShards(nShards)
	experiments.SetPolicies(*mmuFlag, *fcFlag)

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	scale := experiments.QuickScale()
	if *full {
		scale = experiments.FullScale()
	}
	if *bg > 0 {
		scale.BgFlows = *bg
	}
	if *seeds > 0 {
		scale.Seeds = *seeds
	}
	if *points > 0 {
		scale.AppPoints = *points
	}

	var benchRecs []experiments.BenchRecord

	// render runs one experiment and returns its formatted output; when
	// -bench-out is set it also measures and appends a bench record.
	render := func(e experiments.Entry) string {
		var rep *experiments.Report
		start := time.Now()
		if *benchOut != "" {
			var rec experiments.BenchRecord
			rec, rep = experiments.MeasureEntryN(e, scale, *benchRep)
			benchRecs = append(benchRecs, rec)
		} else {
			rep = experiments.RunEntry(e, scale)
		}
		var b strings.Builder
		switch *format {
		case "csv":
			b.WriteString(rep.CSV())
		case "json":
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "json:", err)
				os.Exit(1)
			}
			b.WriteString(out)
			b.WriteByte('\n')
		default:
			b.WriteString(rep.String())
			fmt.Fprintf(&b, "(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
		return b.String()
	}

	if *exp == "all" {
		if *benchOut != "" {
			// Sequential so each entry's allocation delta is attributable.
			for _, e := range experiments.All {
				fmt.Print(render(e))
			}
		} else {
			// Run every entry concurrently: all their grids feed cells
			// into the shared worker pool, so small figures interleave
			// with large ones instead of queueing behind them. Output is
			// still printed in registry order.
			outs := make([]chan string, len(experiments.All))
			for i, e := range experiments.All {
				outs[i] = make(chan string, 1)
				go func(e experiments.Entry, ch chan<- string) {
					ch <- render(e)
				}(e, outs[i])
			}
			for _, ch := range outs {
				fmt.Print(<-ch)
			}
		}
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		fmt.Print(render(e))
	}

	if *benchOut != "" {
		note := fmt.Sprintf("scale: bg=%d seeds=%d points=%d; procs=%d", scale.BgFlows, scale.Seeds, scale.AppPoints, *procs)
		if err := experiments.WriteBenchFile(*benchOut, note, benchRecs); err != nil {
			fmt.Fprintln(os.Stderr, "-bench-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d bench records to %s\n", len(benchRecs), *benchOut)
	}
}

// writeProfile dumps one named pprof profile at exit. The allocs profile
// needs a GC first so the numbers reflect everything the run allocated.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if name == "allocs" {
		runtime.GC()
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
	}
}
