// Command tltsim regenerates the paper's tables and figures.
//
// Usage:
//
//	tltsim -list
//	tltsim -exp fig5                 # quick scale (default)
//	tltsim -exp fig5 -bg 2000 -seeds 3
//	tltsim -exp all -full            # paper scale (slow)
//	tltsim -exp fig5 -audit          # run with the invariant auditor on
//	tltsim -exp fig9 -chaos 'flap:link=rand,at=200us,down=50us,every=2ms'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tlt/internal/chaos"
	"tlt/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments")
		full      = flag.Bool("full", false, "paper scale: 10k background flows, 5 seeds")
		bg        = flag.Int("bg", 0, "override background flow count")
		seeds     = flag.Int("seeds", 0, "override seed count")
		points    = flag.Int("points", 0, "trim sweep axes to the first N points")
		format    = flag.String("format", "table", "output format: table, csv, json")
		chaosSpec = flag.String("chaos", "", "fault schedule, e.g. 'flap:link=rand,at=200us,down=50us,every=2ms;seed=7'")
		auditFlag = flag.Bool("audit", false, "attach the runtime invariant auditor (panics on first violation)")
	)
	flag.Parse()

	var plan *chaos.Plan
	if *chaosSpec != "" {
		var err error
		plan, err = chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-chaos:", err)
			os.Exit(2)
		}
	}
	experiments.SetHarness(plan, *auditFlag)

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	scale := experiments.QuickScale()
	if *full {
		scale = experiments.FullScale()
	}
	if *bg > 0 {
		scale.BgFlows = *bg
	}
	if *seeds > 0 {
		scale.Seeds = *seeds
	}
	if *points > 0 {
		scale.AppPoints = *points
	}

	run := func(e experiments.Entry) {
		start := time.Now()
		rep := experiments.RunEntry(e, scale)
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		case "json":
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "json:", err)
				os.Exit(1)
			}
			fmt.Println(out)
		default:
			fmt.Println(rep.String())
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	if *exp == "all" {
		for _, e := range experiments.All {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
